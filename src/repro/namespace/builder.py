"""Namespace construction and structural statistics.

The directory layout of the synthetic traces mirrors what the grouping of a
real system looks like from the namespace side: each project owns a
directory subtree, files are spread over a handful of sub-directories, and
the depth/fan-out profile is stable across traces.  These builders
reconstruct that namespace from a file population (or a trace) so that the
directory-tree baseline and the locality analyses have a real hierarchy to
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.metadata.file_metadata import FileMetadata
from repro.namespace.tree import DirectoryTree
from repro.traces.base import Trace

__all__ = ["NamespaceStatistics", "build_namespace", "namespace_statistics"]


def build_namespace(source: object) -> DirectoryTree:
    """Build a :class:`DirectoryTree` from a file population or a trace.

    ``source`` may be a :class:`~repro.traces.base.Trace` (its explicit file
    population is used) or any iterable of
    :class:`~repro.metadata.file_metadata.FileMetadata`.
    """
    tree = DirectoryTree()
    if isinstance(source, Trace):
        files: Iterable[FileMetadata] = source.file_metadata()
    else:
        files = source  # type: ignore[assignment]
    tree.add_files(files)
    return tree


@dataclass(frozen=True)
class NamespaceStatistics:
    """Structural summary of a namespace.

    Attributes
    ----------
    num_files / num_directories:
        Population counts.
    max_depth:
        Deepest directory level (root = 0).
    mean_files_per_directory / max_files_per_directory:
        Direct (non-recursive) file counts per directory.
    mean_fanout:
        Mean number of subdirectories per non-leaf directory.
    top_level_directories:
        Names of the directories directly under the root (the "volumes" or
        trace roots).
    """

    num_files: int
    num_directories: int
    max_depth: int
    mean_files_per_directory: float
    max_files_per_directory: int
    mean_fanout: float
    top_level_directories: tuple

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_files": self.num_files,
            "num_directories": self.num_directories,
            "max_depth": self.max_depth,
            "mean_files_per_directory": self.mean_files_per_directory,
            "max_files_per_directory": self.max_files_per_directory,
            "mean_fanout": self.mean_fanout,
            "top_level_directories": list(self.top_level_directories),
        }


def namespace_statistics(tree: DirectoryTree) -> NamespaceStatistics:
    """Compute the structural summary of ``tree``."""
    per_dir = tree.files_per_directory()
    fanouts: List[int] = [
        len(node.subdirs) for node in tree.iter_directories() if node.subdirs
    ]
    return NamespaceStatistics(
        num_files=len(tree),
        num_directories=tree.num_directories,
        max_depth=tree.depth(),
        mean_files_per_directory=float(np.mean(per_dir)) if per_dir else 0.0,
        max_files_per_directory=int(max(per_dir)) if per_dir else 0,
        mean_fanout=float(np.mean(fanouts)) if fanouts else 0.0,
        top_level_directories=tuple(sorted(tree.root.subdirs.keys())),
    )
