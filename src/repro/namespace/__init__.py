"""Hierarchical directory-tree namespace substrate.

SmartStore's whole premise (Figure 1) is a contrast with the conventional
directory-tree organisation of file-system metadata.  This subpackage builds
that conventional organisation from scratch so the contrast can actually be
measured rather than assumed:

``repro.namespace.tree``
    The directory tree itself: path insertion/lookup/removal, traversal,
    subtree enumeration and structural statistics (depth, fan-out,
    files-per-directory).
``repro.namespace.builder``
    Builders that populate a tree from a file population or a trace, plus
    the synthetic namespace layout helpers shared with the trace
    generators.
``repro.namespace.locality``
    Spyglass-style namespace-locality analysis: how much of the directory
    space a query's result set is confined to (§1 quotes locality ratios
    below 1 % and the 33 % of searches that can be localised to a
    namespace subtree).
``repro.namespace.baseline``
    ``DirectoryTreeBaseline`` — a conventional file server answering point
    queries by path traversal and complex queries by brute-force subtree
    scans, with the same ``execute(query) -> QueryResult`` interface as the
    other systems under test.
"""

from repro.namespace.baseline import DirectoryTreeBaseline
from repro.namespace.builder import build_namespace, namespace_statistics
from repro.namespace.locality import LocalityReport, locality_ratio, query_locality_report
from repro.namespace.tree import DirectoryNode, DirectoryTree

__all__ = [
    "DirectoryNode",
    "DirectoryTree",
    "DirectoryTreeBaseline",
    "LocalityReport",
    "build_namespace",
    "namespace_statistics",
    "locality_ratio",
    "query_locality_report",
]
