"""Namespace-locality analysis (the Spyglass observation of §1).

The introduction motivates semantic grouping with two namespace facts drawn
from Spyglass and the trace studies:

* the files matching a query are typically confined to a tiny fraction of
  the directory space (locality ratios below 1 %), *but*
* only a minority of queries can actually be *answered* from a namespace
  prefix — for the rest, a conventional system still has to search the
  whole tree, because knowing that the answers are concentrated somewhere
  does not tell the system where.

This module measures both quantities for a concrete workload over a
concrete namespace, so the motivation can be checked against the synthetic
traces rather than quoted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.eval.recall import ground_truth_range, ground_truth_topk
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.namespace.tree import DirectoryTree, parent_directories
from repro.workloads.types import Query, RangeQuery, TopKQuery

__all__ = ["LocalityReport", "locality_ratio", "common_subtree", "query_locality_report"]


def locality_ratio(matching_files: Iterable[FileMetadata], tree: DirectoryTree) -> float:
    """Fraction of the directory space containing the matching files.

    Spyglass defines the locality ratio of a query as the number of
    directories holding at least one result divided by the total number of
    directories.  An empty result set has, by convention, locality 0.
    """
    total_dirs = tree.num_directories
    if total_dirs == 0:
        return 0.0
    used: Set[str] = {f.directory or "/" for f in matching_files}
    if not used:
        return 0.0
    return len(used) / total_dirs


def common_subtree(matching_files: Sequence[FileMetadata]) -> Optional[str]:
    """Deepest directory containing *every* matching file, or ``None``.

    This is the subtree a namespace-aware system (Spyglass-style) could
    restrict the search to — *if* it somehow knew it in advance.  Returns
    ``None`` for an empty result set.
    """
    files = list(matching_files)
    if not files:
        return None
    ancestor_lists = [parent_directories(f.path) + [f.directory or "/"] for f in files]
    # The common prefix of the ancestor chains is the common subtree.
    common = ancestor_lists[0]
    for chain in ancestor_lists[1:]:
        limit = min(len(common), len(chain))
        i = 0
        while i < limit and common[i] == chain[i]:
            i += 1
        common = common[:i]
        if not common:
            return "/"
    return common[-1] if common else "/"


@dataclass(frozen=True)
class LocalityReport:
    """Namespace-locality summary of one complex-query workload.

    Attributes
    ----------
    num_queries:
        Queries with a non-empty brute-force result set (the others carry no
        locality information).
    mean_locality_ratio / median_locality_ratio:
        Distribution of the Spyglass locality ratio over those queries.
    localizable_fraction:
        Fraction of queries whose entire result set sits inside a *small*
        namespace subtree — one holding at most ``localizable_threshold``
        of all files (10 % by default).  These are the queries a
        namespace hierarchy *could* have answered cheaply, if it somehow
        knew the right subtree in advance; the Spyglass observation quoted
        in §1 is that only a minority of searches are localisable this way.
    mean_subtree_fraction:
        Mean fraction of all files held by the smallest common subtree of
        the result set — how much of the system a namespace-pruned search
        would still have to scan.
    """

    num_queries: int
    mean_locality_ratio: float
    median_locality_ratio: float
    localizable_fraction: float
    mean_subtree_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "num_queries": self.num_queries,
            "mean_locality_ratio": self.mean_locality_ratio,
            "median_locality_ratio": self.median_locality_ratio,
            "localizable_fraction": self.localizable_fraction,
            "mean_subtree_fraction": self.mean_subtree_fraction,
        }


def query_locality_report(
    files: Sequence[FileMetadata],
    queries: Sequence[Query],
    *,
    tree: Optional[DirectoryTree] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    localizable_threshold: float = 0.10,
) -> LocalityReport:
    """Measure namespace locality of a complex-query workload.

    Every range / top-k query is answered by brute force over ``files`` and
    its result set is located in the namespace (built from ``files`` when
    not supplied).  Point queries are ignored — their locality is trivially
    one directory.  A query counts as *localisable* when its smallest
    common subtree holds at most ``localizable_threshold`` of all files —
    i.e. knowing that subtree would genuinely prune the search.
    """
    if tree is None:
        tree = DirectoryTree()
        tree.add_files(files)
    total_files = max(len(files), 1)

    if not 0.0 < localizable_threshold <= 1.0:
        raise ValueError("localizable_threshold must be in (0, 1]")
    ratios: List[float] = []
    localizable = 0
    subtree_fractions: List[float] = []

    for query in queries:
        if isinstance(query, RangeQuery):
            matches = ground_truth_range(files, query)
        elif isinstance(query, TopKQuery):
            matches = ground_truth_topk(files, query, schema)
        else:
            continue
        if not matches:
            continue
        ratios.append(locality_ratio(matches, tree))
        subtree = common_subtree(matches)
        if subtree is not None:
            subtree_files = tree.subtree_files(subtree)
            fraction = len(subtree_files) / total_files
            subtree_fractions.append(fraction)
            if fraction <= localizable_threshold:
                localizable += 1

    n = len(ratios)
    return LocalityReport(
        num_queries=n,
        mean_locality_ratio=float(np.mean(ratios)) if ratios else 0.0,
        median_locality_ratio=float(np.median(ratios)) if ratios else 0.0,
        localizable_fraction=localizable / n if n else 0.0,
        mean_subtree_fraction=float(np.mean(subtree_fractions)) if subtree_fractions else 0.0,
    )
