"""The directory tree: the conventional metadata organisation.

A :class:`DirectoryTree` stores :class:`~repro.metadata.file_metadata.FileMetadata`
records under their path, exactly like the directory-tree based metadata
management the paper's introduction describes.  It supports the operations a
conventional metadata service needs — create/lookup/remove by path, listing a
directory, walking a subtree — and exposes the structural statistics
(directory count, depth distribution, files per directory) the namespace
analyses in :mod:`repro.namespace.locality` are built on.

The tree is deliberately *not* semantic: files land wherever their path says,
and any query that cannot be answered from a path prefix must visit every
directory (that is the brute-force behaviour
:class:`~repro.namespace.baseline.DirectoryTreeBaseline` charges for).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.metadata.file_metadata import FileMetadata

__all__ = ["DirectoryNode", "DirectoryTree", "split_path", "parent_directories"]


def split_path(path: str) -> List[str]:
    """Split an absolute or relative path into its non-empty components.

    ``"/a/b/c.txt"`` and ``"a/b/c.txt"`` both yield ``["a", "b", "c.txt"]``.
    Consecutive separators are collapsed, which mirrors how POSIX path
    resolution treats them.
    """
    return [part for part in path.split("/") if part]


def parent_directories(path: str) -> List[str]:
    """Every ancestor directory path of ``path``, from the root downwards.

    >>> parent_directories("/a/b/c.txt")
    ['/', '/a', '/a/b']
    """
    parts = split_path(path)
    ancestors = ["/"]
    for i in range(1, len(parts)):
        ancestors.append("/" + "/".join(parts[:i]))
    return ancestors


@dataclass
class DirectoryNode:
    """One directory in the tree.

    Attributes
    ----------
    name:
        The final path component ("" for the root).
    path:
        Full normalised directory path ("/" for the root).
    subdirs:
        Child directories keyed by name.
    files:
        File metadata records stored directly in this directory, keyed by
        filename.
    """

    name: str
    path: str
    subdirs: Dict[str, "DirectoryNode"] = field(default_factory=dict)
    files: Dict[str, FileMetadata] = field(default_factory=dict)

    # ------------------------------------------------------------------ content
    @property
    def is_root(self) -> bool:
        return self.path == "/"

    def file_count(self) -> int:
        """Number of files stored directly in this directory."""
        return len(self.files)

    def subtree_file_count(self) -> int:
        """Number of files stored in this directory and every descendant."""
        total = len(self.files)
        for child in self.subdirs.values():
            total += child.subtree_file_count()
        return total

    def iter_subtree(self) -> Iterator["DirectoryNode"]:
        """Pre-order traversal of this directory and every descendant."""
        yield self
        for child in self.subdirs.values():
            yield from child.iter_subtree()

    def iter_files(self) -> Iterator[FileMetadata]:
        """Every file in this directory and every descendant."""
        for node in self.iter_subtree():
            yield from node.files.values()

    def __repr__(self) -> str:
        return (
            f"DirectoryNode(path={self.path!r}, subdirs={len(self.subdirs)}, "
            f"files={len(self.files)})"
        )


class DirectoryTree:
    """A mutable hierarchical namespace over file metadata.

    The tree auto-creates intermediate directories on insertion (``mkdir -p``
    semantics), which is how the namespace of a trace is reconstructed from
    its file paths.
    """

    def __init__(self) -> None:
        self.root = DirectoryNode(name="", path="/")
        self._num_files = 0
        self._num_dirs = 1  # the root

    # ------------------------------------------------------------------ mutation
    def add_file(self, file: FileMetadata) -> DirectoryNode:
        """Insert ``file`` under its path, creating directories as needed.

        Returns the directory node the file was placed in.  Inserting a
        second file with the same full path replaces the previous record
        (same semantics as re-creating a file).
        """
        parts = split_path(file.path)
        if not parts:
            raise ValueError(f"cannot insert a file with an empty path: {file.path!r}")
        directory = self._ensure_directory(parts[:-1])
        filename = parts[-1]
        if filename not in directory.files:
            self._num_files += 1
        directory.files[filename] = file
        return directory

    def add_files(self, files: Iterable[FileMetadata]) -> None:
        """Insert many files."""
        for f in files:
            self.add_file(f)

    def remove_file(self, path: str) -> Optional[FileMetadata]:
        """Remove the file at ``path``; returns it, or ``None`` if absent.

        Empty directories left behind are *not* pruned — conventional file
        systems keep them until an explicit ``rmdir``.
        """
        parts = split_path(path)
        if not parts:
            return None
        directory = self.find_directory("/" + "/".join(parts[:-1]) if len(parts) > 1 else "/")
        if directory is None:
            return None
        removed = directory.files.pop(parts[-1], None)
        if removed is not None:
            self._num_files -= 1
        return removed

    def _ensure_directory(self, parts: Sequence[str]) -> DirectoryNode:
        node = self.root
        for part in parts:
            child = node.subdirs.get(part)
            if child is None:
                child_path = (node.path.rstrip("/") + "/" + part) or "/"
                child = DirectoryNode(name=part, path=child_path)
                node.subdirs[part] = child
                self._num_dirs += 1
            node = child
        return node

    def ensure_directory(self, path: str) -> DirectoryNode:
        """Create (if needed) and return the directory at ``path``."""
        return self._ensure_directory(split_path(path))

    # ------------------------------------------------------------------ lookup
    def find_directory(self, path: str) -> Optional[DirectoryNode]:
        """Return the directory node at ``path`` or ``None``."""
        node = self.root
        for part in split_path(path):
            node = node.subdirs.get(part)
            if node is None:
                return None
        return node

    def lookup(self, path: str) -> Optional[FileMetadata]:
        """Return the file at the full path ``path`` or ``None``.

        This is what a conventional point lookup does: resolve every path
        component in turn, then the final filename.
        """
        parts = split_path(path)
        if not parts:
            return None
        directory = self.root
        for part in parts[:-1]:
            directory = directory.subdirs.get(part)
            if directory is None:
                return None
        return directory.files.get(parts[-1])

    def lookup_with_depth(self, path: str) -> Tuple[Optional[FileMetadata], int]:
        """Like :meth:`lookup` but also reports how many directories were probed.

        The count includes the root and every directory resolved along the
        path (the last one also answers the filename probe) — the
        directory-I/O cost a conventional metadata server pays per path
        resolution.
        """
        parts = split_path(path)
        if not parts:
            return None, 1
        touched = 1  # the root
        directory = self.root
        for part in parts[:-1]:
            directory = directory.subdirs.get(part)
            touched += 1
            if directory is None:
                return None, touched
        return directory.files.get(parts[-1]), touched

    def list_directory(self, path: str) -> Tuple[List[str], List[str]]:
        """Names of the subdirectories and files directly under ``path``.

        Raises ``KeyError`` when the directory does not exist.
        """
        node = self.find_directory(path)
        if node is None:
            raise KeyError(f"no such directory: {path!r}")
        return sorted(node.subdirs.keys()), sorted(node.files.keys())

    def subtree_files(self, path: str) -> List[FileMetadata]:
        """Every file stored under ``path`` (recursively)."""
        node = self.find_directory(path)
        if node is None:
            return []
        return list(node.iter_files())

    # ------------------------------------------------------------------ traversal & stats
    def __len__(self) -> int:
        return self._num_files

    @property
    def num_directories(self) -> int:
        return self._num_dirs

    def iter_directories(self) -> Iterator[DirectoryNode]:
        """Pre-order traversal of every directory."""
        return self.root.iter_subtree()

    def iter_files(self) -> Iterator[FileMetadata]:
        """Every file in the namespace."""
        return self.root.iter_files()

    def directory_paths(self) -> List[str]:
        """Paths of every directory, in pre-order."""
        return [node.path for node in self.iter_directories()]

    def depth(self) -> int:
        """Maximum directory depth (the root has depth 0)."""
        best = 0
        stack: List[Tuple[DirectoryNode, int]] = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((child, d + 1) for child in node.subdirs.values())
        return best

    def files_per_directory(self) -> List[int]:
        """Per-directory direct file counts, in pre-order."""
        return [node.file_count() for node in self.iter_directories()]

    def __repr__(self) -> str:
        return f"DirectoryTree(files={self._num_files}, directories={self._num_dirs})"
