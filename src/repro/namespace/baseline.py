"""The conventional directory-tree metadata service, as a system under test.

This is the left-hand side of the paper's Figure 1: metadata organised
purely by namespace, queries answered by walking directories.  It gives the
evaluation a third comparison point beyond the two database baselines —
what the queries would cost on the file system organisation everybody
already has.

Cost accounting follows the conventions of the other baselines:

* resolving one directory is one index access; the directory tree of a
  large system does not fit in memory, so directory probes are charged at
  disk speed;
* inspecting one file's metadata record is one record scan, also at disk
  speed;
* the server is a single node, so every query costs one request/response
  message pair and visits one unit.

A *filename* point query (the paper's point-query interface) cannot use the
hierarchy at all — without a path there is no prefix to descend — so it
degenerates to a full namespace walk.  Path lookups, the operation
conventional file systems are actually good at, are exposed separately via
:meth:`DirectoryTreeBaseline.path_lookup`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.namespace.tree import DirectoryTree
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["DirectoryTreeBaseline"]


class DirectoryTreeBaseline:
    """A single-server, namespace-organised metadata service.

    Parameters
    ----------
    files:
        The file population to index.
    schema:
        Attribute schema (used for range / top-k evaluation and for the
        index-space geometry of top-k distances).
    cost_model:
        Hardware constants for the latency accounting.
    """

    def __init__(
        self,
        files: Sequence[FileMetadata],
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not files:
            raise ValueError(
                "cannot build the directory-tree baseline over an empty file population"
            )
        self.files = list(files)
        self.schema = schema
        self.cost_model = cost_model
        self.metrics = Metrics()  # lifetime counters

        self.tree = DirectoryTree()
        self.tree.add_files(self.files)

        # Top-k distances use the same log-transformed, min-max-normalised
        # geometry as every other system so the ideal result sets agree.
        self._index_matrix = log_transform(attribute_matrix(self.files, schema), schema)
        lower = self._index_matrix.min(axis=0)
        upper = self._index_matrix.max(axis=0)
        span = np.where(upper > lower, upper - lower, 1.0)
        self._norm_matrix = (self._index_matrix - lower) / span
        self._norm_lower = lower
        self._norm_span = span
        self._log_mask = np.array(schema.log_scale_mask(), dtype=bool)
        self._row_of_file = {f.file_id: i for i, f in enumerate(self.files)}

    # ------------------------------------------------------------------ helpers
    def _finish(self, files: List[FileMetadata], metrics: Metrics,
                distances: Optional[List[float]] = None) -> QueryResult:
        self.metrics.merge(metrics)
        return QueryResult(
            files=files,
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=1,
            hops=0,
            found=bool(files),
            distances=list(distances) if distances else [],
        )

    def _new_metrics(self) -> Metrics:
        metrics = Metrics()
        metrics.record_message(2)  # client -> metadata server -> client
        metrics.record_unit_visit(0)
        return metrics

    def _charge_full_walk(self, metrics: Metrics) -> None:
        """Charge a walk over every directory and every metadata record."""
        metrics.record_index_access(self.tree.num_directories, on_disk=True)
        metrics.record_scan(len(self.files), on_disk=True)

    def _query_norm_point(self, attributes: Sequence[str], values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        idx = np.array([self.schema.index(a) for a in attributes], dtype=np.int64)
        vals = np.array(values, dtype=np.float64)
        mask = self._log_mask[idx]
        vals[mask] = np.log1p(np.maximum(vals[mask], 0.0))
        norm = (vals - self._norm_lower[idx]) / self._norm_span[idx]
        return idx, np.clip(norm, 0.0, 1.0)

    # ------------------------------------------------------------------ queries
    def path_lookup(self, path: str) -> QueryResult:
        """Resolve a full path — the operation the hierarchy is built for.

        Each path component costs one (disk) directory probe; this is the
        cheap case a conventional file system optimises, included so the
        comparison with SmartStore's filename point query is fair about what
        the directory tree *is* good at.
        """
        metrics = self._new_metrics()
        file, touched = self.tree.lookup_with_depth(path)
        metrics.record_index_access(touched, on_disk=True)
        if file is not None:
            metrics.record_scan(1, on_disk=True)
            return self._finish([file], metrics)
        return self._finish([], metrics)

    def point_query(self, query: PointQuery) -> QueryResult:
        """Filename lookup without a path: a brute-force namespace walk."""
        metrics = self._new_metrics()
        matches: List[FileMetadata] = []
        dirs_walked = 0
        for node in self.tree.iter_directories():
            dirs_walked += 1
            # Probing a directory's file table is one directory access; the
            # walk inspects every entry's name (not the full record).
            found = node.files.get(query.filename)
            if found is not None:
                matches.append(found)
        metrics.record_index_access(dirs_walked, on_disk=True)
        metrics.record_scan(len(self.files), on_disk=True)
        return self._finish(matches, metrics)

    def range_query(self, query: RangeQuery) -> QueryResult:
        """Multi-dimensional range query by scanning every record."""
        metrics = self._new_metrics()
        self._charge_full_walk(metrics)
        matches = [
            f
            for f in self.tree.iter_files()
            if f.matches_ranges(query.attributes, query.lower, query.upper)
        ]
        return self._finish(matches, metrics)

    def topk_query(self, query: TopKQuery) -> QueryResult:
        """Top-k query by scanning every record and keeping the k closest."""
        metrics = self._new_metrics()
        self._charge_full_walk(metrics)
        idx, norm_query = self._query_norm_point(query.attributes, query.values)
        diffs = self._norm_matrix[:, idx] - norm_query
        distances = np.sqrt((diffs**2).sum(axis=1))
        k = min(query.k, len(self.files))
        order = np.argsort(distances, kind="stable")[:k]
        files = [self.files[i] for i in order]
        return self._finish(files, metrics, distances=[float(distances[i]) for i in order])

    def subtree_range_query(self, root_path: str, query: RangeQuery) -> QueryResult:
        """Range query restricted to one namespace subtree.

        This models the Spyglass-style best case of §1: *if* the querying
        user happens to know which subtree contains all the answers, the
        walk can be pruned to it.  The caller is responsible for that
        knowledge being correct; results outside the subtree are missed.
        """
        metrics = self._new_metrics()
        node = self.tree.find_directory(root_path)
        if node is None:
            return self._finish([], metrics)
        subtree_dirs = sum(1 for _ in node.iter_subtree())
        subtree_files = list(node.iter_files())
        metrics.record_index_access(subtree_dirs, on_disk=True)
        metrics.record_scan(len(subtree_files), on_disk=True)
        matches = [
            f
            for f in subtree_files
            if f.matches_ranges(query.attributes, query.lower, query.upper)
        ]
        return self._finish(matches, metrics)

    def execute(self, query) -> QueryResult:
        """Dispatch any query object to the matching interface."""
        if isinstance(query, PointQuery):
            return self.point_query(query)
        if isinstance(query, RangeQuery):
            return self.range_query(query)
        if isinstance(query, TopKQuery):
            return self.topk_query(query)
        raise TypeError(f"unsupported query type {type(query)!r}")

    # ------------------------------------------------------------------ space accounting
    def index_space_bytes(self) -> int:
        """Bytes of namespace index state (directory entries).

        Each directory costs one index entry plus one entry per direct child
        (subdirectory or file) — the dentries a conventional metadata server
        keeps.  File metadata records themselves are excluded, consistent
        with the accounting of the other systems.
        """
        cm = self.cost_model
        total = 0
        for node in self.tree.iter_directories():
            total += cm.index_entry_bytes  # the directory inode/entry itself
            total += (len(node.subdirs) + len(node.files)) * cm.index_entry_bytes
        return total

    def index_space_bytes_per_node(self) -> int:
        """Per-server space: the whole namespace lives on the single server."""
        return self.index_space_bytes()

    def __repr__(self) -> str:
        return (
            f"DirectoryTreeBaseline(files={len(self.files)}, "
            f"directories={self.tree.num_directories})"
        )
