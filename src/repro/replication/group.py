"""Replica groups: one primary + N replicas behind a single write/read facade.

A :class:`ReplicaGroup` owns ``N + 1`` complete SmartStore deployments —
each with its own cluster, semantic R-tree, version chains and ingest
pipeline — built identically from the same member population, so any
replica answers any query with the same payload.  The group presents the
familiar two-sided surface of the serving stack:

* like a **SmartStore facade** — an ``engine`` whose
  ``point_query`` / ``range_query`` / ``topk_query`` route to a healthy
  replica (with failover retries), plus ``cluster``, ``versioning``,
  ``schema``, ``files`` and ``config`` delegating to the current primary —
  so a :class:`~repro.shard.router.ShardRouter` or a
  :class:`~repro.service.service.QueryService` runs over a group unchanged;
* like an **IngestPipeline** — ``insert`` / ``delete`` / ``modify``
  returning :class:`~repro.ingest.pipeline.MutationReceipt`, an
  ``overlay``, a ``compactor`` driving every member's compactor, and
  ``stats()``.

The replication protocol:

**Writes** go WAL-first to the primary (its pipeline logs — which fires
the shipping hook — then stages).  The group ships each emitted record
into every replica's pending queue; a durable replica archives the
segment in its own local log as it applies it, so whichever member is
later promoted keeps writing WAL-first on its own disk.  In ``sync`` mode the queues are
drained before the write returns; in ``async`` mode they drain lazily —
bounded by ``max_lag``: a healthy replica is pumped down to the window on
the write path, an unresponsive one is left to its circuit breaker.

**Reads** rotate across members whose breaker admits them.  The chosen
replica is first caught up from its pending queue (*catch-up-on-read*), so
every acknowledged write is visible no matter which replica answers — the
property the byte-identical fingerprint gates rely on.  A read served
after skipping or retrying past an unhealthy member is counted as
*degraded*.

**Failover**: when the primary fails a write, the freshest live replica —
highest applied WAL sequence — is promoted after fully replaying its
shipped log; the write retries on the new primary (the applied-seq
watermark makes a double-shipped record idempotent).  Promotion during
catch-up failure falls back to the next-freshest replica.

**Anti-entropy**: :meth:`ReplicaGroup.anti_entropy` compares per-replica
population fingerprints and repairs any divergent replica — how a
crashed ex-primary (which may hold a record that never shipped) rejoins
safely.  When both the primary and the divergent member run over tiered
segment storage the repair is *snapshot-shipping resync*: the primary's
manifest plus the segments the member is missing are copied over, the
member cold-starts from them (O(tail), mmap — no rebuild), and the WAL
tail beyond the snapshot is replayed through the normal replication
apply.  Without storage on both ends the legacy path rebuilds the member
from the primary's materialised population.
"""

from __future__ import annotations

import hashlib
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.compactor import CompactionPolicy, CompactionStats
from repro.ingest.overlay import StagingOverlay
from repro.ingest.pipeline import IngestPipeline, MutationReceipt, recover_from_storage
from repro.ingest.wal import WALRecord, WriteAheadLog
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.obs import get_registry, get_tracer
from repro.replication.fault import (
    GroupUnavailableError,
    ReplicaCrashedError,
    ReplicaPausedError,
    ReplicaUnavailableError,
)
from repro.replication.health import BreakerPolicy, HealthTracker
from repro.storage import SegmentStore, has_snapshot, ship_snapshot

__all__ = [
    "ReplicationConfig",
    "Replica",
    "ReplicaGroup",
    "build_replica_group",
    "population_fingerprint",
]

#: Replication modes: ``async`` ships lazily within the lag window,
#: ``sync`` drains every healthy replica before acknowledging a write.
REPLICATION_MODES = ("async", "sync")


@dataclass(frozen=True)
class ReplicationConfig:
    """How a replica group (or every group of a sharded router) replicates.

    ``replicas``
        Replicas *in addition to* the primary (``2`` means three copies).
    ``mode``
        ``"async"`` (bounded-lag shipping) or ``"sync"``.
    ``max_lag``
        Async only: the most shipped-but-unapplied records a healthy
        replica may accumulate before the write path pumps it down.
    ``breaker``
        Per-replica circuit-breaker policy.
    """

    replicas: int = 1
    mode: str = "async"
    max_lag: int = 64
    breaker: BreakerPolicy = BreakerPolicy()

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a replica group needs at least 1 replica")
        if self.mode not in REPLICATION_MODES:
            raise ValueError(f"mode must be one of {REPLICATION_MODES}")
        if self.max_lag < 1:
            raise ValueError("max_lag must be >= 1")


def population_fingerprint(files: Sequence[FileMetadata]) -> str:
    """Order-independent digest of a logical population.

    Hashes every record's id, path and attribute values in file-id order;
    two replicas whose logical populations agree produce the same digest no
    matter how their physical layouts differ.  The anti-entropy pass
    compares these per member.
    """
    h = hashlib.sha256()
    for f in sorted(files, key=lambda f: f.file_id):
        h.update(str(f.file_id).encode("ascii") + b"\x1f")
        h.update(f.path.encode("utf-8") + b"\x1f")
        for name in sorted(f.attributes):
            h.update(f"{name}={f.attributes[name]!r}\x1f".encode("utf-8"))
        h.update(b"\x1e")
    return h.hexdigest()


class Replica:
    """One member of a replica group: a full deployment plus health state."""

    def __init__(
        self,
        replica_id: int,
        store: SmartStore,
        pipeline: IngestPipeline,
        *,
        breaker: BreakerPolicy = BreakerPolicy(),
    ) -> None:
        self.replica_id = replica_id
        self.store = store
        self.pipeline = pipeline
        self.tracker = HealthTracker(breaker)
        # Shipped-but-unapplied WAL records, oldest first.  Appends only
        # take the queue lock so the primary's write path never blocks
        # behind a long read on this replica.
        self.pending: Deque[WALRecord] = deque()
        self._queue_lock = threading.Lock()
        # Serialises apply/pump/query on this replica's structures.
        self.lock = threading.RLock()
        # Fault state, flipped by repro.replication.fault.FaultInjector.
        self.crashed = False
        self.paused = False
        self.slow_seconds = 0.0
        self.fail_point: Optional[str] = None  # "before_ship" | "after_ship"
        self.crash_after_applies: Optional[int] = None

    @property
    def applied_seq(self) -> int:
        return self.pipeline.applied_seq

    def lag(self) -> int:
        with self._queue_lock:
            return len(self.pending)

    def enqueue(self, record: WALRecord) -> int:
        with self._queue_lock:
            self.pending.append(record)
            return len(self.pending)

    def next_pending(self) -> Optional[WALRecord]:
        with self._queue_lock:
            return self.pending[0] if self.pending else None

    def pop_pending(self) -> None:
        with self._queue_lock:
            if self.pending:
                self.pending.popleft()

    def clear_pending(self) -> None:
        with self._queue_lock:
            self.pending.clear()

    def check_available(self) -> None:
        """Raise if the replica cannot serve; simulate slowness if armed."""
        if self.crashed:
            raise ReplicaCrashedError(f"replica {self.replica_id} is crashed")
        if self.paused:
            raise ReplicaPausedError(f"replica {self.replica_id} is paused")
        if self.slow_seconds:
            time.sleep(self.slow_seconds)

    def __repr__(self) -> str:
        return (
            f"Replica(id={self.replica_id}, applied_seq={self.applied_seq}, "
            f"lag={self.lag()}, state={self.tracker.state!r}, "
            f"crashed={self.crashed}, paused={self.paused})"
        )


class _GroupVersioning:
    """Composite change clock over every member, resilient to resync.

    ``change_clock`` is ``(resyncs, *per-member clocks)`` read dynamically,
    so a mutation on any member — or a replica rebuild — makes cached
    results stale.  Listeners are remembered and re-subscribed to the fresh
    manager whenever a resync swaps a member's store out.
    """

    def __init__(self, group: "ReplicaGroup") -> None:
        self._group = group
        self._listeners: List[Callable[[], None]] = []

    @property
    def change_clock(self) -> Tuple[int, ...]:
        return (
            self._group.resyncs,
            *(m.store.versioning.change_clock for m in self._group.members),
        )

    def subscribe(self, listener: Callable[[], None]) -> None:
        self._listeners.append(listener)
        for member in self._group.members:
            member.store.versioning.subscribe(listener)

    def unsubscribe(self, listener: Callable[[], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)
        for member in self._group.members:
            member.store.versioning.unsubscribe(listener)

    def rewire(self, manager: Any) -> None:
        """Subscribe the remembered listeners to a resynced member's manager."""
        for listener in self._listeners:
            manager.subscribe(listener)


class _GroupEngine:
    """Failover-aware query facade; everything else delegates to the primary."""

    def __init__(self, group: "ReplicaGroup") -> None:
        self._group = group

    def point_query(
        self, query: Any, *, home_unit: Optional[int] = None, **kwargs: Any
    ) -> Any:
        return self._group.read("point_query", query, home_unit=home_unit, **kwargs)

    def range_query(
        self, query: Any, *, home_unit: Optional[int] = None, **kwargs: Any
    ) -> Any:
        return self._group.read("range_query", query, home_unit=home_unit, **kwargs)

    def topk_query(
        self, query: Any, *, home_unit: Optional[int] = None, **kwargs: Any
    ) -> Any:
        return self._group.read("topk_query", query, home_unit=home_unit, **kwargs)

    def __getattr__(self, name: str) -> Any:
        # to_index_space / index_lower / node_by_id / ... — read-only
        # geometry shared by every identically-built member.
        return getattr(self._group.primary.store.engine, name)


class _GroupCompactor:
    """Drives every member's compactor (replicas catch up first)."""

    def __init__(self, group: "ReplicaGroup") -> None:
        self._group = group

    @property
    def stats(self) -> CompactionStats:
        return self._group.primary.pipeline.compactor.stats

    def _sweep(self, entry_point: str) -> int:
        group = self._group
        applied = 0
        for member in group.members:
            if member.crashed or member.paused:
                continue
            with member.lock:
                try:
                    group.pump(member)
                except ReplicaUnavailableError:
                    member.tracker.record_failure()
                    continue
                applied += getattr(member.pipeline.compactor, entry_point)()
        return applied

    def run_once(self) -> int:
        return self._sweep("run_once")

    def drain(self) -> int:
        return self._sweep("drain")


class ReplicaGroup:
    """One primary plus N replicas acting as a single store + write path."""

    def __init__(
        self,
        members: Sequence[Replica],
        *,
        mode: str = "async",
        max_lag: int = 64,
        snapshot_policy: str = "checkpoint",
    ) -> None:
        if len(members) < 2:
            raise ValueError("a replica group needs a primary and >= 1 replica")
        if mode not in REPLICATION_MODES:
            raise ValueError(f"mode must be one of {REPLICATION_MODES}")
        self.members = list(members)
        self.mode = mode
        self.max_lag = max_lag
        #: "checkpoint" publishes a fresh primary snapshot before every
        #: snapshot-shipping resync; "manual" ships the last published
        #: snapshot plus a WAL-tail catch-up.
        self.snapshot_policy = snapshot_policy
        self._primary_id = 0
        self._lock = threading.RLock()
        self._rr = 0
        self.versioning = _GroupVersioning(self)
        self.engine = _GroupEngine(self)
        self.compactor = _GroupCompactor(self)
        # Counters (all monotone; the router/service drain deltas).
        self.failovers = 0
        self.degraded_reads = 0
        self.read_retries = 0
        self.reads_served = 0
        self.writes_acked = 0
        self.resyncs = 0
        self.snapshot_ships = 0
        self.snapshot_bytes = 0
        self.rebuild_resyncs = 0
        registry = get_registry()
        self._ship_counter = registry.counter(
            "resync_snapshot_ship_total",
            "Replica resyncs served by snapshot shipping (vs full rebuild)",
        )
        self._ship_bytes_counter = registry.counter(
            "resync_snapshot_bytes_total",
            "Bytes (segments + manifest) copied during snapshot-shipping resyncs",
        )
        self.anti_entropy_checks = 0
        self.anti_entropy_repairs = 0
        self.max_observed_lag = 0
        self._events_seen: Dict[str, int] = {}
        self._ae_stop = threading.Event()
        self._ae_thread: Optional[threading.Thread] = None
        self._closed = False
        for member in self.members:
            self._wire_shipping(member)

    # ------------------------------------------------------------------ membership
    def _wire_shipping(self, member: Replica) -> None:
        member.pipeline.subscribe_mutations(
            lambda record, m=member: self._on_record(m, record)
        )

    @property
    def primary_id(self) -> int:
        with self._lock:
            return self._primary_id

    @property
    def primary(self) -> Replica:
        with self._lock:
            return self.members[self._primary_id]

    def live_members(self) -> List[Replica]:
        return [m for m in self.members if not m.crashed]

    @property
    def num_replicas(self) -> int:
        return len(self.members) - 1

    # ------------------------------------------------------------------ store facade
    @property
    def schema(self) -> AttributeSchema:
        return self.primary.store.schema

    @property
    def config(self) -> SmartStoreConfig:
        return self.primary.store.config

    @property
    def files(self) -> List[FileMetadata]:
        return self.primary.store.files

    @property
    def index_lower(self) -> np.ndarray:
        return self.primary.store.index_lower

    @property
    def index_upper(self) -> np.ndarray:
        return self.primary.store.index_upper

    @property
    def cluster(self) -> Any:
        return self.primary.store.cluster

    @property
    def overlay(self) -> StagingOverlay:
        return self.primary.pipeline.overlay

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self.primary.pipeline.wal

    def default_pipeline(self) -> "ReplicaGroup":
        """The group is its own write path (QueryService hook)."""
        return self

    def execute(self, query: object) -> Any:
        """Facade-style dispatch (mirrors :meth:`SmartStore.execute`)."""
        from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

        if isinstance(query, PointQuery):
            return self.engine.point_query(query)
        if isinstance(query, RangeQuery):
            return self.engine.range_query(query)
        if isinstance(query, TopKQuery):
            return self.engine.topk_query(query)
        raise TypeError(f"unsupported query type {type(query)!r}")

    def materialized_files(self) -> List[FileMetadata]:
        return self.primary.pipeline.materialized_files()

    def checkpoint(self) -> Dict[str, object]:
        """Publish a segment snapshot on every storage-backed member.

        Replicas are pumped down to the primary's watermark first, so all
        members freeze the same logical population and a later cold start
        restores a coherent group.  Returns the primary's manifest.
        """
        result: Dict[str, object] = {}
        published = 0
        with self._lock:
            primary = self.members[self._primary_id]
            for member in self.members:
                if member.crashed or member.paused:
                    continue
                if getattr(member.pipeline, "storage", None) is None:
                    continue
                with member.lock:
                    if member is not primary:
                        self._pump_quietly(member)
                    manifest = member.pipeline.checkpoint()
                    published += 1
                    if member is primary:
                        result = manifest
        if not published:
            raise ValueError(
                "checkpoint() needs a segment store attached to at least "
                "the primary (DeploymentSpec.storage / attach_storage)"
            )
        return result

    # ------------------------------------------------------------------ shipping
    def _on_record(self, source: Replica, record: WALRecord) -> None:
        """Mutation-feed hook: ship the primary's records to the replicas.

        Fires for every member's pipeline, but only the *current* primary's
        emissions ship — a replica's own applies (catch-up) and an
        ex-primary's death throes must not echo back into the queues.
        """
        with self._lock:
            if self.members[self._primary_id] is not source:
                return
            others = [m for m in self.members if m is not source]
        for member in others:
            member.enqueue(record)

    def pump(self, member: Replica, *, budget: Optional[int] = None) -> int:
        """Apply ``member``'s pending shipped records (oldest first).

        Raises :class:`ReplicaUnavailableError` when the member cannot
        apply (crashed / paused / armed crash countdown fires); the caller
        decides whether that means breaker bookkeeping or promotion
        fallback.  Returns the number of records applied.
        """
        applied = 0
        with member.lock:
            while budget is None or applied < budget:
                member.check_available()
                record = member.next_pending()
                if record is None:
                    break
                if member.crash_after_applies is not None and member.crash_after_applies <= 0:
                    member.crashed = True
                    member.crash_after_applies = None
                    raise ReplicaCrashedError(
                        f"replica {member.replica_id} crashed during catch-up"
                    )
                member.pipeline.apply_replicated(record)
                member.pop_pending()
                applied += 1
                if member.crash_after_applies is not None:
                    member.crash_after_applies -= 1
        return applied

    # ------------------------------------------------------------------ writes
    def insert(self, file: FileMetadata) -> MutationReceipt:
        """Insert on the primary, ship to replicas (fails over if needed)."""
        return self._mutate("insert", file)

    def delete(self, file: FileMetadata) -> MutationReceipt:
        """Delete on the primary, ship to replicas (fails over if needed)."""
        return self._mutate("delete", file)

    def modify(self, file: FileMetadata) -> MutationReceipt:
        """Modify on the primary, ship to replicas (fails over if needed)."""
        return self._mutate("modify", file)

    def _mutate(self, kind: str, file: FileMetadata) -> MutationReceipt:
        if self._closed:
            raise RuntimeError("replica group is closed")
        with self._lock:
            # One failover attempt per member is enough: each retry either
            # succeeds or permanently removes a candidate from promotion.
            for _ in range(len(self.members)):
                primary = self.members[self._primary_id]
                try:
                    receipt = self._mutate_on(primary, kind, file)
                except ReplicaUnavailableError:
                    primary.tracker.record_failure()
                    self.promote()  # raises GroupUnavailableError when hopeless
                    continue
                primary.tracker.record_success()
                self.writes_acked += 1
                return receipt
        raise GroupUnavailableError("no replica could accept the write")

    def _mutate_on(self, primary: Replica, kind: str, file: FileMetadata) -> MutationReceipt:
        primary.check_available()
        receipt = getattr(primary.pipeline, kind)(file)
        # The pipeline's mutation feed already shipped the record via
        # _on_record; the one-shot fail points model the crash landing just
        # around that instant.
        if primary.fail_point == "before_ship":
            # Logged locally, segment never left: un-ship what the feed
            # enqueued, then die.  The client write is NOT acknowledged;
            # its retry lands on the promoted replica.
            primary.fail_point = None
            primary.crashed = True
            for member in self.members:
                if member is primary:
                    continue
                with member._queue_lock:
                    if member.pending and member.pending[-1].seq == receipt.seq:
                        member.pending.pop()
            raise ReplicaCrashedError(
                f"primary {primary.replica_id} crashed before shipping seq {receipt.seq}"
            )
        if primary.fail_point == "after_ship":
            # Segment shipped, ack never sent: the retry double-applies,
            # which the replicas' seq watermark makes idempotent.
            primary.fail_point = None
            primary.crashed = True
            raise ReplicaCrashedError(
                f"primary {primary.replica_id} crashed after shipping seq {receipt.seq}"
            )
        if self.mode == "sync":
            for member in self.members:
                if member is primary:
                    continue
                self._pump_quietly(member)
        else:
            for member in self.members:
                if member is primary or member.lag() <= self.max_lag:
                    continue
                # Bounded lag window: a healthy replica is pumped back
                # inside it before the write is acknowledged; an
                # unresponsive one is left to its circuit breaker.
                self._pump_quietly(member, budget=member.lag() - self.max_lag)
        # The window is a promise about *healthy* replicas — a crashed or
        # paused member's queue grows until reintegration and must not
        # count against the bounded-lag gate.
        for member in self.members:
            if member is primary or member.crashed or member.paused:
                continue
            lag = member.lag()
            if lag > self.max_observed_lag:
                self.max_observed_lag = lag
        return receipt

    def _pump_quietly(self, member: Replica, *, budget: Optional[int] = None) -> None:
        try:
            self.pump(member, budget=budget)
            member.tracker.record_success()
        except ReplicaUnavailableError:
            member.tracker.record_failure()

    # ------------------------------------------------------------------ failover
    def promote(self) -> Replica:
        """Promote the freshest live replica to primary.

        Candidates are tried in decreasing applied-seq order; each is
        caught up by replaying its shipped log before taking over.  A
        candidate that dies mid catch-up is skipped (and its breaker
        debited) in favour of the next-freshest.
        """
        with self._lock:
            order = sorted(
                (i for i in range(len(self.members)) if i != self._primary_id),
                key=lambda i: (-self.members[i].applied_seq, i),
            )
            for idx in order:
                candidate = self.members[idx]
                try:
                    candidate.check_available()
                    self.pump(candidate)  # catch-up: replay the shipped log
                except ReplicaUnavailableError:
                    candidate.tracker.record_failure()
                    continue
                self._primary_id = idx
                candidate.tracker.record_success()
                self.failovers += 1
                return candidate
            raise GroupUnavailableError(
                "no live replica is available for promotion"
            )

    # ------------------------------------------------------------------ reads
    def read(
        self,
        method: str,
        query: Any,
        *,
        home_unit: Optional[int] = None,
        consistency: Optional[str] = None,
        max_staleness: int = 0,
        **kwargs: Any,
    ) -> Any:
        """Serve one query from a healthy member (catch-up-on-read).

        Members are tried in rotating order; breakers filter candidates
        up front, failures during the attempt rotate to the next member.
        A read that had to skip or retry past anyone counts as degraded.

        ``consistency`` relaxes the catch-up-on-read step (the default,
        ``None`` or ``"primary"``, fully drains the chosen member's
        shipped-record queue first, so every acknowledged write is
        visible — primary-equivalent visibility from any member):

        * ``"any_replica"`` skips catch-up entirely — the member answers
          from whatever it has applied, trailing the primary by up to its
          current replication lag;
        * ``"bounded"`` pumps the member down to at most ``max_staleness``
          shipped-but-unapplied records before answering.

        Any further keyword arguments (e.g. a cooperative ``deadline``)
        are forwarded to the serving member's engine.
        """
        if self._closed:
            raise RuntimeError("replica group is closed")
        with self._lock:
            start = self._rr
            self._rr = (self._rr + 1) % len(self.members)
        degraded = False
        last_error: Optional[Exception] = None
        for offset in range(len(self.members)):
            member = self.members[(start + offset) % len(self.members)]
            if not member.tracker.available():
                degraded = True
                continue
            try:
                with member.lock, get_tracer().span(
                    "replica.read",
                    replica=member.replica_id,
                    consistency=consistency or "primary",
                    method=method,
                ) as read_span:
                    member.check_available()
                    if consistency == "any_replica":
                        pass  # serve as-is; staleness bounded only by lag
                    elif consistency == "bounded":
                        excess = member.lag() - max(0, max_staleness)
                        if excess > 0:
                            with get_tracer().span(
                                "replica.catchup",
                                replica=member.replica_id,
                                budget=excess,
                            ):
                                self.pump(member, budget=excess)
                    else:
                        with get_tracer().span(
                            "replica.catchup", replica=member.replica_id
                        ):
                            self.pump(member)
                    result = getattr(member.store.engine, method)(
                        query, home_unit=home_unit, **kwargs
                    )
                    read_span.tag(degraded=degraded)
            except ReplicaUnavailableError as exc:
                member.tracker.record_failure()
                with self._lock:
                    self.read_retries += 1
                degraded = True
                last_error = exc
                continue
            member.tracker.record_success()
            with self._lock:
                self.reads_served += 1
                if degraded:
                    self.degraded_reads += 1
            return result
        raise GroupUnavailableError(
            f"no replica could serve {method}"
        ) from last_error

    def drain_replication_events(self) -> Dict[str, int]:
        """Failover/degraded-read/retry counts since the last drain.

        Same contract as
        :meth:`~repro.shard.router.ShardRouter.drain_replication_events` —
        the query service polls this after engine executions when it runs
        directly over one group.
        """
        with self._lock:
            totals = {
                "failovers": self.failovers,
                "degraded_reads": self.degraded_reads,
                "replica_retries": self.read_retries,
            }
            delta = {k: v - self._events_seen.get(k, 0) for k, v in totals.items()}
            self._events_seen = totals
            return delta

    # ------------------------------------------------------------------ anti-entropy
    def fingerprints(self) -> List[Optional[str]]:
        """Per-member population fingerprints (``None`` for crashed members)."""
        prints: List[Optional[str]] = []
        for member in self.members:
            if member.crashed or member.paused:
                prints.append(None)
                continue
            with member.lock:
                prints.append(population_fingerprint(member.pipeline.materialized_files()))
        return prints

    def anti_entropy(self) -> Dict[str, int]:
        """Reconcile replicas against the primary's population fingerprint.

        Each live replica is caught up from its shipped log, then its
        logical-population digest is compared with the primary's; a
        divergent replica (e.g. an ex-primary holding a never-shipped
        record) is rebuilt from the primary's materialised population.
        Returns ``{"checked": ..., "repaired": ...}``.
        """
        with self._lock:
            primary = self.members[self._primary_id]
            with primary.lock:
                reference = population_fingerprint(primary.pipeline.materialized_files())
            checked = repaired = 0
            for member in self.members:
                if member is primary or member.crashed or member.paused:
                    continue
                checked += 1
                self._pump_quietly(member)
                with member.lock:
                    digest = population_fingerprint(member.pipeline.materialized_files())
                if digest != reference:
                    self._resync(member)
                    repaired += 1
            self.anti_entropy_checks += checked
            self.anti_entropy_repairs += repaired
            return {"checked": checked, "repaired": repaired}

    def start_anti_entropy(self, interval: float = 0.25) -> "ReplicaGroup":
        """Run the anti-entropy pass on a daemon thread until stopped.

        Every pass pumps the live replicas and repairs fingerprint
        divergence; between passes the thread sleeps ``interval`` seconds.
        The pass serialises on the group/member locks, so it interleaves
        safely with reads, writes and failover.
        """
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if self._ae_thread is not None:
            return self
        self._ae_stop.clear()

        def loop() -> None:
            while not self._ae_stop.wait(interval):
                self.anti_entropy()

        self._ae_thread = threading.Thread(
            target=loop, name="repro-anti-entropy", daemon=True
        )
        self._ae_thread.start()
        return self

    def stop_anti_entropy(self) -> None:
        if self._ae_thread is None:
            return
        self._ae_stop.set()
        self._ae_thread.join()
        self._ae_thread = None

    def reintegrate(self, member: Replica) -> None:
        """Bring a recovered member back into rotation.

        Replays its queued shipped records; if its population still
        diverges from the primary's (it applied something that never
        shipped), it is rebuilt outright.  Its breaker is closed on
        success — recovery is the strongest health signal there is.
        """
        with self._lock:
            if member is self.members[self._primary_id]:
                member.tracker.record_success()
                return
            try:
                self.pump(member)
            except ReplicaUnavailableError:
                member.tracker.record_failure()
                return
            primary = self.members[self._primary_id]
            with primary.lock:
                reference = population_fingerprint(primary.pipeline.materialized_files())
            with member.lock:
                digest = population_fingerprint(member.pipeline.materialized_files())
            if digest != reference:
                self._resync(member)
            member.tracker.record_success()

    def _resync(self, member: Replica) -> None:
        """Bring one divergent replica back in line with the primary.

        Snapshot-shipping is preferred whenever both ends run over tiered
        segment storage: ship the primary's manifest plus whatever
        segments the member is missing, cold-start the member from them
        (mmap, no rebuild) and replay the WAL tail beyond the snapshot.
        Anything that disqualifies or fails the ship — no storage on
        either side, shared root, no published snapshot under the
        ``manual`` policy, or damage detected while restoring the shipped
        bytes — falls back to the legacy full rebuild from the primary's
        materialised population.
        """
        primary = self.members[self._primary_id]
        if self._resync_snapshot(primary, member):
            return
        self._resync_rebuild(primary, member)

    def _resync_snapshot(self, primary: Replica, member: Replica) -> bool:
        src = getattr(primary.pipeline, "storage", None)
        dst = getattr(member.pipeline, "storage", None)
        if src is None or dst is None:
            return False
        if Path(src.root) == Path(dst.root):
            return False
        try:
            with primary.lock:
                if self.snapshot_policy == "checkpoint":
                    manifest = primary.pipeline.checkpoint()
                else:
                    manifest = src.manifest
                    if manifest is None:
                        return False
                watermark = int(manifest["wal_seq"])  # type: ignore[arg-type]
                tail: List[WALRecord] = []
                if primary.pipeline.applied_seq > watermark:
                    wal = primary.pipeline.wal
                    if wal is None:
                        # Volatile primary with a stale manifest: the gap
                        # beyond the snapshot is unrecoverable here.
                        return False
                    tail = [
                        r
                        for r in wal.replay()
                        if r.seq > watermark
                        and r.kind != "checkpoint"
                        and r.file is not None
                    ]
            with get_tracer().span(
                "storage.resync_ship",
                replica=member.replica_id,
                watermark=watermark,
            ) as span:
                bytes_shipped, segments_shipped = ship_snapshot(
                    src, dst.root, manifest
                )
                span.tag(bytes=bytes_shipped, segments=segments_shipped)
        except (OSError, ValueError, KeyError):
            return False
        with member.lock:
            old = member.pipeline
            policy = old.compactor.policy
            resident = dst.resident_budget
            wal_path = old.wal.path if old.wal is not None else None
            fsync_every = old.wal.fsync_every if old.wal is not None else 1
            old.close()
            dst.close()
            if wal_path is not None:
                wal_path.unlink(missing_ok=True)
            try:
                pipeline, report = recover_from_storage(
                    dst.root,
                    wal_path=wal_path,
                    fsync_every=fsync_every,
                    policy=policy,
                    resident_segments=resident,
                )
            except (OSError, ValueError):
                return False
            pipeline.applied_seq = watermark
            pipeline._next_local_seq = watermark + 1
            member.store = pipeline.store
            member.pipeline = pipeline
            member.clear_pending()
            if report.segments_quarantined:
                # The shipped bytes were damaged in flight: the member is
                # consistent but degraded — let the rebuild path finish.
                self._wire_shipping(member)
                self.versioning.rewire(pipeline.store.versioning)
                return False
            for record in tail:
                pipeline.apply_replicated(record)
        self._wire_shipping(member)
        self.versioning.rewire(member.store.versioning)
        self.resyncs += 1
        self.snapshot_ships += 1
        self.snapshot_bytes += bytes_shipped
        self._ship_counter.inc()
        self._ship_bytes_counter.inc(bytes_shipped)
        return True

    def _resync_rebuild(self, primary: Replica, member: Replica) -> None:
        """Rebuild one replica from the primary's logical population.

        The member keeps its compaction policy, and a durable member gets
        a fresh log at its old path (the rebuilt population supersedes the
        divergent records; shipped segments resume at the watermark).  A
        storage-backed member gets a fresh segment store on its old root
        — generation continues from the root's published manifest, so the
        next publish never overwrites a live segment file.
        """
        with primary.lock:
            files = sorted(
                primary.pipeline.materialized_files(), key=lambda f: f.file_id
            )
            watermark = primary.pipeline.applied_seq
        store = SmartStore.build(
            files,
            self.config,
            self.schema,
            index_bounds=(self.index_lower, self.index_upper),
        )
        with member.lock:
            old = member.pipeline
            policy = old.compactor.policy
            old_storage = getattr(old, "storage", None)
            old.close()
            wal = None
            if old.wal is not None:
                old.wal.path.unlink(missing_ok=True)
                wal = WriteAheadLog(old.wal.path, fsync_every=old.wal.fsync_every)
            pipeline = IngestPipeline(store, wal, policy=policy)
            pipeline.applied_seq = watermark
            pipeline._next_local_seq = watermark + 1
            if old_storage is not None:
                root = old_storage.root
                budget = old_storage.resident_budget
                old_storage.close()
                pipeline.attach_storage(
                    SegmentStore(root, resident_segments=budget)
                )
            member.store = store
            member.pipeline = pipeline
            member.clear_pending()
        self._wire_shipping(member)
        self.versioning.rewire(store.versioning)
        self.resyncs += 1
        self.rebuild_resyncs += 1

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.stop_anti_entropy()
        for member in self.members:
            member.pipeline.close()

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, object]:
        return {
            "members": len(self.members),
            "primary": self.primary_id,
            "mode": self.mode,
            "max_lag": self.max_lag,
            "failovers": self.failovers,
            "degraded_reads": self.degraded_reads,
            "read_retries": self.read_retries,
            "reads_served": self.reads_served,
            "writes_acked": self.writes_acked,
            "resyncs": self.resyncs,
            "snapshot_ships": self.snapshot_ships,
            "snapshot_bytes": self.snapshot_bytes,
            "rebuild_resyncs": self.rebuild_resyncs,
            "anti_entropy": {
                "checked": self.anti_entropy_checks,
                "repaired": self.anti_entropy_repairs,
            },
            "max_observed_lag": self.max_observed_lag,
            "replicas": [
                {
                    "replica_id": m.replica_id,
                    "applied_seq": m.applied_seq,
                    "lag": m.lag(),
                    "breaker": m.tracker.as_dict(),
                    "crashed": m.crashed,
                    "paused": m.paused,
                }
                for m in self.members
            ],
            "ingest": self.primary.pipeline.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup(members={len(self.members)}, primary={self.primary_id}, "
            f"mode={self.mode!r}, failovers={self.failovers})"
        )


def _build_replica_group(
    files: Sequence[FileMetadata],
    config: Optional[SmartStoreConfig] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    replication: Optional[ReplicationConfig] = None,
    index_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    wal_path: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
    policy: Optional[CompactionPolicy] = None,
    storage: Optional[Any] = None,
) -> ReplicaGroup:
    """Build ``replication.replicas + 1`` identical deployments as one group.

    Every member is built from the same population with the same
    configuration (and, when supplied, the same corpus-wide
    ``index_bounds``), so any member answers any query with the same
    payload.  ``wal_path`` makes the deployment durable: the primary logs
    at that path and every replica archives the shipped segments in its
    own log beside it (``<name>.r<i>``) — each machine's disk is its own,
    and a promoted primary therefore keeps writing WAL-first.

    ``storage`` (a :class:`~repro.storage.StorageConfig` with a root)
    gives every member its own segment-store root beside the primary's
    (``<root>`` for the primary, ``<root>/r<i>`` per replica).  A member
    whose root already holds a published snapshot cold-starts from it —
    manifest + mmap'd segments + WAL tail, O(tail) — instead of being
    rebuilt from ``files``; resync then ships snapshots between those
    roots instead of rebuilding.
    """
    config = config if config is not None else SmartStoreConfig()
    replication = replication if replication is not None else ReplicationConfig()
    files = list(files)
    members: List[Replica] = []
    snapshot_policy = "checkpoint"
    for replica_id in range(replication.replicas + 1):
        path = None
        if wal_path is not None:
            path = Path(wal_path)
            if replica_id:
                path = path.with_name(f"{path.name}.r{replica_id}")
        if storage is not None and storage.root:
            snapshot_policy = storage.snapshot_policy
            member_root = Path(storage.root)
            if replica_id:
                member_root = member_root / f"r{replica_id}"
            if has_snapshot(member_root):
                pipeline, _report = recover_from_storage(
                    member_root,
                    wal_path=path,
                    fsync_every=fsync_every,
                    policy=policy,
                    resident_segments=storage.resident_segments,
                )
                members.append(
                    Replica(
                        replica_id,
                        pipeline.store,
                        pipeline,
                        breaker=replication.breaker,
                    )
                )
                continue
            build_files = files
            if not build_files and members:
                # Restore flow where this member's root was never
                # checkpointed: rebuild it from the restored primary's
                # population (anti-entropy would do the same later).
                build_files = sorted(
                    members[0].pipeline.materialized_files(),
                    key=lambda f: f.file_id,
                )
            store = SmartStore.build(
                build_files, config, schema, index_bounds=index_bounds
            )
            wal = WriteAheadLog(path, fsync_every=fsync_every) if path is not None else None
            pipeline = IngestPipeline(store, wal, policy=policy)
            pipeline.attach_storage(
                SegmentStore(
                    member_root, resident_segments=storage.resident_segments
                )
            )
            members.append(
                Replica(replica_id, store, pipeline, breaker=replication.breaker)
            )
            continue
        store = SmartStore.build(files, config, schema, index_bounds=index_bounds)
        wal = WriteAheadLog(path, fsync_every=fsync_every) if path is not None else None
        pipeline = IngestPipeline(store, wal, policy=policy)
        members.append(
            Replica(replica_id, store, pipeline, breaker=replication.breaker)
        )
    return ReplicaGroup(
        members,
        mode=replication.mode,
        max_lag=replication.max_lag,
        snapshot_policy=snapshot_policy,
    )


def build_replica_group(*args: Any, **kwargs: Any) -> ReplicaGroup:
    """Deprecated entry point: build a replica group directly.

    Prefer the unified client front door — ``repro.api.connect`` with a
    :class:`~repro.api.spec.DeploymentSpec` of topology ``"replicated"``
    — which returns a :class:`~repro.api.client.Client` carrying request
    options (deadline, consistency, pagination) and a uniform response
    envelope.  This wrapper keeps every legacy call-site working
    unchanged; it forwards verbatim.
    """
    warnings.warn(
        "build_replica_group is deprecated; use repro.api.connect with a "
        "DeploymentSpec(topology='replicated') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_replica_group(*args, **kwargs)
