"""Replication: replica groups, live failover and fault injection.

The serving path built by the earlier layers — query service, durable
ingest, scatter-gather sharding — had exactly one copy of every shard: one
object dies, every scatter-gather fails.  This package supplies the missing
availability layer, mirroring the reliability argument §4.3 makes for root
multi-mapping:

``repro.replication.group``
    :class:`ReplicaGroup` — one primary plus N replicas, each a complete
    SmartStore deployment.  Writes go WAL-first to the primary and are
    shipped as WAL-segment records to the replicas (asynchronously within a
    bounded lag window, or synchronously in ``sync`` mode); reads scatter
    across healthy replicas with catch-up-on-read, so every acked write is
    visible no matter which replica answers; on primary failure the
    freshest replica (highest applied WAL seq) is promoted after replaying
    its shipped log; an anti-entropy pass reconciles population
    fingerprints and rebuilds divergent replicas.
``repro.replication.health``
    :class:`HealthTracker` — per-replica consecutive-failure circuit
    breaker with deterministic (selection-counted, not wall-clock)
    open → half-open → closed transitions.
``repro.replication.fault``
    :class:`FaultInjector` — crash / pause / slow faults against *real*
    replica objects (contrast with the visibility-overlay injector in
    :mod:`repro.cluster.failures`), used by the tests, the failover drill
    and ``repro replica-bench``.
``repro.replication.benchmarking``
    The kill-the-primary equivalence harness behind ``replica-bench`` and
    the ``fault-injection-smoke`` CI job.
"""

from repro.replication.fault import (
    FaultInjector,
    GroupUnavailableError,
    ReplicaCrashedError,
    ReplicaPausedError,
    ReplicaUnavailableError,
)
from repro.replication.group import (
    Replica,
    ReplicaGroup,
    ReplicationConfig,
    build_replica_group,
    population_fingerprint,
)
from repro.replication.health import BreakerPolicy, HealthTracker

__all__ = [
    "BreakerPolicy",
    "FaultInjector",
    "GroupUnavailableError",
    "HealthTracker",
    "Replica",
    "ReplicaCrashedError",
    "ReplicaGroup",
    "ReplicaPausedError",
    "ReplicaUnavailableError",
    "ReplicationConfig",
    "build_replica_group",
    "population_fingerprint",
]
