"""Kill-the-primary equivalence harness behind ``repro replica-bench``.

The availability claim of the replication layer is only worth something if
failover is *invisible* to clients.  This harness makes that claim
exit-code-checkable, the same way ``ingest-bench`` and ``shard-bench``
gate their layers:

1. an **unfailed baseline** — one unsharded SmartStore with a volatile
   pipeline — answers a mixed point/range/top-k workload in three phases
   (before any mutation, with the full mutation stream staged, after a
   drain), producing the reference fingerprints;
2. a **replicated, sharded deployment** (every shard a
   :class:`~repro.replication.group.ReplicaGroup`) runs the identical
   workload — except that *every primary is crashed* between the two
   halves of the mutation stream, via the real
   :class:`~repro.replication.fault.FaultInjector`;
3. the gates: every phase's fingerprints byte-identical to the baseline,
   **zero failed client requests** (failover retries absorb every crash),
   every group actually failed over, and — in async mode — the observed
   replication lag stayed inside the bounded window.

Both deployments use an exhaustive ``search_breadth`` (callers pass it in
the config) so bounded-search recall differences cannot masquerade as a
replication bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.replication.fault import FaultInjector
from repro.replication.group import ReplicationConfig
from repro.service.cache import result_fingerprint
from repro.shard.router import _build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = ["ReplicaFailoverRow", "ReplicaFailoverReport", "run_replica_failover"]

#: The three probe phases; primaries are killed between the two mutation
#: halves, i.e. before the second phase.
PHASES = ("pre-failure", "failed over (in flight)", "caught up (drained)")


@dataclass
class ReplicaFailoverRow:
    """Measurements for one replication mode."""

    mode: str
    shards: int
    replicas: int
    build_seconds: float
    mutation_wall: float
    complex_wall: float
    failovers: int
    degraded_reads: int
    read_retries: int
    failed_requests: int
    max_observed_lag: int
    anti_entropy_repaired: int
    identical: bool

    def as_table_row(self) -> List[str]:
        return [
            self.mode,
            f"{self.shards}x{self.replicas + 1}",
            f"{self.build_seconds:.2f}",
            f"{self.mutation_wall:.3f}",
            f"{self.complex_wall:.3f}",
            f"{self.failovers}",
            f"{self.degraded_reads}",
            f"{self.failed_requests}",
            f"{self.max_observed_lag}",
            "yes" if self.identical else "NO",
        ]


@dataclass
class ReplicaFailoverReport:
    """Everything the CLI and the CI smoke job need to print and gate on."""

    rows: List[ReplicaFailoverRow]
    gates: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(self.gates.values())


def _workload(
    files: Sequence[FileMetadata],
    schema: AttributeSchema,
    queries_per_type: int,
    seed: int,
) -> Tuple[List[Any], List[Any]]:
    generator = QueryWorkloadGenerator(files, schema, seed=seed)
    points = generator.point_queries(queries_per_type, existing_fraction=0.8)
    complex_mix = generator.mixed_complex_queries(
        queries_per_type, queries_per_type, k=8, distribution="zipf"
    )
    return points, complex_mix


def _run_phases(
    target: Any,
    mutator: Any,
    points: Sequence[Any],
    complex_mix: Sequence[Any],
    halves: Sequence[Sequence[Tuple[str, FileMetadata]]],
    *,
    on_kill: Optional[Callable[[], None]] = None,
) -> Tuple[Dict[str, List[str]], float, float, int]:
    """Drive one deployment through the three phases.

    ``halves`` is the mutation stream split in two; ``on_kill`` (replicated
    run only) fires between them.  Returns per-phase fingerprints, wall
    clocks and the number of failed client requests — every query and
    mutation is attempted, failures recorded rather than raised, because
    "zero failed requests" is itself a gate.
    """
    fingerprints: Dict[str, List[str]] = {}
    failed = 0
    complex_wall = 0.0
    mutation_wall = 0.0

    def probe(phase: str) -> None:
        nonlocal failed, complex_wall
        prints: List[str] = []
        started = time.perf_counter()
        for query in [*points, *complex_mix]:
            try:
                prints.append(result_fingerprint(target.execute(query)))
            except Exception:
                prints.append("FAILED")
                failed += 1
        complex_wall += time.perf_counter() - started
        fingerprints[phase] = prints

    probe(PHASES[0])
    for half_idx, half in enumerate(halves):
        started = time.perf_counter()
        for kind, file in half:
            try:
                getattr(mutator, kind)(file)
            except Exception:
                failed += 1
        mutation_wall += time.perf_counter() - started
        if half_idx == 0 and on_kill is not None:
            on_kill()
    probe(PHASES[1])
    mutator.compactor.drain()
    probe(PHASES[2])
    return fingerprints, complex_wall, mutation_wall, failed


def run_replica_failover(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    *,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    shards: int = 2,
    replicas: int = 2,
    modes: Sequence[str] = ("async", "sync"),
    max_lag: int = 32,
    queries_per_type: int = 6,
    n_mutations: int = 48,
    partitioner: str = "semantic",
    workload_seed: int = 13,
) -> ReplicaFailoverReport:
    """Run the kill-every-primary equivalence + availability ablation."""
    files = list(files)
    points, complex_mix = _workload(files, schema, queries_per_type, workload_seed)
    generator = QueryWorkloadGenerator(files, schema, seed=workload_seed + 1)
    n_del = n_mutations // 3
    n_mod = n_mutations // 6
    mutations = generator.mutation_stream(n_mutations - n_del - n_mod, n_del, n_mod)
    halves = [mutations[: len(mutations) // 2], mutations[len(mutations) // 2 :]]

    baseline = SmartStore.build(files, config, schema)
    baseline_pipeline = IngestPipeline(baseline)
    reference, _, _, baseline_failed = _run_phases(
        baseline, baseline_pipeline, points, complex_mix, halves
    )
    if baseline_failed:
        raise RuntimeError("the unfailed baseline itself failed requests")

    report = ReplicaFailoverReport(rows=[])
    for mode in modes:
        started = time.perf_counter()
        router = _build_shard_router(
            files,
            shards,
            config,
            schema,
            partitioner=partitioner,
            replication=ReplicationConfig(
                replicas=replicas, mode=mode, max_lag=max_lag
            ),
        )
        build_seconds = time.perf_counter() - started
        try:
            injector = FaultInjector(router)
            fingerprints, complex_wall, mutation_wall, failed = _run_phases(
                router,
                router,
                points,
                complex_mix,
                halves,
                on_kill=injector.crash_primary,
            )
            router.anti_entropy()
            groups = router.replica_groups()

            identical = True
            for phase in PHASES:
                ok = fingerprints[phase] == reference[phase]
                report.gates[f"{mode}: {phase} identical"] = ok
                identical = identical and ok
            report.gates[f"{mode}: zero failed requests"] = failed == 0
            report.gates[f"{mode}: every primary failed over"] = all(
                g.failovers >= 1 for g in groups
            )
            max_lag_seen = max(g.max_observed_lag for g in groups)
            if mode == "async":
                report.gates["async: lag within bounded window"] = (
                    max_lag_seen <= max_lag
                )
            report.rows.append(
                ReplicaFailoverRow(
                    mode=mode,
                    shards=shards,
                    replicas=replicas,
                    build_seconds=build_seconds,
                    mutation_wall=mutation_wall,
                    complex_wall=complex_wall,
                    failovers=sum(g.failovers for g in groups),
                    degraded_reads=sum(g.degraded_reads for g in groups),
                    read_retries=sum(g.read_retries for g in groups),
                    failed_requests=failed,
                    max_observed_lag=max_lag_seen,
                    anti_entropy_repaired=sum(
                        g.anti_entropy_repairs for g in groups
                    ),
                    identical=identical,
                )
            )
        finally:
            router.close()
    return report
