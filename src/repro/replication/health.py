"""Per-replica health tracking: a deterministic circuit breaker.

Every replica of a :class:`~repro.replication.group.ReplicaGroup` carries a
:class:`HealthTracker`.  The read path asks ``available()`` before routing
to a replica and reports the outcome back with ``record_success`` /
``record_failure``; the tracker turns those signals into the classic
breaker state machine:

* **closed** — healthy; every selection is admitted.
* **open** — entered after ``failure_threshold`` *consecutive* failures (or
  a single failure while half-open).  Selections are refused, so a crashed
  replica stops eating a failed probe out of every read.
* **half-open** — after ``probe_after`` refused selections the breaker
  admits exactly one probe.  A success closes the breaker (the replica
  rejoins the rotation); a failure re-opens it and the wait starts over.

Transitions are counted in *selections*, not wall-clock seconds, so tests
and benchmarks are deterministic: the breaker behaves identically no matter
how fast the host runs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

__all__ = ["BreakerPolicy", "HealthTracker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When a replica's circuit opens and how eagerly it is re-probed.

    ``failure_threshold``
        Consecutive failures that trip the breaker open.
    ``probe_after``
        Refused selections an open breaker waits before admitting one
        half-open probe.
    """

    failure_threshold: int = 3
    probe_after: int = 8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.probe_after < 1:
            raise ValueError("probe_after must be >= 1")


class HealthTracker:
    """Consecutive-failure circuit breaker for one replica."""

    def __init__(self, policy: BreakerPolicy = BreakerPolicy()) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._skips = 0
        self.successes = 0
        self.failures = 0
        self.opens = 0
        self.probes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def available(self) -> bool:
        """May the read path route to this replica right now?

        Counts refused selections while open; the ``probe_after``-th
        selection flips the breaker half-open and is admitted as the probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                return True
            self._skips += 1
            if self._skips >= self.policy.probe_after:
                self._state = HALF_OPEN
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = CLOSED
            self._skips = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            tripped = (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.policy.failure_threshold
            )
            if tripped:
                if self._state != OPEN:
                    self.opens += 1
                self._state = OPEN
                # Every failure while tripping resets the wait, pushing
                # the next half-open probe back.
                self._skips = 0

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "successes": self.successes,
                "failures": self.failures,
                "opens": self.opens,
                "probes": self.probes,
            }

    def __repr__(self) -> str:
        d = self.as_dict()
        return (
            f"HealthTracker(state={d['state']!r}, failures={d['failures']}, "
            f"opens={d['opens']}, probes={d['probes']})"
        )
