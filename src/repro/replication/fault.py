"""Fault injection against *real* replica deployments.

:mod:`repro.cluster.failures` injects crashes as a visibility overlay — the
deployment's structures are never touched, which is ideal for sweeping
crash patterns over one build.  This module is the complement: its
:class:`FaultInjector` flips fault state on live
:class:`~repro.replication.group.Replica` objects, so the replication
protocol (health trackers, circuit breakers, promotion, catch-up,
anti-entropy) reacts exactly as it would in production.  Both the
fault-injection tests and ``repro replica-bench`` drive their deployments
through this injector.

Fault kinds:

* **crash** — every operation against the replica raises
  :class:`ReplicaCrashedError` until :meth:`FaultInjector.recover` runs;
  recovery reintegrates the replica through the group (catch-up replay
  plus an anti-entropy fingerprint check, so a diverged ex-primary is
  rebuilt rather than trusted).
* **pause** — the replica stops responding (reads fail over, shipped
  records queue up) but loses nothing; resume catches it up from its queue.
* **slow** — operations succeed after a simulated delay; slowness is not
  incorrectness, so results stay byte-identical.
* **one-shot primary fail points** — ``before_ship`` / ``after_ship``
  crash the primary at the two interesting instants of a write: after the
  WAL append but before the segment left the box (the write is *not*
  acked; the retry lands on the promoted replica), and after shipping
  (the retry double-applies, which the seq watermark makes idempotent).
* **crash_after_applies** — arms a countdown so the replica dies mid
  catch-up, exercising promotion fallback to the next-freshest replica.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "ReplicaUnavailableError",
    "ReplicaCrashedError",
    "ReplicaPausedError",
    "GroupUnavailableError",
    "FaultInjector",
]


class ReplicaUnavailableError(RuntimeError):
    """A replica could not serve the operation (crash or pause)."""


class ReplicaCrashedError(ReplicaUnavailableError):
    """The replica is crashed: it answers nothing until recovered."""


class ReplicaPausedError(ReplicaUnavailableError):
    """The replica is paused (unresponsive but not losing state)."""


class GroupUnavailableError(RuntimeError):
    """Every member of a replica group is unavailable."""


class FaultInjector:
    """Crash / pause / slow live replicas of one or more replica groups.

    Parameters
    ----------
    groups:
        The replica groups under test — a single
        :class:`~repro.replication.group.ReplicaGroup`, a sequence of them,
        or anything exposing ``replica_groups()`` (a replication-enabled
        :class:`~repro.shard.router.ShardRouter`).
    """

    def __init__(self, groups: Any) -> None:
        if hasattr(groups, "replica_groups"):
            groups = groups.replica_groups()
        elif hasattr(groups, "members"):  # a single ReplicaGroup
            groups = [groups]
        self.groups: List[Any] = list(groups)
        if not self.groups:
            raise ValueError("FaultInjector needs at least one replica group")

    # ------------------------------------------------------------------ helpers
    def _replica(self, group_id: int, replica_id: int) -> Any:
        return self.groups[group_id].members[replica_id]

    # ------------------------------------------------------------------ crashes
    def crash(self, group_id: int, replica_id: int) -> None:
        """Crash one replica: every operation raises until recovery."""
        self._replica(group_id, replica_id).crashed = True

    def crash_primary(self, group_id: Optional[int] = None) -> List[int]:
        """Crash the current primary of one group (or of every group).

        Returns the replica ids that were killed, in group order.
        """
        targets = (
            range(len(self.groups)) if group_id is None else [group_id]
        )
        killed = []
        for gid in targets:
            group = self.groups[gid]
            primary_id = group.primary_id
            group.members[primary_id].crashed = True
            killed.append(primary_id)
        return killed

    def recover(self, group_id: int, replica_id: int) -> None:
        """Bring a crashed/paused replica back and reintegrate it.

        Reintegration replays the replica's queued shipped records and then
        runs the group's anti-entropy check against it: an ex-primary that
        applied a record which never shipped is detected by fingerprint
        mismatch and rebuilt from the current primary rather than serving
        divergent answers.
        """
        replica = self._replica(group_id, replica_id)
        replica.crashed = False
        replica.paused = False
        replica.crash_after_applies = None
        self.groups[group_id].reintegrate(replica)

    def crash_after_applies(self, group_id: int, replica_id: int, count: int) -> None:
        """Arm the replica to crash after applying ``count`` more records."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._replica(group_id, replica_id).crash_after_applies = count

    def fail_primary_at(self, group_id: int, point: str) -> None:
        """One-shot: crash the primary at a ship-relative instant.

        ``point`` is ``"before_ship"`` (WAL append done, segment never
        leaves) or ``"after_ship"`` (segment shipped, ack never sent).
        """
        if point not in ("before_ship", "after_ship"):
            raise ValueError(f"unknown fail point {point!r}")
        group = self.groups[group_id]
        group.members[group.primary_id].fail_point = point

    # ------------------------------------------------------------------ pause / slow
    def pause(self, group_id: int, replica_id: int) -> None:
        """Pause one replica (unresponsive; shipped records queue up)."""
        self._replica(group_id, replica_id).paused = True

    def resume(self, group_id: int, replica_id: int) -> None:
        """Resume a paused replica and catch it up from its queue."""
        replica = self._replica(group_id, replica_id)
        replica.paused = False
        self.groups[group_id].reintegrate(replica)

    def slow(self, group_id: int, replica_id: int, seconds: float) -> None:
        """Make one replica serve with an extra wall-clock delay."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._replica(group_id, replica_id).slow_seconds = float(seconds)

    # ------------------------------------------------------------------ introspection
    def active_faults(self) -> Dict[str, List[str]]:
        """Faults currently in force, keyed by kind."""
        out: Dict[str, List[str]] = {"crashed": [], "paused": [], "slow": [], "armed": []}
        for gid, group in enumerate(self.groups):
            for replica in group.members:
                tag = f"g{gid}/r{replica.replica_id}"
                if replica.crashed:
                    out["crashed"].append(tag)
                if replica.paused:
                    out["paused"].append(tag)
                if replica.slow_seconds:
                    out["slow"].append(tag)
                if replica.fail_point or replica.crash_after_applies is not None:
                    out["armed"].append(tag)
        return out

    def clear_all(self) -> None:
        """Lift every fault and reintegrate every member."""
        for gid, group in enumerate(self.groups):
            for replica in group.members:
                replica.slow_seconds = 0.0
                replica.fail_point = None
                if replica.crashed or replica.paused:
                    self.recover(gid, replica.replica_id)

    def __repr__(self) -> str:
        active = {k: v for k, v in self.active_faults().items() if v}
        return f"FaultInjector(groups={len(self.groups)}, active={active})"
