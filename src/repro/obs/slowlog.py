"""Structured slow-query log: one JSON record per over-threshold request.

When a request's wall time crosses the configured threshold, the client
edge (local :class:`~repro.api.client.Client` or
:class:`~repro.server.remote.RemoteClient`) emits one self-contained
JSON record carrying everything needed to explain the latency without
re-running the request:

.. code-block:: json

    {
      "ts": "2026-08-08T12:00:00+00:00",
      "trace_id": "9f2c4e1a8b3d5f07",
      "kind": "topk",
      "wall_s": 0.1841,
      "latency_s": 0.1794,
      "threshold_s": 0.05,
      "complete": false,
      "deadline_expired": false,
      "attribution": {"shards": 4, "shards_down": [2]},
      "epoch": "…",
      "spans": [{"name": "shard.scan", "duration_s": 0.17, "...": "..."}]
    }

``spans`` is the request's full span breakdown (present when tracing is
on), so the record doubles as an inline trace for the one request that
mattered.  Records go to a bounded in-memory ring (for tests and the
``stats`` surface) and optionally append to a JSONL file.

Disabled by default (threshold ``None``); stdlib-only.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Sequence, Union

__all__ = ["SlowQueryLog", "get_slowlog", "set_slowlog"]

DEFAULT_RING_CAPACITY = 256


class SlowQueryLog:
    """Threshold-gated structured event log for slow requests."""

    def __init__(
        self,
        threshold_s: Optional[float] = None,
        *,
        path: Optional[Union[str, Path]] = None,
        capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        if threshold_s is not None and threshold_s < 0:
            raise ValueError("threshold_s must be >= 0")
        self.threshold_s = threshold_s
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._records: Deque[Dict[str, Any]] = deque(maxlen=max(1, capacity))
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def maybe_record(
        self,
        *,
        wall_s: float,
        kind: str,
        trace_id: Optional[str] = None,
        latency_s: Optional[float] = None,
        complete: bool = True,
        deadline_expired: bool = False,
        attribution: Optional[Dict[str, Any]] = None,
        epoch: Optional[str] = None,
        spans: Optional[Sequence[Any]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Optional[Dict[str, Any]]:
        """Emit one record iff enabled and ``wall_s`` crosses the threshold.

        ``spans`` accepts :class:`~repro.obs.trace.Span` objects or
        pre-serialised dicts.  Returns the record (or ``None``); never
        raises — a logging failure must not fail the request.
        """
        if self.threshold_s is None or wall_s < self.threshold_s:
            return None
        span_dicts: List[Dict[str, Any]] = []
        for span in spans or ():
            try:
                payload = span.to_dict() if hasattr(span, "to_dict") else dict(span)
                payload["duration_s"] = max(
                    0.0,
                    float(payload.get("end_s", 0.0))
                    - float(payload.get("start_s", 0.0)),
                )
                span_dicts.append(payload)
            except (TypeError, ValueError):
                continue
        record: Dict[str, Any] = {
            "ts": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "trace_id": trace_id,
            "kind": kind,
            "wall_s": wall_s,
            "latency_s": latency_s if latency_s is not None else wall_s,
            "threshold_s": self.threshold_s,
            "complete": complete,
            "deadline_expired": deadline_expired,
            "attribution": dict(attribution or {}),
            "epoch": epoch,
            "spans": span_dicts,
        }
        if extra:
            record.update(extra)
        with self._lock:
            self._records.append(record)
            self.emitted += 1
        if self.path is not None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write(json.dumps(record, sort_keys=True) + "\n")
            except OSError:
                pass  # never fail the request over a log write
        return record

    def records(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.emitted = 0


# ---------------------------------------------------------------------------- process-wide default
_default_slowlog = SlowQueryLog()
_slowlog_lock = threading.Lock()


def get_slowlog() -> SlowQueryLog:
    return _default_slowlog


def set_slowlog(slowlog: SlowQueryLog) -> SlowQueryLog:
    global _default_slowlog
    with _slowlog_lock:
        previous, _default_slowlog = _default_slowlog, slowlog
        return previous
