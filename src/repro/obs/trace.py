"""Distributed tracing: one request's waterfall across every layer.

A :class:`TraceContext` — a trace id plus the id of the span the next
layer should parent under — is created at the client (or server) edge of
a request and travels with it: through
:class:`~repro.api.options.RequestOptions`, the wire-protocol envelope,
and the ``shard_query`` payloads scattered to worker processes.  Every
stage boundary the request crosses (admission wait, cache lookup, batch
ride, per-shard scatter scan, replica selection and catch-up, WAL
append/fsync, serialisation) records one :class:`Span` into the
process-wide bounded :class:`SpanCollector`.

Design constraints, in order:

* **Cheap when disabled.**  Tracing is off by default; every
  instrumentation point costs one attribute check and returns a shared
  no-op context manager.  The hot path never allocates for untraced
  requests.
* **Deterministic shape.**  Span *ids* are drawn from per-tracer
  counters and span *structure* (names, parentage, counts) is a pure
  function of what the request did — thread scheduling and the simulated
  clock cannot change the tree, so trace-shape assertions are testable.
  Timestamps are wall-clock (``time.perf_counter`` relative to the
  collector's origin) and only feed the waterfall rendering.
* **Degrade, never fail.**  A malformed trace header from the wire
  (:func:`context_from_wire`) yields a *fresh* trace, not an error — a
  bad peer must not be able to fail requests by corrupting telemetry.

Spans export as JSONL (one span object per line) and as the Chrome
trace-event format (``[{"ph": "X", ...}]``), so a trace file opens
directly in Perfetto / ``chrome://tracing``.

This module is stdlib-only: every layer of the stack (including the
dependency-free :mod:`repro.api.options`) may import it.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Optional, Union

__all__ = [
    "Span",
    "SpanCollector",
    "TraceContext",
    "Tracer",
    "context_from_wire",
    "context_to_wire",
    "get_tracer",
    "set_tracer",
]

PathLike = Union[str, Path]

#: Bound on one collector's retained spans (oldest evicted first).
DEFAULT_COLLECTOR_CAPACITY = 65536

#: Trace/span ids longer than this are treated as malformed.
MAX_ID_LENGTH = 128


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def _valid_id(value: Any) -> bool:
    return (
        isinstance(value, str)
        and 0 < len(value) <= MAX_ID_LENGTH
        and value.isprintable()
    )


@dataclass(frozen=True)
class TraceContext:
    """Where in a trace the next span belongs: trace id + parent span id.

    ``span_id`` is the id of the span the *next* child should parent
    under (empty string = root level).  Contexts are immutable; entering
    a span yields a new context for the layers below.
    """

    trace_id: str
    span_id: str = ""

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=_new_trace_id(), span_id="")


def context_to_wire(ctx: Optional[TraceContext]) -> Optional[Dict[str, str]]:
    """Serialise a context for a protocol envelope (None stays None)."""
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "span_id": ctx.span_id}


def context_from_wire(payload: Any) -> Optional[TraceContext]:
    """Rebuild a context from a wire payload, degrading on malformation.

    Any shape of garbage — wrong type, missing/oversized/unprintable
    ids — yields ``None`` (the receiver starts a fresh trace) rather
    than an error: telemetry corruption must never fail a request.
    """
    if not isinstance(payload, dict):
        return None
    trace_id = payload.get("trace_id")
    if not _valid_id(trace_id):
        return None
    span_id = payload.get("span_id", "")
    if span_id is None:
        span_id = ""
    if not isinstance(span_id, str) or len(span_id) > MAX_ID_LENGTH:
        return None
    return TraceContext(trace_id=str(trace_id), span_id=str(span_id))


@dataclass
class Span:
    """One recorded stage of one traced request."""

    trace_id: str
    span_id: str
    parent_id: str
    name: str
    start_s: float
    end_s: float = 0.0
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=str(payload.get("parent_id", "")),
            name=str(payload["name"]),
            start_s=float(payload.get("start_s", 0.0)),
            end_s=float(payload.get("end_s", 0.0)),
            tags=dict(payload.get("tags", {})),
        )


class SpanCollector:
    """Bounded, thread-safe sink for finished spans.

    The bound makes a long-lived traced deployment safe: the collector
    retains the most recent ``capacity`` spans and counts what it had to
    drop.  Export never clears — :meth:`take` does, per trace, for
    consumers (the slow-query log, worker replies) that hand spans
    upstream.
    """

    def __init__(self, capacity: int = DEFAULT_COLLECTOR_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: Deque[Span] = deque()
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            while len(self._spans) > self.capacity:
                self._spans.popleft()
                self.dropped += 1

    def ingest(self, payloads: Any) -> int:
        """Fold spans shipped from another process (best effort).

        Malformed entries are skipped, not raised: a worker's telemetry
        must never fail the request it rode back on.
        """
        if not isinstance(payloads, (list, tuple)):
            return 0
        count = 0
        for payload in payloads:
            try:
                self.record(Span.from_dict(payload))
                count += 1
            except (KeyError, TypeError, ValueError):
                continue
        return count

    def snapshot(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def spans_for(self, trace_id: str) -> List[Span]:
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def take(self, trace_id: str) -> List[Span]:
        """Remove and return every retained span of one trace."""
        with self._lock:
            taken = [s for s in self._spans if s.trace_id == trace_id]
            if taken:
                self._spans = deque(
                    s for s in self._spans if s.trace_id != trace_id
                )
            return taken

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # ------------------------------------------------------------------ export
    def export_jsonl(self, path: PathLike) -> Path:
        """One span object per line — the machine-diffable form."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as fh:
            for span in self.snapshot():
                fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        return path

    def export_chrome(self, path: PathLike) -> Path:
        """Chrome trace-event JSON — opens directly in Perfetto.

        Spans become complete events (``"ph": "X"``); each trace renders
        as its own "process" row so concurrent requests do not overlap.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        spans = self.snapshot()
        origin = min((s.start_s for s in spans), default=0.0)
        trace_rows: Dict[str, int] = {}
        events: List[Dict[str, Any]] = []
        for span in spans:
            pid = trace_rows.setdefault(span.trace_id, len(trace_rows) + 1)
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.start_s - origin) * 1e6,
                    "dur": span.duration_s * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {
                        "trace_id": span.trace_id,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **{str(k): v for k, v in span.tags.items()},
                    },
                }
            )
        document = {
            "traceEvents": events,
            "metadata": {"tool": "repro.obs", "pid_is_trace": True},
        }
        with path.open("w", encoding="utf-8") as fh:
            json.dump(document, fh)
            fh.write("\n")
        return path


class _NoopSpan:
    """The shared do-nothing span handle untraced code paths receive."""

    __slots__ = ()

    tags: Dict[str, Any] = {}
    span_id = ""
    trace_id = ""

    def tag(self, **_tags: Any) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager recording one span and scoping the child context."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Optional[TraceContext] = None

    @property
    def tags(self) -> Dict[str, Any]:
        return self._span.tags

    @property
    def span_id(self) -> str:
        return self._span.span_id

    @property
    def trace_id(self) -> str:
        return self._span.trace_id

    def tag(self, **tags: Any) -> None:
        self._span.tags.update(tags)

    def __enter__(self) -> "_ActiveSpan":
        self._token = self._tracer._push(
            TraceContext(self._span.trace_id, self._span.span_id)
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._span.end_s = time.perf_counter()
        self._tracer._pop(self._token)
        self._tracer.collector.record(self._span)


class Tracer:
    """Span factory over one collector, with a thread-local active context.

    ``span(name)`` parents under the calling thread's current context
    (set by the enclosing span) and is a no-op when tracing is disabled
    *or* no context is active — lower layers (WAL, replica group) only
    record inside a traced request.  ``root(name)`` starts a trace
    explicitly; the client/server edges call it.
    """

    def __init__(
        self, collector: Optional[SpanCollector] = None, *, enabled: bool = False
    ) -> None:
        self.collector = collector if collector is not None else SpanCollector()
        self.enabled = enabled
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self._next_span = 0
        # Distinguishes span ids minted by different processes of one
        # deployment (the parent folds worker spans into its collector).
        self._prefix = f"{os.getpid() % 0xFFFF:04x}"

    # ------------------------------------------------------------------ context plumbing
    def current(self) -> Optional[TraceContext]:
        return getattr(self._local, "ctx", None)

    def _push(self, ctx: TraceContext) -> Optional[TraceContext]:
        previous = self.current()
        self._local.ctx = ctx
        return previous

    def _pop(self, previous: Optional[TraceContext]) -> None:
        self._local.ctx = previous

    def _next_span_id(self) -> str:
        with self._counter_lock:
            self._next_span += 1
            return f"{self._prefix}-{self._next_span}"

    # ------------------------------------------------------------------ span factories
    def span(
        self,
        name: str,
        ctx: Optional[TraceContext] = None,
        **tags: Any,
    ) -> Union[_ActiveSpan, _NoopSpan]:
        """A child span under ``ctx`` (default: the thread's current one).

        No-op when disabled or when no context is available: spans never
        invent a trace mid-stack.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if ctx is None:
            ctx = self.current()
            if ctx is None:
                return _NOOP_SPAN
        span = Span(
            trace_id=ctx.trace_id,
            span_id=self._next_span_id(),
            parent_id=ctx.span_id,
            name=name,
            start_s=time.perf_counter(),
            tags=dict(tags),
        )
        return _ActiveSpan(self, span)

    def root(
        self,
        name: str,
        trace_id: Optional[str] = None,
        **tags: Any,
    ) -> Union[_ActiveSpan, _NoopSpan]:
        """Start (or continue, given ``trace_id``) a trace with a root span."""
        if not self.enabled:
            return _NOOP_SPAN
        ctx = TraceContext(
            trace_id=trace_id if _valid_id(trace_id) else _new_trace_id(),
            span_id="",
        )
        return self.span(name, ctx, **tags)


# ---------------------------------------------------------------------------- process-wide default
_default_tracer = Tracer()
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumentation point uses."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer (tests, workers); returns the old one."""
    global _default_tracer
    with _tracer_lock:
        previous, _default_tracer = _default_tracer, tracer
        return previous
