"""Unified metrics: counters, gauges, fixed-bucket histograms — one registry.

Every number the stack already computes (`ServiceTelemetry` latencies,
`NetworkStats` byte counters, replication/failover counters, worker busy
time) is mirrored into one process-wide :class:`MetricsRegistry`, so a
single export shows the whole deployment.  The registry is:

* **Label-aware.**  Instruments are keyed by ``(name, labels)``;
  ``registry.counter("repro_requests_total", kind="topk")`` get-or-creates
  one series per label set, Prometheus-style.
* **Mergeable across processes.**  Shard workers ship
  ``registry.to_wire()`` back on the existing ``stats`` op; the parent
  folds them in with :meth:`MetricsRegistry.merge`, adding a ``shard``
  label so per-worker series stay distinguishable.  Counters and
  histograms sum; gauges are point-in-time so the merged copy just takes
  the shipped value (under its disambiguating labels).
* **Prometheus-renderable.**  :meth:`render_prometheus` emits text
  exposition format (``# HELP`` / ``# TYPE``, cumulative
  ``_bucket{le=...}`` + ``+Inf``, ``_sum``, ``_count``) served by the
  ``metrics`` server op and the ``obs-export`` CLI subcommand.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

LabelItems = Tuple[Tuple[str, str], ...]

#: Default latency buckets (seconds): 100µs .. 10s, roughly 1-2-5.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(items: LabelItems, extra: Sequence[Tuple[str, str]] = ()) -> str:
    merged = list(items) + list(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in merged
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing count; merged by summation."""

    kind = "counter"

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def to_wire(self) -> float:
        return self.value


class Gauge:
    """Point-in-time value; a merged copy just carries the shipped value."""

    kind = "gauge"

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def to_wire(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Buckets are upper bounds; observation routing is a bisect.  The wire
    form ships non-cumulative per-bucket counts (plus an overflow slot);
    rendering produces the cumulative Prometheus ``_bucket`` series.
    """

    kind = "histogram"

    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or any(
            b >= c for b, c in zip(ordered, ordered[1:])
        ):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)  # final slot: > last bound
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def to_wire(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
            }

    def merge_wire(self, payload: Mapping[str, Any]) -> None:
        counts = payload.get("counts")
        if (
            not isinstance(counts, list)
            or len(counts) != len(self.counts)
            or list(payload.get("buckets", [])) != list(self.buckets)
        ):
            return  # incompatible shape: drop rather than corrupt
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.sum += float(payload.get("sum", 0.0))
            self.count += int(payload.get("count", 0))


class MetricsRegistry:
    """Get-or-create instrument store keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}
        self._help: Dict[str, str] = {}
        self._buckets: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------ factories
    def _get(
        self,
        name: str,
        labels: Mapping[str, Any],
        factory: Any,
        help_text: Optional[str],
    ) -> Any:
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            if help_text and name not in self._help:
                self._help[name] = help_text
            return instrument

    def counter(
        self, name: str, help_text: Optional[str] = None, **labels: Any
    ) -> Counter:
        instrument = self._get(name, labels, Counter, help_text)
        if not isinstance(instrument, Counter):
            raise TypeError(f"{name} is registered as {instrument.kind}")
        return instrument

    def gauge(
        self, name: str, help_text: Optional[str] = None, **labels: Any
    ) -> Gauge:
        instrument = self._get(name, labels, Gauge, help_text)
        if not isinstance(instrument, Gauge):
            raise TypeError(f"{name} is registered as {instrument.kind}")
        return instrument

    def histogram(
        self,
        name: str,
        help_text: Optional[str] = None,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        with self._lock:
            bounds = self._buckets.setdefault(
                name, tuple(buckets) if buckets else DEFAULT_BUCKETS
            )
        instrument = self._get(
            name, labels, lambda: Histogram(bounds), help_text
        )
        if not isinstance(instrument, Histogram):
            raise TypeError(f"{name} is registered as {instrument.kind}")
        return instrument

    # ------------------------------------------------------------------ introspection
    def series(self) -> List[Tuple[str, LabelItems, Any]]:
        with self._lock:
            return [
                (name, labels, instrument)
                for (name, labels), instrument in sorted(
                    self._instruments.items()
                )
            ]

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()
            self._help.clear()
            self._buckets.clear()

    # ------------------------------------------------------------------ wire + merge
    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe snapshot a worker ships back on the ``stats`` op."""
        out: List[Dict[str, Any]] = []
        for name, labels, instrument in self.series():
            out.append(
                {
                    "name": name,
                    "labels": [list(pair) for pair in labels],
                    "kind": instrument.kind,
                    "value": instrument.to_wire(),
                }
            )
        with self._lock:
            help_text = dict(self._help)
        return {"format": "repro.metrics", "series": out, "help": help_text}

    def merge(
        self,
        payload: Mapping[str, Any],
        extra_labels: Optional[Mapping[str, Any]] = None,
    ) -> int:
        """Fold a shipped registry snapshot into this one (best effort).

        ``extra_labels`` (e.g. ``{"shard": "2"}``) are appended to every
        merged series so per-worker data stays distinguishable.  Returns
        the number of series folded; malformed entries are skipped.
        """
        if not isinstance(payload, Mapping):
            return 0
        help_text = payload.get("help")
        if isinstance(help_text, Mapping):
            with self._lock:
                for name, text in help_text.items():
                    self._help.setdefault(str(name), str(text))
        series = payload.get("series")
        if not isinstance(series, list):
            return 0
        extra = dict(extra_labels or {})
        merged = 0
        for entry in series:
            try:
                name = str(entry["name"])
                labels = {
                    str(pair[0]): str(pair[1]) for pair in entry["labels"]
                }
                labels.update({str(k): str(v) for k, v in extra.items()})
                kind = entry["kind"]
                value = entry["value"]
                if kind == "counter":
                    self.counter(name, **labels).inc(float(value))
                elif kind == "gauge":
                    self.gauge(name, **labels).set(float(value))
                elif kind == "histogram":
                    bounds = value.get("buckets") or DEFAULT_BUCKETS
                    self.histogram(name, buckets=bounds, **labels).merge_wire(
                        value
                    )
                else:
                    continue
                merged += 1
            except (KeyError, TypeError, ValueError, IndexError):
                continue
        return merged

    # ------------------------------------------------------------------ render
    def render_prometheus(self) -> str:
        """Text exposition format (the `metrics` op / scrape payload)."""
        with self._lock:
            help_text = dict(self._help)
        lines: List[str] = []
        seen_header = set()
        for name, labels, instrument in self.series():
            if name not in seen_header:
                seen_header.add(name)
                lines.append(
                    f"# HELP {name} {help_text.get(name, name)}"
                )
                lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                snap = instrument.to_wire()
                cumulative = 0
                for bound, count in zip(snap["buckets"], snap["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(labels, [('le', _format_value(bound))])}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_render_labels(labels, [('le', '+Inf')])}"
                    f" {snap['count']}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {_format_value(snap['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {snap['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)}"
                    f" {_format_value(instrument.to_wire())}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------- process-wide default
_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every layer's telemetry mirrors into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the old one."""
    global _default_registry
    with _registry_lock:
        previous, _default_registry = _default_registry, registry
        return previous
