"""Observability for the whole stack: tracing, metrics, slow-query log.

One import point for the three process-wide singletons every layer
shares:

* :func:`get_tracer` — distributed tracing (:mod:`repro.obs.trace`);
  off by default, spans are no-ops until :func:`configure` (or the
  ``REPRO_TRACE=1`` environment variable) enables it.
* :func:`get_registry` — the unified :class:`MetricsRegistry`
  (:mod:`repro.obs.metrics`); always on, mirrors every number
  ``ServiceTelemetry`` and friends already compute.
* :func:`get_slowlog` — the structured slow-query log
  (:mod:`repro.obs.slowlog`); enabled by giving it a threshold
  (``REPRO_SLOW_QUERY_S=0.05`` or ``configure(slow_query_threshold_s=...)``).

Worker processes call :func:`configure` from their spawn payload so the
parent's choices apply across the process boundary.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .slowlog import SlowQueryLog, get_slowlog, set_slowlog
from .trace import (
    Span,
    SpanCollector,
    TraceContext,
    Tracer,
    context_from_wire,
    context_to_wire,
    get_tracer,
    set_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanCollector",
    "SlowQueryLog",
    "TraceContext",
    "Tracer",
    "configure",
    "context_from_wire",
    "context_to_wire",
    "get_registry",
    "get_slowlog",
    "get_tracer",
    "set_registry",
    "set_slowlog",
    "set_tracer",
    "tracing_enabled",
]

_UNSET = object()


def configure(
    *,
    tracing: Optional[bool] = None,
    slow_query_threshold_s: object = _UNSET,
    slow_query_path: object = _UNSET,
) -> None:
    """Adjust process-wide observability; only passed arguments change.

    ``tracing=True/False`` flips span recording.  ``slow_query_threshold_s``
    (seconds, or ``None`` to disable) and ``slow_query_path`` (JSONL file,
    or ``None`` for in-memory only) reconfigure the slow-query log,
    preserving whichever of the two is not passed.
    """
    if tracing is not None:
        get_tracer().enabled = bool(tracing)
    if slow_query_threshold_s is not _UNSET or slow_query_path is not _UNSET:
        current = get_slowlog()
        threshold = (
            current.threshold_s
            if slow_query_threshold_s is _UNSET
            else slow_query_threshold_s
        )
        path = current.path if slow_query_path is _UNSET else slow_query_path
        set_slowlog(
            SlowQueryLog(
                threshold if threshold is None else float(threshold),  # type: ignore[arg-type]
                path=path,  # type: ignore[arg-type]
            )
        )


def tracing_enabled() -> bool:
    return get_tracer().enabled


def _bootstrap_from_env() -> None:
    """Honour REPRO_TRACE / REPRO_SLOW_QUERY_S / REPRO_SLOW_QUERY_LOG."""
    if os.environ.get("REPRO_TRACE", "").lower() in ("1", "true", "yes", "on"):
        configure(tracing=True)
    raw = os.environ.get("REPRO_SLOW_QUERY_S")
    if raw:
        try:
            threshold: Optional[float] = float(raw)
        except ValueError:
            threshold = None
        if threshold is not None:
            configure(
                slow_query_threshold_s=threshold,
                slow_query_path=os.environ.get("REPRO_SLOW_QUERY_LOG") or None,
            )


_bootstrap_from_env()
