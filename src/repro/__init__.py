"""SmartStore reproduction: semantic-aware metadata organization (SC'09).

This package is a from-scratch Python reproduction of *SmartStore: A New
Metadata Organization Paradigm with Semantic-Awareness for Next-Generation
File Systems* (Hua, Jiang, Zhu, Feng, Tian — SC 2009).

Top-level layout
----------------
``repro.metadata``
    File-metadata model, attribute schema and attribute-matrix utilities.
``repro.lsi``
    Latent Semantic Indexing on top of a truncated SVD, plus the K-means
    baseline grouping tool discussed in the paper.
``repro.rtree``
    A generic Guttman R-tree substrate (MBRs, quadratic split, range
    search and branch-and-bound k-NN).
``repro.bloom``
    MD5-based Bloom filters and hierarchical (union) filters used for
    filename point queries.
``repro.btree``
    A B+-tree substrate used by the per-attribute DBMS baseline.
``repro.core``
    The SmartStore system itself: semantic grouping, the distributed
    semantic R-tree, on-line/off-line query engines, automatic
    configuration, index-unit mapping and versioning.
``repro.baselines``
    The two comparison systems of the paper's evaluation: ``DBMSBaseline``
    (one B+-tree per attribute) and ``RTreeBaseline`` (a centralised,
    non-semantic R-tree).
``repro.cluster``
    The discrete cost-accounting cluster simulator that stands in for the
    paper's 60-node prototype testbed.
``repro.traces``
    Synthetic HP / MSN / EECS trace generators and the Trace Intensifying
    Factor (TIF) scale-up procedure.
``repro.workloads``
    Point / range / top-k query workload synthesis under Uniform, Gauss
    and Zipf distributions.
``repro.apps``
    The two motivating applications: semantic-aware caching/prefetching
    and de-duplication candidate detection.
``repro.eval``
    Recall / latency / space metrics, experiment harness and the
    table/figure reporters used by ``benchmarks/``.
``repro.service``
    The concurrent query-service layer: batched/coalesced execution with
    admission control, versioning-aware result caching, service telemetry
    and open/closed-loop load generation.
``repro.ingest``
    The durable write path: write-ahead logging with fsync batching, a
    read-your-writes staging overlay, incremental background compaction
    into the semantic R-tree, and checkpoint + WAL-replay crash recovery.
``repro.shard``
    Horizontal sharding: semantic corpus partitioning (LSI-space k-way
    split with a hash fallback) and a scatter-gather router over N
    independent SmartStore deployments with exact summary pruning, a
    shared top-k MaxD threshold and per-shard ingest pipelines.
``repro.replication``
    The availability layer: replica groups (1 primary + N replicas per
    shard) with WAL-segment shipping, bounded-lag async or sync modes,
    circuit-breaker health tracking, live primary failover with catch-up
    replay, anti-entropy reconciliation and real-deployment fault
    injection (crash / pause / slow).
``repro.api``
    The unified client front door: a declarative
    :class:`~repro.api.spec.DeploymentSpec` from which one
    :func:`~repro.api.client.connect` builds any topology, per-request
    options (deadline / consistency / pagination), opaque resumable
    cursors and a uniform response envelope.  New code should program
    against this layer; the per-layer entry points above remain for
    library use.
"""

from repro.metadata import AttributeSchema, FileMetadata, DEFAULT_SCHEMA
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest import CompactionPolicy, IngestPipeline, WriteAheadLog, recover
from repro.replication import (
    FaultInjector,
    ReplicaGroup,
    ReplicationConfig,
    build_replica_group,
)
from repro.service import QueryService, ServiceConfig
from repro.shard import ShardRouter, build_shard_router
from repro.workloads import PointQuery, RangeQuery, TopKQuery
from repro.api import (
    Client,
    DeploymentSpec,
    RequestOptions,
    Response,
    connect,
)

__version__ = "1.10.0"

__all__ = [
    "AttributeSchema",
    "Client",
    "DeploymentSpec",
    "RequestOptions",
    "Response",
    "connect",
    "FileMetadata",
    "DEFAULT_SCHEMA",
    "SmartStore",
    "SmartStoreConfig",
    "QueryService",
    "ShardRouter",
    "build_shard_router",
    "FaultInjector",
    "ReplicaGroup",
    "ReplicationConfig",
    "build_replica_group",
    "ServiceConfig",
    "IngestPipeline",
    "WriteAheadLog",
    "CompactionPolicy",
    "recover",
    "PointQuery",
    "RangeQuery",
    "TopKQuery",
    "__version__",
]
