"""Shared concurrency primitives used across the serving stack.

:class:`ReadWriteLock` began life inside :mod:`repro.service.service`
(engine scans vs. mutation application); the shard layer now needs the
same discipline for topology changes (live shard splits must exclude
scatters and routed mutations without serialising readers against each
other), so the primitive lives here and both layers import it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer, writer-preferring.

    Readers are the steady-state path (engine query execution, scatter
    fan-out, routed mutations against a *fixed* topology); writers are
    rare structural changes (mutation application in the service, shard
    installation during a live split).  Writers block new readers while
    waiting, bounding writer latency under a steady read load.

    Not reentrant on the write side; the read side must not be held while
    acquiring the write side.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer_active = False

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
