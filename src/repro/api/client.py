"""The unified client: one front door for every deployment shape.

``connect(spec)`` builds whatever topology the
:class:`~repro.api.spec.DeploymentSpec` declares — plain, durable,
sharded, replicated, or sharded+replicated — wires a
:class:`~repro.service.service.QueryService` over it, and returns a
:class:`Client` whose surface is identical across all five shapes:

* :meth:`Client.execute` / :meth:`Client.submit` — queries, each
  optionally carrying :class:`~repro.api.options.RequestOptions`
  (deadline, consistency preference, pagination);
* :meth:`Client.insert` / :meth:`Client.delete` / :meth:`Client.modify`
  — mutations through the deployment's write path (WAL-first when the
  spec is durable, shard-routed, replica-shipped — whatever the shape
  provides);
* every call returns the same :class:`~repro.api.response.Response`
  envelope, with attribution describing which topology (and which
  shards/replicas) served it;
* :meth:`Client.stats`, :meth:`Client.close`, context-manager support.

Pagination: a request with ``page_size`` returns a
:class:`~repro.api.response.ResultPage` whose cursor fetches the next
page.  The first page pins the full result (at the version-clock epoch of
its execution) in a bounded client-side snapshot store, so the
concatenation of all pages is byte-identical to the unpaginated result
even while mutations land concurrently.  A cursor that outlives its
pinned snapshot (client restart, eviction) still resumes: the query is
re-executed and the stream continues strictly after the cursor's last
served key in the canonical, placement-independent result order.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api.cursor import Cursor, CursorKey, InvalidCursorError, query_fingerprint
from repro.api.options import (
    DeadlineExceededError,
    PartialResultError,
    RequestOptions,
)
from repro.api.response import Response, ResultPage
from repro.api.spec import DeploymentSpec
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore
from repro.ingest.pipeline import IngestPipeline, MutationReceipt, recover_from_storage
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.obs import TraceContext, get_slowlog, get_tracer
from repro.persistence.jsonl import load_files
from repro.replication.group import ReplicaGroup, _build_replica_group
from repro.service.service import QueryService
from repro.shard.reshard import ReshardController
from repro.shard.router import ShardRouter, _build_shard_router
from repro.storage import SegmentStore, has_snapshot
from repro.workloads.types import Query, TopKQuery

__all__ = ["Client", "connect"]

#: How many pinned page-stream snapshots one client retains (LRU).
SNAPSHOT_LIMIT = 128

#: A pinned full result: (files, distances, epoch, complete, latency).
_Snapshot = Tuple[List[FileMetadata], List[float], str, bool, float]


def connect(
    spec: Any,
    files: Optional[Sequence[FileMetadata]] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Any:
    """Build (or dial) the deployment a spec declares and return its client.

    ``spec`` is either a :class:`~repro.api.spec.DeploymentSpec` — the
    deployment is built in this process — or a ``"tcp://host:port"``
    address, in which case a
    :class:`~repro.server.remote.RemoteClient` for an already-running
    :class:`~repro.server.server.StoreServer` is returned instead; the
    remote client is a drop-in for the local one (same
    execute/submit/pages/mutation surface, same Response envelope).

    ``files`` is the population to index; when omitted the spec's
    ``population`` path (a JSON-Lines artefact) is loaded instead.
    """
    if isinstance(spec, str):
        if not spec.startswith("tcp://"):
            raise ValueError(
                f"string specs must be tcp://host:port addresses, got {spec!r}"
            )
        if files is not None:
            raise ValueError(
                "a remote deployment is already populated; connect(address) "
                "does not take files"
            )
        from repro.server.remote import connect_remote

        return connect_remote(spec)
    if files is None:
        if _storage_restorable(spec):
            # Cold start from the spec's snapshot root(s): the population
            # lives in the segments, O(tail) to come back.
            files = []
        elif spec.population is None:
            raise ValueError(
                "connect() needs a file population: pass files=... or set "
                "DeploymentSpec.population to a JSON-Lines path"
            )
        else:
            files = load_files(spec.population)
    files = list(files)

    pipeline: Optional[IngestPipeline] = None
    if spec.topology == "plain":
        if spec.storage is not None:
            pipeline = _open_single_store(spec, files, schema, wal_path=None)
            store: object = pipeline.store
        else:
            store = SmartStore.build(files, spec.store, schema)
    elif spec.topology == "durable":
        wal_dir = Path(spec.wal_dir)  # type: ignore[arg-type]  # validated by the spec
        wal_dir.mkdir(parents=True, exist_ok=True)
        if spec.storage is not None:
            pipeline = _open_single_store(
                spec, files, schema, wal_path=wal_dir / "store.wal"
            )
            store = pipeline.store
        else:
            plain = SmartStore.build(files, spec.store, schema)
            wal = WriteAheadLog(wal_dir / "store.wal", fsync_every=spec.fsync_every)
            pipeline = IngestPipeline(plain, wal)
            store = plain
    elif spec.sharded:
        if spec.execution == "processes":
            # One worker OS process per shard, scattered to over the wire
            # protocol (imported lazily: the server package depends on the
            # api package, not the other way round).
            from repro.server.worker import build_process_router

            store = build_process_router(
                files,
                spec.shards,
                spec.store,
                schema,
                partitioner=spec.partitioner,
                strategy=spec.partition_strategy,
                units_per_shard=spec.units_per_shard,
                wal_dir=spec.wal_dir,
                fsync_every=spec.fsync_every,
            )
        else:
            store = _build_shard_router(
                files,
                spec.shards,
                spec.store,
                schema,
                partitioner=spec.partitioner,
                strategy=spec.partition_strategy,
                units_per_shard=spec.units_per_shard,
                wal_dir=spec.wal_dir,
                fsync_every=spec.fsync_every,
                replication=spec.replication_config() if spec.replicated else None,
                storage=spec.storage,
            )
    else:  # replicated
        wal_path = None
        if spec.wal_dir is not None:
            wal_dir = Path(spec.wal_dir)
            wal_dir.mkdir(parents=True, exist_ok=True)
            wal_path = wal_dir / "group.wal"
        store = _build_replica_group(
            files,
            spec.store,
            schema,
            replication=spec.replication_config(),
            wal_path=wal_path,
            fsync_every=spec.fsync_every,
            storage=spec.storage,
        )
    service = QueryService(store, spec.service, pipeline=pipeline)
    return Client(spec, store, service)


def _storage_restorable(spec: DeploymentSpec) -> bool:
    """True when the spec's snapshot root(s) can stand the topology up
    without a file population."""
    if spec.storage is None or spec.storage.root is None:
        return False
    root = Path(spec.storage.root)
    if spec.sharded:
        return any(has_snapshot(path) for path in root.glob("shard-*"))
    return has_snapshot(root)


def _open_single_store(
    spec: DeploymentSpec,
    files: List[FileMetadata],
    schema: AttributeSchema,
    *,
    wal_path: Optional[Path],
) -> IngestPipeline:
    """Stand up one storage-backed store: restore from the snapshot root
    when it holds a published manifest, else build fresh and attach a
    segment store so the first ``checkpoint()`` publishes there."""
    storage = spec.storage
    assert storage is not None and storage.root is not None  # spec-validated
    if has_snapshot(storage.root):
        pipeline, _report = recover_from_storage(
            storage.root,
            wal_path=wal_path,
            fsync_every=spec.fsync_every,
            resident_segments=storage.resident_segments,
        )
        return pipeline
    plain = SmartStore.build(files, spec.store, schema)
    wal = (
        WriteAheadLog(wal_path, fsync_every=spec.fsync_every)
        if wal_path is not None
        else None
    )
    pipeline = IngestPipeline(plain, wal)
    pipeline.attach_storage(
        SegmentStore(storage.root, resident_segments=storage.resident_segments)
    )
    return pipeline


class Client:
    """A connected deployment, whatever its shape (use :func:`connect`).

    ``store`` duck-types the store surface (``SmartStore``,
    ``ShardRouter`` or ``ReplicaGroup``); the client never assumes more
    than the uniform facade the service layer already consumes.
    """

    def __init__(self, spec: DeploymentSpec, store: Any, service: QueryService) -> None:
        self.spec = spec
        self.store = store
        self.service = service
        self._snapshots: "OrderedDict[str, _Snapshot]" = OrderedDict()
        self._snapshot_lock = threading.Lock()
        self._cursor_counter = 0
        self._closed = False
        self._reshard_lock = threading.Lock()
        self._reshard_controller: Optional[ReshardController] = None

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Drain the service and release every owned resource.

        Idempotent: a second ``close()`` (or exiting the context manager
        after an explicit close) is a no-op, and closing with page-stream
        cursors still open simply releases their pinned snapshots — the
        cursors remain decodable and resume by re-execution on a fresh
        client.  Snapshot release is deterministic: it happens on this
        call even if a layer below fails to close cleanly.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.service.close()
            pipeline = self.service.pipeline
            if pipeline is not None and hasattr(pipeline, "close"):
                pipeline.close()
            if hasattr(self.store, "close"):
                self.store.close()
        finally:
            with self._snapshot_lock:
                self._snapshots.clear()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ queries
    def execute(self, query: Query, options: Optional[RequestOptions] = None) -> Response:
        """Serve one query; returns the uniform :class:`Response` envelope.

        With ``options.page_size`` / ``options.cursor`` set the response
        carries a :class:`~repro.api.response.ResultPage`; otherwise a
        full :class:`~repro.core.queries.QueryResult`.  A deadline partial
        either comes back with ``complete=False`` (policy ``"partial"``)
        or raises :class:`~repro.api.options.DeadlineExceededError`
        (policy ``"fail"``) — the expiry is counted in the service
        telemetry either way.
        """
        options = self._traced_options(options)
        started = time.perf_counter()
        ctx = (
            TraceContext(options.trace_id, options.trace_parent or "")
            if options.trace_id is not None
            else None
        )
        with get_tracer().span(
            "client.execute",
            ctx,
            query=type(query).__name__,
        ) as root:
            inner = self._child_options(options, root.span_id)
            if options.paginated:
                response = self._execute_page(query, inner, started)
            else:
                result = self.service.execute(
                    query, self._service_options(inner)
                )
                response = self._wrap_result(result, inner, started)
        self._maybe_slowlog(response)
        return response

    def submit(self, query: Query, options: Optional[RequestOptions] = None) -> "Future[Response]":
        """Admit one query asynchronously; resolves to a :class:`Response`.

        Paginated options are not accepted here — a page stream is an
        interactive, cursor-driven protocol; use :meth:`execute`.
        """
        options = self._traced_options(options)
        if options.paginated:
            raise ValueError("paginated requests must go through execute()")
        started = time.perf_counter()
        inner = self.service.submit(query, self._service_options(options))
        outer: "Future[Response]" = Future()

        def _done(f: "Future[QueryResult]") -> None:
            try:
                outer.set_result(self._wrap_result(f.result(), options, started))
            except BaseException as exc:
                outer.set_exception(exc)

        inner.add_done_callback(_done)
        return outer

    def execute_many(
        self, queries: Sequence[Query], options: Optional[RequestOptions] = None
    ) -> List[Response]:
        """Serve a whole workload, preserving input order."""
        futures = [self.submit(q, options) for q in queries]
        self.service.drain()
        return [f.result() for f in futures]

    def pages(
        self, query: Query, page_size: int, options: Optional[RequestOptions] = None
    ) -> Iterator[Response]:
        """Iterate every page of a paginated result (convenience)."""
        options = options if options is not None else RequestOptions()
        response = self.execute(
            query, replace(options, page_size=page_size, cursor=None)
        )
        yield response
        while response.cursor is not None:
            response = self.execute(
                query, replace(options, page_size=None, cursor=response.cursor)
            )
            yield response

    # ------------------------------------------------------------------ mutations
    def insert(self, file: FileMetadata) -> Response:
        """Insert one record through the deployment's write path."""
        return self._mutate("insert", file)

    def delete(self, file: FileMetadata) -> Response:
        """Delete one record (masked from queries immediately)."""
        return self._mutate("delete", file)

    def modify(self, file: FileMetadata) -> Response:
        """Replace one record's attribute values."""
        return self._mutate("modify", file)

    def _mutate(self, kind: str, file: FileMetadata) -> Response:
        started = time.perf_counter()
        tracer = get_tracer()
        # Continue the ambient trace when one is active (the server edge's
        # span), else start a fresh one per mutation.
        ctx = tracer.current() if tracer.enabled else None
        if ctx is None and tracer.enabled:
            ctx = TraceContext.new()
        trace_id = ctx.trace_id if ctx is not None else None
        with tracer.span("client.mutate", ctx, kind=kind):
            future: "Future[MutationReceipt]" = getattr(
                self.service, f"submit_{kind}"
            )(file)
            receipt = future.result()
        response = Response(
            kind="mutation",
            latency_s=receipt.latency,
            wall_s=time.perf_counter() - started,
            receipt=receipt,
            attribution=self._attribution(),
            trace_id=trace_id,
        )
        self._maybe_slowlog(response)
        return response

    # ------------------------------------------------------------------ durability
    def checkpoint(self) -> Dict[str, object]:
        """Publish a segment snapshot through the deployment's storage.

        Every storage-backed layer of the topology publishes: a plain or
        durable deployment snapshots its one store, a replica group
        snapshots every member, a sharded deployment snapshots every
        shard (and every replica of every shard).  After this returns, a
        new ``connect`` with the same spec cold-starts from the published
        manifests in O(WAL tail).  Raises ``ValueError`` when the spec
        has no ``storage`` block.
        """
        store = self.store
        if isinstance(store, ShardRouter):
            return {"shards": store.checkpoint()}
        if isinstance(store, ReplicaGroup):
            return store.checkpoint()
        pipeline = self.service.pipeline
        if pipeline is not None and getattr(pipeline, "storage", None) is not None:
            return pipeline.checkpoint()
        raise ValueError(
            "checkpoint() needs a tiered-storage deployment "
            "(DeploymentSpec.storage with a root directory)"
        )

    # ------------------------------------------------------------------ elasticity
    def reshard(self, force: bool = False) -> Dict[str, object]:
        """One reshard-controller pass over a sharded deployment.

        Evaluates the router's live partition load and, when degenerate
        (or ``force=True``), rebalances — or splits, when fresh quantile
        cuts already match the placement — under traffic; see
        :class:`~repro.shard.reshard.ReshardController`.  Returns the
        outcome document (``performed``, ``action``, ``reason``, counts,
        the load snapshot).  Topologies without live shards (plain,
        durable, replicated, process-mode) report ``performed=False``
        with a reason instead of raising — elasticity is advisory.
        """
        store = self.store
        if not isinstance(store, ShardRouter):
            return {
                "performed": False,
                "reason": f"topology {self.topology!r} has no "
                "in-process shards to reshard",
                "action": "none",
            }
        with self._reshard_lock:
            if self._reshard_controller is None:
                self._reshard_controller = ReshardController(store)
            controller = self._reshard_controller
        return controller.run_once(force=force).as_dict()

    # ------------------------------------------------------------------ introspection
    @property
    def topology(self) -> str:
        return self.spec.topology

    def epoch(self) -> str:
        """The deployment's current version-clock snapshot, as a string.

        Comparable across reads of the same client; any mutation anywhere
        in the deployment changes it.  Cursors record it so a resume can
        tell whether it continued the pinned snapshot or a fresher result.
        """
        return repr(self.service.store.versioning.change_clock)

    def stats(self) -> Dict[str, object]:
        """One uniform statistics document for every topology."""
        return {
            "topology": self.topology,
            "spec": self.spec.to_dict(),
            "service": self.service.stats(),
            "store": self.store.stats(),
        }

    def _attribution(self) -> Dict[str, object]:
        d: Dict[str, object] = {"topology": self.topology}
        store = self.store
        if isinstance(store, ShardRouter):
            d["shards"] = store.num_shards
            d["execution"] = self.spec.execution
            down = store.dead_shards()
            if down:
                # Name the shards whose worker is gone, so an incomplete
                # response carries its own explanation.
                d["shards_down"] = down
            groups = store.replica_groups()
            if groups:
                d["replicas_per_shard"] = groups[0].num_replicas
                d["primaries"] = [g.primary_id for g in groups]
        elif isinstance(store, ReplicaGroup):
            d["replicas"] = store.num_replicas
            d["primary"] = store.primary_id
        return d

    # ------------------------------------------------------------------ tracing plumbing
    @staticmethod
    def _traced_options(options: Optional[RequestOptions]) -> RequestOptions:
        """Default options, with a fresh trace id attached when tracing is
        on and the caller did not bring one.  Trace fields never make the
        request constrained, so caching/batching behaviour is unchanged."""
        options = options if options is not None else RequestOptions()
        if options.trace_id is None and get_tracer().enabled:
            options = replace(options, trace_id=TraceContext.new().trace_id)
        return options

    @staticmethod
    def _child_options(options: RequestOptions, span_id: str) -> RequestOptions:
        """Re-parent the options under the client's root span."""
        if options.trace_id is None or not span_id:
            return options
        return replace(options, trace_parent=span_id)

    @staticmethod
    def _service_options(options: RequestOptions) -> Optional[RequestOptions]:
        """What the service layer receives: the options object when it
        constrains the request *or* carries a trace (the service reads the
        trace fields but treats the request as unconstrained), else None —
        exactly the legacy call shape for plain requests."""
        return options if options.constrained or options.traced else None

    def _maybe_slowlog(self, response: Response) -> None:
        slowlog = get_slowlog()
        if not slowlog.enabled:
            return
        spans: Sequence[Any] = ()
        if response.trace_id is not None:
            spans = get_tracer().collector.spans_for(response.trace_id)
        slowlog.maybe_record(
            wall_s=response.wall_s,
            kind=response.kind,
            trace_id=response.trace_id,
            latency_s=response.latency_s,
            complete=response.complete,
            deadline_expired=response.deadline_expired,
            attribution=dict(response.attribution),
            epoch=self.epoch(),
            spans=spans,
        )

    # ------------------------------------------------------------------ envelope plumbing
    def _wrap_result(
        self, result: QueryResult, options: RequestOptions, started: float
    ) -> Response:
        expired = options.deadline_s is not None and not result.complete
        self._enforce_completeness(options, expired, result.complete)
        return Response(
            kind="query",
            latency_s=result.latency,
            wall_s=time.perf_counter() - started,
            complete=result.complete,
            deadline_expired=expired,
            result=result,
            attribution=self._attribution(),
            trace_id=options.trace_id,
        )

    def _enforce_completeness(
        self, options: RequestOptions, expired: bool, complete: bool
    ) -> None:
        """Apply the caller's ``on_deadline`` policy to an incomplete result.

        A deadline expiry raises :class:`DeadlineExceededError`; a result
        that is incomplete for any *other* reason — a shard worker process
        died mid-scatter — raises :class:`PartialResultError` instead.
        Policy ``"partial"`` (the default) returns the incomplete payload
        either way, with the failed shards named in the attribution.
        """
        if complete or options.on_deadline != "fail":
            return
        if expired:
            raise DeadlineExceededError(
                f"deadline of {options.deadline_s}s expired before the query "
                f"completed"
            )
        down = (
            self.store.dead_shards() if isinstance(self.store, ShardRouter) else []
        )
        raise PartialResultError(
            "query returned an incomplete result"
            + (f"; shards down: {down}" if down else "")
        )

    # ------------------------------------------------------------------ pagination
    def _run_full(self, query: Query, options: RequestOptions) -> QueryResult:
        stripped = replace(options, page_size=None, cursor=None)
        return self.service.execute(query, self._service_options(stripped))

    def _pin(self, snapshot: _Snapshot) -> str:
        with self._snapshot_lock:
            self._cursor_counter += 1
            sid = f"s{self._cursor_counter}"
            self._snapshots[sid] = snapshot
            while len(self._snapshots) > SNAPSHOT_LIMIT:
                self._snapshots.popitem(last=False)
        return sid

    def _pinned(self, sid: str) -> Optional[_Snapshot]:
        with self._snapshot_lock:
            snapshot = self._snapshots.get(sid)
            if snapshot is not None:
                self._snapshots.move_to_end(sid)
            return snapshot

    @staticmethod
    def _keys(
        query: Query, files: List[FileMetadata], distances: List[float]
    ) -> List[CursorKey]:
        """Canonical resume keys, matching the engine's result order."""
        if isinstance(query, TopKQuery):
            return [(d, f.file_id) for d, f in zip(distances, files)]
        return [f.file_id for f in files]

    def _execute_page(
        self, query: Query, options: RequestOptions, started: float
    ) -> Response:
        if options.cursor is not None:
            cursor = Cursor.decode(options.cursor)
            if not cursor.matches(query):
                raise InvalidCursorError(
                    "cursor belongs to a different query; present it with the "
                    "query that created it"
                )
            page_size = cursor.page_size
            snapshot = self._pinned(cursor.snapshot_id)
            sid: Optional[str]
            if snapshot is not None:
                files, distances, epoch, complete, _ = snapshot
                offset, pinned, sid, latency = cursor.offset, True, cursor.snapshot_id, 0.0
            else:
                # The pinned snapshot is gone (restart / LRU eviction):
                # re-execute at the current epoch and continue strictly
                # after the last served key.  Both canonical orders are
                # placement-independent, so this works on any topology —
                # including one that failed over or resharded meanwhile.
                result = self._run_full(query, options)
                keys = self._keys(query, result.files, result.distances)
                skip = 0
                if cursor.last_key is not None:
                    while skip < len(keys) and keys[skip] <= cursor.last_key:
                        skip += 1
                files = result.files[skip:]
                distances = result.distances[skip:] if result.distances else []
                epoch, complete, latency = self.epoch(), result.complete, result.latency
                sid = None  # pinned below only if the stream continues
                offset, pinned = 0, False
            page_index = cursor.page_index
        else:
            page_size = options.page_size or 0
            result = self._run_full(query, options)
            files, distances = result.files, result.distances
            epoch, complete, latency = self.epoch(), result.complete, result.latency
            sid = None  # pinned below only if the stream continues
            offset, pinned, page_index = 0, True, 0

        expired = options.deadline_s is not None and not complete
        self._enforce_completeness(options, expired, complete)

        end = offset + page_size
        page_files = files[offset:end]
        page_distances = distances[offset:end] if distances else []
        next_cursor: Optional[str] = None
        if end < len(files):
            # More pages remain: pin the result now (single-page streams
            # never enter the snapshot store at all).
            if sid is None:
                sid = self._pin((files, distances, epoch, complete, latency))
            keys = self._keys(query, page_files, page_distances)
            next_cursor = Cursor(
                query_fp=query_fingerprint(query),
                snapshot_id=sid,
                offset=end,
                last_key=keys[-1] if keys else None,
                epoch=epoch,
                page_size=page_size,
                page_index=page_index + 1,
            ).encode()
        elif sid is not None:
            # Final page served from a pinned snapshot: release it —
            # the cursor stream is exhausted and can never present it.
            with self._snapshot_lock:
                self._snapshots.pop(sid, None)
        page = ResultPage(
            files=list(page_files),
            distances=list(page_distances),
            index=page_index,
            cursor=next_cursor,
            pinned=pinned,
        )
        return Response(
            kind="page",
            latency_s=latency,
            wall_s=time.perf_counter() - started,
            complete=complete,
            deadline_expired=expired,
            page=page,
            attribution=self._attribution(),
            trace_id=options.trace_id,
        )
