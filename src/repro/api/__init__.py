"""The unified client API: one front door for every deployment shape.

``repro.api`` is the stable surface client code programs against; the
layers underneath (core store, ingest pipeline, shard router, replica
groups, query service) are implementation detail behind it:

``repro.api.spec``
    :class:`DeploymentSpec` — a declarative, JSON-round-trippable
    description of any of the five topologies (plain / durable / sharded
    / replicated / sharded+replicated).
``repro.api.client``
    :func:`connect` — build whatever a spec declares and return a
    :class:`Client` with a uniform surface: ``execute`` / ``submit`` /
    mutations / ``stats`` / ``close``.
``repro.api.options``
    :class:`RequestOptions` — per-request deadline (cooperative,
    partial-or-fail), consistency preference (primary / any_replica /
    bounded staleness) and pagination.
``repro.api.cursor``
    Opaque resumable cursors over the canonical, placement-independent
    result orders.
``repro.api.response``
    :class:`Response` / :class:`ResultPage` — the envelope every client
    call returns, shared by queries and mutations.
"""

from repro.api.client import Client, connect
from repro.api.cursor import Cursor, InvalidCursorError, query_fingerprint
from repro.api.options import (
    CONSISTENCY_LEVELS,
    DEADLINE_POLICIES,
    Deadline,
    DeadlineExceededError,
    PartialResultError,
    RequestOptions,
)
from repro.api.response import Response, ResultPage
from repro.api.spec import (
    EXECUTION_MODES,
    TOPOLOGIES,
    DeploymentSpec,
    load_spec,
    save_spec,
)

__all__ = [
    "CONSISTENCY_LEVELS",
    "Client",
    "Cursor",
    "DEADLINE_POLICIES",
    "Deadline",
    "DeadlineExceededError",
    "DeploymentSpec",
    "EXECUTION_MODES",
    "InvalidCursorError",
    "PartialResultError",
    "RequestOptions",
    "Response",
    "ResultPage",
    "TOPOLOGIES",
    "connect",
    "load_spec",
    "query_fingerprint",
    "save_spec",
]
