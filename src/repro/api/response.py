"""The uniform response envelope shared by queries and mutations.

Every :class:`~repro.api.client.Client` call returns a :class:`Response`,
whatever the deployment shape behind it: the payload (a full
:class:`~repro.core.queries.QueryResult`, a :class:`ResultPage`, or a
:class:`~repro.ingest.pipeline.MutationReceipt`), timing (simulated
latency under the cost model plus measured wall time), completeness under
a deadline, and attribution — which topology served the request and, for
sharded / replicated deployments, what the routing layer did.  Telemetry
and the benches consume this one envelope instead of special-casing
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.queries import QueryResult
from repro.ingest.pipeline import MutationReceipt
from repro.metadata.file_metadata import FileMetadata

__all__ = ["ResultPage", "Response"]


@dataclass(frozen=True)
class ResultPage:
    """One page of a paginated range / top-k / point result.

    ``cursor`` is the opaque token for the next page (``None`` once the
    stream is exhausted).  Concatenating the ``files`` (and, for top-k,
    ``distances``) of every page of one stream reproduces the unpaginated
    result byte-for-byte: the first page pins the full result under the
    cursor's snapshot id, so later pages are stable slices even while
    mutations land concurrently.  ``pinned`` tells whether this page was
    served from that pinned snapshot or recomputed at the current epoch
    (which happens when a cursor outlives its snapshot — client restart or
    snapshot eviction).
    """

    files: List[FileMetadata]
    distances: List[float]
    index: int
    cursor: Optional[str]
    pinned: bool = True

    @property
    def exhausted(self) -> bool:
        return self.cursor is None

    def __len__(self) -> int:
        return len(self.files)


@dataclass(frozen=True)
class Response:
    """What every client call returns.

    Exactly one of ``result`` (query), ``page`` (paginated query) or
    ``receipt`` (mutation) is set; the convenience accessors below
    delegate so callers rarely need to branch on the kind.
    """

    kind: str  # "query" | "page" | "mutation"
    latency_s: float
    wall_s: float
    complete: bool = True
    deadline_expired: bool = False
    result: Optional[QueryResult] = None
    page: Optional[ResultPage] = None
    receipt: Optional[MutationReceipt] = None
    attribution: Dict[str, object] = field(default_factory=dict)
    #: Correlation id of the distributed trace this request recorded into
    #: (None when tracing was off).  See :mod:`repro.obs.trace`.
    trace_id: Optional[str] = None

    # ------------------------------------------------------------------ payload accessors
    @property
    def files(self) -> List[FileMetadata]:
        if self.page is not None:
            return self.page.files
        if self.result is not None:
            return self.result.files
        return []

    @property
    def distances(self) -> List[float]:
        if self.page is not None:
            return self.page.distances
        if self.result is not None:
            return self.result.distances
        return []

    @property
    def found(self) -> bool:
        return bool(self.files)

    @property
    def cursor(self) -> Optional[str]:
        return self.page.cursor if self.page is not None else None

    def as_dict(self) -> Dict[str, object]:
        """Summary view (payload sizes, not payloads) for logs and tables."""
        d: Dict[str, object] = {
            "kind": self.kind,
            "latency_s": self.latency_s,
            "wall_s": self.wall_s,
            "complete": self.complete,
            "deadline_expired": self.deadline_expired,
            "files": len(self.files),
            "attribution": dict(self.attribution),
        }
        if self.trace_id is not None:
            d["trace_id"] = self.trace_id
        if self.receipt is not None:
            d["receipt"] = {
                "seq": self.receipt.seq,
                "kind": self.receipt.kind,
                "file_id": self.receipt.file_id,
                "known": self.receipt.known,
            }
        if self.page is not None:
            d["page_index"] = self.page.index
            d["exhausted"] = self.page.exhausted
        return d
