"""Per-request options: deadline, consistency preference, pagination.

A :class:`RequestOptions` travels with one request through the unified
client (:mod:`repro.api.client`) and the layers below it:

* **Deadline** — a wall-clock budget for the whole request, measured from
  admission.  Deadlines are *cooperative*: the query engine checks the
  budget between per-group scans, the shard router between scatter
  phases, and the service before dispatching at all, so an expired
  request stops doing work at the next check rather than being
  preempted.  What an expiry means is the caller's choice
  (:attr:`RequestOptions.on_deadline`): ``"partial"`` returns whatever
  was gathered before the budget ran out (the response is marked
  incomplete), ``"fail"`` raises :class:`DeadlineExceededError`.
* **Consistency** — where a replicated deployment may serve the read:
  ``"primary"`` (the current primary, read-your-writes), ``"any_replica"``
  (any healthy member, no catch-up — may trail the primary by up to the
  replication lag) or ``"bounded"`` (any member caught up to within
  :attr:`RequestOptions.max_staleness` shipped-but-unapplied records).
  Unreplicated deployments serve every level identically.
* **Pagination** — ``page_size`` asks for :class:`~repro.api.response.ResultPage`
  results; ``cursor`` resumes a previous page stream (see
  :mod:`repro.api.cursor` for the token contract).

This module is deliberately dependency-free (stdlib only): the layers
below the client duck-type against it without importing the API package.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CONSISTENCY_LEVELS",
    "DEADLINE_POLICIES",
    "Deadline",
    "DeadlineExceededError",
    "PartialResultError",
    "RequestOptions",
]

#: Where a replicated deployment may serve a read.
CONSISTENCY_LEVELS = ("primary", "any_replica", "bounded")

#: What an expired deadline means for the response.
DEADLINE_POLICIES = ("partial", "fail")


class DeadlineExceededError(TimeoutError):
    """A request with ``on_deadline="fail"`` ran out of budget."""


class PartialResultError(RuntimeError):
    """A request with ``on_deadline="fail"`` came back incomplete for a
    reason other than its deadline — e.g. a shard worker process died
    mid-scatter.  Requests with the default ``"partial"`` policy receive
    the incomplete payload (``complete=False``) instead, with the failed
    shards named in the response attribution."""


@dataclass(frozen=True)
class Deadline:
    """A started deadline: an absolute expiry on the monotonic clock.

    Created by :meth:`RequestOptions.start` at admission time, so queue
    wait counts against the budget.  The layers below check
    :meth:`expired` cooperatively between units of work.
    """

    expires_at: float
    budget_s: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(expires_at=time.monotonic() + seconds, budget_s=seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at


@dataclass(frozen=True)
class RequestOptions:
    """Options carried by one request through the unified client API.

    All fields default to the unconstrained behaviour, so
    ``RequestOptions()`` is exactly a legacy request: no deadline, fully
    caught-up reads, one unpaginated result.
    """

    deadline_s: Optional[float] = None
    on_deadline: str = "partial"
    consistency: str = "primary"
    max_staleness: int = 0
    page_size: Optional[int] = None
    cursor: Optional[str] = None
    #: Distributed-tracing correlation (see :mod:`repro.obs.trace`).
    #: Set by the client edge when tracing is enabled, or supplied by a
    #: caller continuing an existing trace.  Telemetry-only: trace fields
    #: never make a request :attr:`constrained` — a traced request must
    #: behave (cache, batching) exactly like its untraced twin.
    trace_id: Optional[str] = None
    trace_parent: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and (
            not math.isfinite(self.deadline_s) or self.deadline_s < 0.0
        ):
            raise ValueError("deadline_s must be a finite, non-negative number")
        if self.on_deadline not in DEADLINE_POLICIES:
            raise ValueError(f"on_deadline must be one of {DEADLINE_POLICIES}")
        if self.consistency not in CONSISTENCY_LEVELS:
            raise ValueError(f"consistency must be one of {CONSISTENCY_LEVELS}")
        if self.max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        if self.page_size is not None and self.page_size < 1:
            raise ValueError("page_size must be >= 1")

    # ------------------------------------------------------------------ helpers
    @property
    def constrained(self) -> bool:
        """True when any option deviates from legacy semantics.

        Constrained requests bypass the service's result cache and its
        batching window: a deadline partial must never be served to (or
        stored for) an unconstrained caller, and a relaxed-consistency
        read is not interchangeable with a caught-up one.
        """
        return (
            self.deadline_s is not None
            or self.consistency != "primary"
            or self.page_size is not None
            or self.cursor is not None
        )

    @property
    def traced(self) -> bool:
        return self.trace_id is not None

    @property
    def paginated(self) -> bool:
        return self.page_size is not None or self.cursor is not None

    def start(self) -> Optional[Deadline]:
        """Start the deadline clock (None when no deadline was requested)."""
        if self.deadline_s is None:
            return None
        return Deadline.after(self.deadline_s)
