"""Opaque, resumable result cursors for paginated range / top-k / point reads.

A cursor token is what a :class:`~repro.api.response.ResultPage` hands the
caller to fetch the next page.  It is **opaque** (clients must not parse
it) but **self-describing** (the server side can always act on it):
a base64url-encoded JSON envelope carrying

* the query fingerprint — a resumed cursor must belong to the query it is
  presented with;
* the snapshot id — the client pins the full result of the first page
  under this id, so later pages are byte-stable slices *even while
  mutations land concurrently* (the cursor pins the version-clock epoch
  of its first execution);
* the position — the absolute offset plus the last served key in the
  canonical result order (``(distance, file_id)`` for top-k, ``file_id``
  for range/point).  Both orders are placement-independent, which is what
  makes a cursor resumable on a *different* deployment shape: when the
  pinned snapshot is gone (client restart, snapshot LRU eviction), the
  query is re-executed at the current epoch and the stream continues
  strictly after the last served key;
* the epoch — the deployment's version-clock snapshot at first execution,
  so a resume can report whether it is continuing the pinned snapshot or
  a recomputed (fresher) result.

Tampered or truncated tokens raise :class:`InvalidCursorError` rather
than silently returning the wrong page.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = ["Cursor", "InvalidCursorError", "query_fingerprint"]

_CURSOR_VERSION = 1

#: Last-served key: ``file_id`` for point/range, ``(distance, file_id)``
#: for top-k (distance serialised with full precision via ``repr``).
CursorKey = Union[int, Tuple[float, int]]


class InvalidCursorError(ValueError):
    """The presented cursor token is malformed, tampered with, or belongs
    to a different query."""


def query_fingerprint(query: Query) -> str:
    """Stable digest identifying one query value.

    Two equal query objects produce the same fingerprint; a cursor is only
    honoured alongside the query that created it.
    """
    h = hashlib.sha256()
    if isinstance(query, PointQuery):
        h.update(b"point\x1f" + query.filename.encode("utf-8"))
    elif isinstance(query, RangeQuery):
        h.update(b"range\x1f")
        for name, lo, hi in zip(query.attributes, query.lower, query.upper):
            h.update(f"{name}={lo!r}:{hi!r}\x1f".encode("utf-8"))
    elif isinstance(query, TopKQuery):
        h.update(f"topk\x1fk={query.k}\x1f".encode("ascii"))
        for name, value in zip(query.attributes, query.values):
            h.update(f"{name}={value!r}\x1f".encode("utf-8"))
    else:
        raise TypeError(f"unsupported query type {type(query)!r}")
    return h.hexdigest()[:24]


@dataclass(frozen=True)
class Cursor:
    """The decoded contents of a cursor token (internal to the API layer)."""

    query_fp: str
    snapshot_id: str
    offset: int
    last_key: Optional[CursorKey]
    epoch: str
    page_size: int
    page_index: int = 1

    # ------------------------------------------------------------------ encoding
    def encode(self) -> str:
        key: Optional[Union[int, List[object]]]
        if isinstance(self.last_key, tuple):
            # The distance travels as repr() so the float round-trips
            # bit-exactly through JSON text.
            key = [repr(float(self.last_key[0])), int(self.last_key[1])]
        else:
            key = self.last_key
        payload = {
            "v": _CURSOR_VERSION,
            "qf": self.query_fp,
            "sid": self.snapshot_id,
            "off": self.offset,
            "key": key,
            "epoch": self.epoch,
            "ps": self.page_size,
            "pi": self.page_index,
        }
        raw = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        return base64.urlsafe_b64encode(raw).decode("ascii")

    @classmethod
    def decode(cls, token: str) -> "Cursor":
        try:
            raw = base64.urlsafe_b64decode(token.encode("ascii"))
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, binascii.Error, UnicodeDecodeError) as exc:
            raise InvalidCursorError(f"malformed cursor token: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("v") != _CURSOR_VERSION:
            raise InvalidCursorError(
                f"unsupported cursor version {payload.get('v') if isinstance(payload, dict) else None!r}"
            )
        try:
            key = payload["key"]
            last_key: Optional[CursorKey]
            if key is None:
                last_key = None
            elif isinstance(key, list):
                last_key = (float(key[0]), int(key[1]))
            else:
                last_key = int(key)
            return cls(
                query_fp=str(payload["qf"]),
                snapshot_id=str(payload["sid"]),
                offset=int(payload["off"]),
                last_key=last_key,
                epoch=str(payload["epoch"]),
                page_size=int(payload["ps"]),
                page_index=int(payload.get("pi", 1)),
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise InvalidCursorError(f"malformed cursor payload: {exc}") from exc

    def matches(self, query: Query) -> bool:
        return self.query_fp == query_fingerprint(query)
