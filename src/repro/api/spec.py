"""Declarative deployment specification: one document, any topology.

A :class:`DeploymentSpec` describes *what to stand up* — which of the five
deployment shapes, with which build / sharding / replication / durability
/ serving parameters — without any imperative build calls.  One
:func:`repro.api.client.connect` call turns a spec into a running
:class:`~repro.api.client.Client`, whatever the shape:

========================  ====================================================
topology                  what connect() builds
========================  ====================================================
``plain``                 one :class:`~repro.core.smartstore.SmartStore`
``durable``               a store behind a WAL-backed
                          :class:`~repro.ingest.pipeline.IngestPipeline`
``sharded``               N stores behind a
                          :class:`~repro.shard.router.ShardRouter`
``replicated``            a :class:`~repro.replication.group.ReplicaGroup`
``sharded_replicated``    a router whose every shard is a replica group
========================  ====================================================

Specs are plain data: :meth:`DeploymentSpec.to_dict` /
:meth:`DeploymentSpec.from_dict` round-trip through JSON-safe dicts
(reusing the persistence helpers for the nested
:class:`~repro.core.smartstore.SmartStoreConfig`), and
:func:`save_spec` / :func:`load_spec` persist them as JSON documents the
CLI can load with ``--spec``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.smartstore import SmartStoreConfig
from repro.persistence.snapshot import config_from_dict, config_to_dict
from repro.replication.group import REPLICATION_MODES, ReplicationConfig
from repro.service.service import ServiceConfig
from repro.storage import (
    StorageConfig,
    storage_config_from_dict,
    storage_config_to_dict,
)

__all__ = [
    "EXECUTION_MODES",
    "TOPOLOGIES",
    "DeploymentSpec",
    "load_spec",
    "save_spec",
    "service_config_from_dict",
    "service_config_to_dict",
]

PathLike = Union[str, Path]

SPEC_FORMAT = "repro.deployment-spec"
SPEC_VERSION = 1

#: The five deployment shapes one ``connect(spec)`` can build.
TOPOLOGIES = ("plain", "durable", "sharded", "replicated", "sharded_replicated")

#: How a sharded deployment executes its scatter: ``"threads"`` runs every
#: shard in-process on the router's thread pool (GIL-bound), ``"processes"``
#: runs one worker *process* per shard, scattered to over the wire protocol
#: (see :mod:`repro.server.worker`) so scan-heavy work uses every core.
EXECUTION_MODES = ("threads", "processes")

_SHARDED = ("sharded", "sharded_replicated")
_REPLICATED = ("replicated", "sharded_replicated")


def service_config_to_dict(config: ServiceConfig) -> Dict[str, Any]:
    """Serialise the JSON-safe fields of a service configuration.

    Driven by ``dataclasses.fields`` (every :class:`ServiceConfig` field
    is a JSON-safe scalar), so a field added later cannot be silently
    dropped from spec round-trips.
    """
    return {f.name: getattr(config, f.name) for f in fields(ServiceConfig)}


def service_config_from_dict(payload: Dict[str, Any]) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig`; unknown keys are ignored."""
    known = service_config_to_dict(ServiceConfig())
    kwargs = {key: payload[key] for key in known if key in payload}
    return ServiceConfig(**kwargs)


@dataclass(frozen=True)
class DeploymentSpec:
    """Everything needed to stand one deployment up, as plain data.

    Fields outside their topology are ignored by ``connect`` but
    validated for consistency where they would be misleading (a ``plain``
    spec must not name a WAL directory — that is what ``durable`` means).

    ``population`` optionally names a JSON-Lines file population (as
    written by :func:`repro.persistence.jsonl.save_files` or the CLI's
    ``trace --population-output``); ``connect`` loads it when the caller
    does not pass files directly.
    """

    topology: str = "plain"
    store: SmartStoreConfig = field(default_factory=SmartStoreConfig)
    # Sharding (sharded / sharded_replicated).
    shards: int = 2
    partitioner: str = "semantic"
    partition_strategy: str = "slice"
    units_per_shard: Optional[int] = None
    # Replication (replicated / sharded_replicated).
    replicas: int = 1
    replication_mode: str = "async"
    max_lag: int = 64
    # Durability (durable always; optional for sharded/replicated shapes).
    wal_dir: Optional[str] = None
    fsync_every: int = 1
    # Tiered segment storage (any topology): a root directory makes
    # checkpoints publish mmap-able segment snapshots there, cold starts
    # restore from them in O(WAL tail), and replica resync ships
    # snapshots instead of rebuilding.
    storage: Optional[StorageConfig] = None
    # Serving.
    service: ServiceConfig = field(default_factory=ServiceConfig)
    # Transport: scatter execution mode and the optional default bind
    # address the ``repro serve`` front door listens on for this spec.
    execution: str = "threads"
    listen: Optional[str] = None
    # Optional population source for connect(spec) without explicit files.
    population: Optional[str] = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {TOPOLOGIES}, got {self.topology!r}")
        if self.topology in _SHARDED and self.shards < 2:
            raise ValueError("a sharded topology needs shards >= 2")
        if self.topology in _REPLICATED and self.replicas < 1:
            raise ValueError("a replicated topology needs replicas >= 1")
        if self.replication_mode not in REPLICATION_MODES:
            raise ValueError(f"replication_mode must be one of {REPLICATION_MODES}")
        if self.max_lag < 1:
            raise ValueError("max_lag must be >= 1")
        if self.fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        if self.topology == "durable" and self.wal_dir is None:
            raise ValueError("topology 'durable' requires wal_dir")
        if self.topology == "plain" and self.wal_dir is not None:
            raise ValueError(
                "topology 'plain' does not take wal_dir; use topology 'durable'"
            )
        if self.units_per_shard is not None and self.units_per_shard < 1:
            raise ValueError("units_per_shard must be >= 1")
        if self.execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if self.execution == "processes" and self.topology != "sharded":
            raise ValueError(
                "execution 'processes' (one worker process per shard) requires "
                "topology 'sharded'; replicated shards stay in-process"
            )
        if self.listen is not None and not self.listen.startswith("tcp://"):
            raise ValueError(
                f"listen must be a tcp://host:port address, got {self.listen!r}"
            )
        if self.storage is not None and self.storage.root is None:
            raise ValueError(
                "spec.storage needs a root directory (StorageConfig.root)"
            )
        if self.storage is not None and self.execution == "processes":
            raise ValueError(
                "spec.storage is in-process tiered storage; execution "
                "'processes' workers manage their own state"
            )

    # ------------------------------------------------------------------ derived views
    @property
    def sharded(self) -> bool:
        return self.topology in _SHARDED

    @property
    def replicated(self) -> bool:
        return self.topology in _REPLICATED

    @property
    def durable(self) -> bool:
        return self.wal_dir is not None

    def replication_config(self) -> ReplicationConfig:
        return ReplicationConfig(
            replicas=self.replicas,
            mode=self.replication_mode,
            max_lag=self.max_lag,
        )

    def with_store(self, **changes: Any) -> "DeploymentSpec":
        """A copy with the nested store configuration updated."""
        return replace(self, store=replace(self.store, **changes))

    # ------------------------------------------------------------------ (de)serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": SPEC_FORMAT,
            "version": SPEC_VERSION,
            "topology": self.topology,
            "store": config_to_dict(self.store),
            "shards": self.shards,
            "partitioner": self.partitioner,
            "partition_strategy": self.partition_strategy,
            "units_per_shard": self.units_per_shard,
            "replicas": self.replicas,
            "replication_mode": self.replication_mode,
            "max_lag": self.max_lag,
            "wal_dir": self.wal_dir,
            "fsync_every": self.fsync_every,
            "storage": (
                storage_config_to_dict(self.storage)
                if self.storage is not None
                else None
            ),
            "service": service_config_to_dict(self.service),
            "execution": self.execution,
            "listen": self.listen,
            "population": self.population,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DeploymentSpec":
        if payload.get("format") not in (None, SPEC_FORMAT):
            raise ValueError(
                f"not a deployment spec (format={payload.get('format')!r})"
            )
        kwargs: Dict[str, Any] = {}
        for key in (
            "topology",
            "shards",
            "partitioner",
            "partition_strategy",
            "units_per_shard",
            "replicas",
            "replication_mode",
            "max_lag",
            "wal_dir",
            "fsync_every",
            "execution",
            "listen",
            "population",
        ):
            if key in payload:
                kwargs[key] = payload[key]
        if payload.get("store") is not None:
            kwargs["store"] = config_from_dict(dict(payload["store"]))
        if payload.get("storage") is not None:
            kwargs["storage"] = storage_config_from_dict(dict(payload["storage"]))
        if payload.get("service") is not None:
            kwargs["service"] = service_config_from_dict(dict(payload["service"]))
        return cls(**kwargs)


def save_spec(spec: DeploymentSpec, path: PathLike) -> None:
    """Write a spec as pretty-printed JSON (what ``--spec`` loads)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_spec(path: PathLike) -> DeploymentSpec:
    """Load a spec written by :func:`save_spec`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return DeploymentSpec.from_dict(json.load(fh))
