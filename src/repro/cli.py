"""Command-line interface: ``python -m repro <subcommand>``.

The CLI is a thin layer over the library so that the common workflows —
generate a trace, build a deployment, poke it with queries, compare against
the baselines — do not require writing a script.  Every subcommand prints
human-readable tables (the same formatter the benchmarks use) and most can
persist their artefacts via :mod:`repro.persistence`.

Subcommands
-----------
``trace``
    Generate one of the synthetic traces (hp / msn / eecs / generic), print
    its Tables-1-3-style summary and optionally save it as JSON-Lines.
``build``
    Build a SmartStore deployment over a trace or a saved population, print
    its statistics and optionally write a deployment snapshot.
``query``
    Build a deployment and run a single point / range / top-k query against
    it, printing the matching files and the query cost.
``compare``
    Run a mixed workload against SmartStore and the baselines (non-semantic
    R-tree, per-attribute DBMS, directory tree) and print the latency /
    message comparison (a small, live version of the paper's Table 4).
``serve-bench``
    Drive the concurrent query service with a repeated-query stream and
    print throughput/latency with the result cache and the batcher ablated
    on and off, verifying that every configuration returns the same result
    payloads as direct serial execution.
``ingest-bench``
    Drive the durable write path with a mixed insert/delete/modify stream:
    mutation throughput with the WAL fsync batching and the compactor
    ablated, plus two correctness gates — crash recovery (checkpoint + WAL
    replay answers identically to the live store) and drain equivalence
    (the compacted store answers identically to a fresh build over the
    mutated population).  Exits non-zero if either gate fails, so CI can
    run it as a smoke test.
``shard-bench``
    Split the corpus across N SmartStore shards behind the scatter-gather
    router and drive the same point/range/top-k workload through three
    phases (before mutations, with a mutation stream staged in flight,
    after a full drain).  Every query's result must be
    fingerprint-identical to an unsharded baseline of the same total size
    (exit-code-asserted, so CI runs it as the shard-path smoke test), and
    scatter-gather throughput per shard count is reported — optionally
    gated with ``--min-speedup``.
``reshard-bench``
    Reproduce the degenerate CLI-default partition on purpose (legacy
    weighted cuts, one shard holding half the corpus, ~1.0x "speedup"),
    then let the :class:`~repro.shard.reshard.ReshardController` repair it
    live under a mixed read/write storm.  Exit-code-asserted gates: every
    query phase byte-identical to an unsharded baseline before *and* after
    the reshard, zero failed requests during the storm, at least one
    reshard performed, and the rebalanced topology clearing utilization
    and scatter-speedup floors the degenerate build failed.
``replica-bench``
    Run every shard as a replica group (1 primary + N replicas) and kill
    **every primary mid-workload** with the live fault injector.  The exit
    code asserts the failover gates: all three query phases byte-identical
    to an unfailed baseline after catch-up, zero failed client requests,
    every group actually promoted, and — in async mode — replication lag
    inside the bounded window.  CI runs this as the fault-injection smoke
    test.
``client-bench``
    Drive the unified client API (``repro.api``): build any of the five
    deployment topologies from a declarative spec — either loaded from a
    JSON file (``--spec``) or assembled from flags (``--topology``,
    ``--shards``, ``--replicas``, ``--wal-dir``, ...) — and run a mixed
    workload through one ``Client``.  Gates (exit-code-asserted): the
    client's payloads are fingerprint-identical to a legacy plain-facade
    baseline, and cursor-paginated page concatenation equals the
    unpaginated result.  Deadline-bearing probes demonstrate the expiry
    telemetry; ``--save-spec`` writes the resolved spec JSON for reuse.
``serve``
    Stand a deployment spec up and serve it over TCP: the network front
    door.  Remote clients dial it with ``repro.api.connect("tcp://...")``
    and get the full client surface (queries with request options,
    pagination, mutations) over the wire protocol.
``net-bench``
    Benchmark the process-per-shard execution mode: the same scan-heavy
    workload through 1 and N worker OS processes, gated on result
    equivalence with an in-process baseline and on scatter-throughput
    scaling (wall-clock scaling is additionally gated where the host has
    the cores).  Writes ``BENCH_net.json``; every other bench subcommand
    writes its own ``BENCH_<name>.json`` alongside its tables too.
``storage-bench``
    Benchmark the tiered segment store's cold-start story: publish a
    snapshot, keep writing a WAL tail, then race the O(tail) recovery
    (mmap the segments, replay only the tail) against the legacy
    O(corpus) full rebuild over the same final state.  Exit-code-asserted
    gates: the recovered store answers every probe identically to the
    pre-crash live store, the replay touched exactly the tail, the
    recovery beats the rebuild by ``--min-speedup`` (default 5x), and a
    recovery starved to one resident segment (every query faulting
    groups in through the LRU) stays byte-identical too.
``lint``
    Run repro-lint — the project-specific invariant rules (deadline
    propagation, WAL-first ordering, lock discipline, error-envelope
    exhaustiveness, span coverage, determinism, exception hygiene) — over
    the source tree, gated by the committed ratchet baseline.  Exits
    non-zero on any finding not covered by the baseline, so CI runs it as
    the static-analysis gate.
``experiments``
    List the benchmark modules and the paper table/figure each regenerates.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.baselines.dbms import DBMSBaseline
from repro.baselines.rtree_db import RTreeBaseline
from repro.baselines.spyglass import SpyglassBaseline
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.eval.harness import run_query_workload
from repro.eval.tracking import write_bench_json
from repro.ingest import CompactionPolicy
from repro.ingest.benchmarking import run_ingest_ablation
from repro.eval.reporting import format_bytes, format_seconds, format_table
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.namespace.baseline import DirectoryTreeBaseline
from repro.persistence import (
    load_files,
    load_trace,
    save_files,
    save_snapshot,
    save_trace,
    snapshot_deployment,
)
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
    repeated_stream,
    result_fingerprint,
)
from repro.traces.eecs import eecs_trace
from repro.traces.hp import hp_trace
from repro.traces.msn import msn_trace
from repro.traces.scaleup import scale_up
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.workloads.generator import QueryWorkloadGenerator
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["main", "build_parser"]

TRACE_PROFILES = ("hp", "msn", "eecs", "generic")

#: Benchmark module -> what it reproduces (used by ``repro experiments``).
EXPERIMENT_INDEX: Dict[str, str] = {
    "bench_tables_1_2_3_traces.py": "Tables 1-3: scaled-up HP/MSN/EECS trace statistics (TIF)",
    "bench_table4_query_latency.py": "Table 4: point/range/top-k latency, SmartStore vs R-tree vs DBMS",
    "bench_fig7_space_overhead.py": "Figure 7: per-node index space overhead",
    "bench_fig8_routing_hops.py": "Figure 8: routing-distance (hops) distribution",
    "bench_fig9_point_hit_rate.py": "Figure 9: Bloom-filter point-query hit rate",
    "bench_fig10_recall_distributions.py": "Figure 10: recall of complex queries per query distribution",
    "bench_fig11_optimal_thresholds.py": "Figure 11: optimal grouping thresholds vs scale / tree level",
    "bench_fig12_recall_scalability.py": "Figure 12: recall vs system scale",
    "bench_fig13_online_offline.py": "Figure 13: on-line vs off-line latency and messages",
    "bench_fig14_versioning_overhead.py": "Figure 14: versioning space and latency overhead",
    "bench_tables_5_6_versioning_recall.py": "Tables 5-6: recall with and without versioning",
    "bench_ablation_grouping.py": "Ablation: LSI grouping vs K-means vs random placement",
    "bench_ablation_autoconfig.py": "Ablation: automatic multi-tree configuration",
    "bench_ablation_bloom.py": "Ablation: Bloom filter sizing",
    "bench_ablation_directory.py": "Ablation: directory-tree organisation vs SmartStore (namespace locality)",
    "bench_ablation_failures.py": "Ablation: availability and root failover under unit crashes",
    "bench_ablation_spyglass.py": "Ablation: Spyglass-style single-server partitioned index vs SmartStore",
    "bench_service_throughput.py": "Service: query-service throughput/latency with cache and batching ablated",
    "bench_ingest_throughput.py": "Ingest: durable write-path throughput with WAL fsync batching and compaction ablated",
    "bench_shard_scaling.py": "Shard: scatter-gather equivalence + throughput scaling across shard counts",
    "bench_reshard.py": "Reshard: live rebalance of a degenerate partition under a reader/mutation storm",
    "bench_replica_failover.py": "Replication: kill-the-primary equivalence + failover availability",
    "bench_client_api.py": "Client API: unified front door equivalence + pagination across all topologies",
    "bench_net_scaling.py": "Network: process-per-shard scatter equivalence + multi-core scaling over the wire protocol",
}


# ---------------------------------------------------------------------------- helpers
def _load_population(path: str) -> List[FileMetadata]:
    """Load a file population from either a trace or a population artefact."""
    try:
        return load_files(path)
    except ValueError:
        return load_trace(path).file_metadata()


def _make_trace(profile: str, scale: float, seed: int, tif: int):
    if profile == "hp":
        trace = hp_trace(scale=scale, seed=seed)
    elif profile == "msn":
        trace = msn_trace(scale=scale, seed=seed)
    elif profile == "eecs":
        trace = eecs_trace(scale=scale, seed=seed)
    else:
        config = SyntheticTraceConfig(
            name="generic",
            n_files=max(int(2000 * scale), 50),
            n_requests=max(int(10000 * scale), 100),
            n_projects=max(int(20 * scale), 5),
            seed=seed,
        )
        trace = generate_trace(config)
    if tif > 1:
        trace = scale_up(trace, tif)
    return trace


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


def _summary_rows(summary) -> List[List[object]]:
    d = summary.as_dict()
    return [[key, value] for key, value in d.items()]


def _parse_range_terms(terms: Sequence[str]) -> RangeQuery:
    """Parse ``attr=lo:hi`` terms into a :class:`RangeQuery`."""
    attributes: List[str] = []
    lower: List[float] = []
    upper: List[float] = []
    for term in terms:
        if "=" not in term or ":" not in term.split("=", 1)[1]:
            raise ValueError(f"range term {term!r} must look like attr=lo:hi")
        name, bounds = term.split("=", 1)
        lo, hi = bounds.split(":", 1)
        attributes.append(name)
        lower.append(float(lo))
        upper.append(float(hi))
    return RangeQuery(tuple(attributes), tuple(lower), tuple(upper))


def _parse_topk_terms(terms: Sequence[str], k: int) -> TopKQuery:
    """Parse ``attr=value`` terms into a :class:`TopKQuery`."""
    attributes: List[str] = []
    values: List[float] = []
    for term in terms:
        if "=" not in term:
            raise ValueError(f"top-k term {term!r} must look like attr=value")
        name, value = term.split("=", 1)
        attributes.append(name)
        values.append(float(value))
    return TopKQuery(tuple(attributes), tuple(values), k)


# ---------------------------------------------------------------------------- subcommands
def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _make_trace(args.profile, args.scale, args.seed, args.tif)
    summary = trace.summary()
    _print(
        format_table(
            ["statistic", "value"],
            _summary_rows(summary),
            title=f"{args.profile.upper()} trace (scale={args.scale}, TIF={args.tif})",
        )
    )
    if args.output:
        lines = save_trace(trace, args.output)
        _print(f"trace written to {args.output} ({lines} lines)")
    if args.population_output:
        count = save_files(trace.file_metadata(), args.population_output)
        _print(f"file population written to {args.population_output} ({count} records)")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    if args.input:
        files = _load_population(args.input)
    else:
        files = _make_trace(args.profile, args.scale, args.seed, 1).file_metadata()
    config = SmartStoreConfig(num_units=args.units, seed=args.seed, mode=args.mode)
    store = SmartStore.build(files, config)
    stats = store.stats()
    rows = [[key, value] for key, value in stats.items()]
    rows.append(["index space (pretty)", format_bytes(stats["index_space_bytes"])])
    _print(format_table(["statistic", "value"], rows, title="SmartStore deployment"))
    if args.snapshot:
        save_snapshot(snapshot_deployment(store), args.snapshot)
        _print(f"deployment snapshot written to {args.snapshot}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()
    store = SmartStore.build(files, SmartStoreConfig(num_units=args.units, seed=args.seed))

    if args.kind == "point":
        query = PointQuery(args.terms[0])
    elif args.kind == "range":
        query = _parse_range_terms(args.terms)
    else:
        query = _parse_topk_terms(args.terms, args.k)

    result = store.execute(query)
    rows = [
        [f.path, format_bytes(f.get("size")), f"{f.get('mtime'):.0f}"]
        for f in result.files[: args.limit]
    ]
    _print(
        format_table(
            ["path", "size", "mtime"],
            rows,
            title=f"{args.kind} query: {len(result.files)} result(s), "
            f"latency {format_seconds(result.latency)}, "
            f"{result.metrics.messages} messages, {result.hops} hop(s)",
        )
    )
    if len(result.files) > args.limit:
        _print(f"... {len(result.files) - args.limit} more result(s) not shown")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    store = SmartStore.build(files, SmartStoreConfig(num_units=args.units, seed=args.seed))
    systems = [
        ("SmartStore", store),
        ("R-tree (non-semantic)", RTreeBaseline(files, DEFAULT_SCHEMA)),
        ("DBMS (B+-tree per attribute)", DBMSBaseline(files, DEFAULT_SCHEMA)),
        ("Directory tree", DirectoryTreeBaseline(files, DEFAULT_SCHEMA)),
        ("Spyglass-style (K-D partitions)", SpyglassBaseline(files, DEFAULT_SCHEMA)),
    ]
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=args.seed)
    workloads = {
        "point": generator.point_queries(args.queries),
        "range": generator.range_queries(args.queries, distribution=args.distribution),
        "top-k": generator.topk_queries(args.queries, k=8, distribution=args.distribution),
    }

    rows = []
    for kind, queries in workloads.items():
        for name, system in systems:
            outcome = run_query_workload(system, queries)
            rows.append(
                [
                    kind,
                    name,
                    format_seconds(outcome.total_latency),
                    f"{outcome.total_messages}",
                ]
            )
    _print(
        format_table(
            ["workload", "system", "total latency", "messages"],
            rows,
            title=f"SmartStore vs. baselines ({len(files)} files, "
            f"{args.queries} queries per workload, {args.distribution} distribution)",
        )
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import time

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=args.seed)
    base = (
        generator.point_queries(args.queries, existing_fraction=0.8)
        + generator.range_queries(args.queries, distribution=args.distribution)
        + generator.topk_queries(args.queries, k=8, distribution=args.distribution)
    )
    stream = repeated_stream(base, args.repeat, seed=args.seed)

    def build_store():
        return SmartStore.build(
            files, SmartStoreConfig(num_units=args.units, seed=args.seed)
        )

    # Serial, uncached baseline: the library facade, one query at a time.
    store = build_store()
    started = time.perf_counter()
    serial_results = [store.execute(q) for q in stream]
    serial_wall = time.perf_counter() - started
    reference = [result_fingerprint(r) for r in serial_results]

    configurations = [
        ("service (cache + batching)", True, True),
        ("service (cache only)", True, False),
        ("service (batching only)", False, True),
        ("service (neither)", False, False),
    ]
    rows = [
        [
            "serial uncached",
            f"{serial_wall:.3f}",
            f"{len(stream) / serial_wall:.0f}",
            "1.00x",
            "-",
            "yes",
        ]
    ]
    bench_rows = [
        {
            "configuration": "serial uncached",
            "wall_s": serial_wall,
            "qps": len(stream) / serial_wall,
            "speedup": 1.0,
            "identical": True,
        }
    ]
    telemetry_rows = None
    for label, cache_on, batching_on in configurations:
        config = ServiceConfig(
            max_workers=args.workers,
            batch_window=args.batch_window,
            cache_enabled=cache_on,
            batching_enabled=batching_on,
            seed=args.seed,
        )
        with QueryService(build_store(), config) as service:
            loadgen = LoadGenerator(service, seed=args.seed)
            if args.mode == "closed":
                report = loadgen.closed_loop(stream, clients=args.clients)
            else:
                report = loadgen.open_loop(stream)
            identical = all(
                result_fingerprint(r) == ref
                for r, ref in zip(report.results, reference)
            )
            hit_rate = (
                f"{service.cache.stats.hit_rate * 100:.0f}%"
                if service.cache is not None
                else "-"
            )
            if cache_on and batching_on:
                telemetry_rows = service.telemetry.report_rows()
        rows.append(
            [
                label,
                f"{report.wall_seconds:.3f}",
                f"{report.achieved_qps:.0f}",
                f"{serial_wall / report.wall_seconds:.2f}x",
                hit_rate,
                "yes" if identical else "NO",
            ]
        )
        bench_rows.append(
            {
                "configuration": label,
                "wall_s": report.wall_seconds,
                "qps": report.achieved_qps,
                "speedup": serial_wall / report.wall_seconds,
                "cache_enabled": cache_on,
                "batching_enabled": batching_on,
                "identical": identical,
            }
        )

    _print(
        format_table(
            ["configuration", "wall (s)", "qps", "speedup", "cache hits", "results identical"],
            rows,
            title=f"serve-bench: {len(files)} files, {len(stream)} requests "
            f"({len(base)} unique x{args.repeat}), {args.workers} workers, "
            f"{args.mode} loop",
        )
    )
    if telemetry_rows:
        _print(
            format_table(
                ["query type", "requests", "engine", "cache", "coalesced",
                 "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
                telemetry_rows,
                title="service telemetry (cache + batching, simulated latency)",
            )
        )
    identical_all = all(r["identical"] for r in bench_rows)
    path = write_bench_json(
        "serve",
        {"configurations": bench_rows, "serial_wall_s": serial_wall},
        {
            "files": len(files),
            "requests": len(stream),
            "unique_queries": len(base),
            "repeat": args.repeat,
            "workers": args.workers,
            "mode": args.mode,
            "units": args.units,
            "seed": args.seed,
        },
        gates={"all results identical to serial baseline": identical_all},
    )
    _print(f"[bench json written to {path}]")
    return 0 if identical_all else 1


def _cmd_ingest_bench(args: argparse.Namespace) -> int:
    import tempfile

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gates compare stores with
    # different physical layouts, so bounded-breadth recall loss must not
    # masquerade as a write-path bug.
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=args.seed)
    n_del = args.mutations // 3
    n_mod = args.mutations // 6
    n_ins = args.mutations - n_del - n_mod
    stream = generator.mutation_stream(n_ins, n_del, n_mod)

    workdir = Path(args.wal_dir) if args.wal_dir else Path(
        tempfile.mkdtemp(prefix="repro-ingest-")
    )
    report = run_ingest_ablation(
        files,
        config,
        stream,
        workdir=workdir,
        fsync_batch=args.fsync_batch,
        policy=CompactionPolicy(
            max_staged_per_group=args.compact_threshold,
            max_staged_total=8 * args.compact_threshold,
        ),
        probes_per_type=args.probes,
        probe_seed=args.seed + 1,
    )

    _print(
        format_table(
            ["configuration", "wall (s)", "mut/s", "fsyncs", "compactions", "staged left"],
            [row.as_table_row() for row in report.rows],
            title=f"ingest-bench: {len(files)} files, {len(stream)} mutations "
            f"({n_ins} ins / {n_del} del / {n_mod} mod), {args.units} units",
        )
    )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(format_table(["correctness gate", "passed"], gate_rows, title="write-path gates"))
    path = write_bench_json(
        "ingest",
        {"rows": [row.as_table_row() for row in report.rows]},
        {
            "files": len(files),
            "mutations": len(stream),
            "units": args.units,
            "fsync_batch": args.fsync_batch,
            "compact_threshold": args.compact_threshold,
            "seed": args.seed,
        },
        gates=report.gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if report.passed else 1


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    from repro.shard.benchmarking import run_shard_scaling

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gate compares deployments
    # with different physical layouts, so bounded-breadth recall loss must
    # not masquerade as a sharding bug (same policy as ingest-bench).
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    report = run_shard_scaling(
        files,
        config,
        args.shards,
        queries_per_type=args.queries,
        n_mutations=args.mutations,
        partitioner=args.partitioner,
        workload_seed=args.seed + 1,
    )

    rows = [
        row.as_table_row(report.speedup_of(row.shards)) for row in report.rows
    ]
    _print(
        format_table(
            ["shards", "build (s)", "mix wall (s)", "busiest shard (sim ms)",
             "scatter q/s", "speedup", "mut/s", "pruned", "busy share",
             "identical"],
            rows,
            title=f"shard-bench: {len(files)} files, {args.units} total units, "
            f"{args.queries} queries/type x3 phases, {args.mutations} mutations, "
            f"{args.partitioner} partitioner",
        )
    )
    for row in report.rows:
        if row.degenerate:
            _print(
                f"WARNING: the {row.shards}-shard partition is degenerate — "
                f"the busiest shard carries {row.busy_share:.0%} of the "
                f"simulated busy time ({row.busy_utilization:.0%} effective "
                f"cluster utilization; per-shard populations: "
                f"{row.shard_populations}).  Scatter throughput of this row "
                f"measures one machine, not the cluster; its speedup is not "
                f"meaningful.  Use a larger corpus (--scale / --input) or a "
                f"different --seed before reading anything into it."
            )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(
        format_table(
            ["scatter-gather equivalence gate", "passed"],
            gate_rows,
            title="shard-path gates (vs unsharded baseline)",
        )
    )
    passed = report.passed
    gates = dict(report.gates)
    if args.min_speedup > 0:
        best = report.best_speedup
        ok = best is not None and best >= args.min_speedup
        shown = "n/a (no 1-shard row)" if best is None else f"{best:.2f}x"
        _print(
            f"throughput gate: {max(args.shards)} shards at "
            f"{shown} >= {args.min_speedup:.2f}x required: "
            f"{'yes' if ok else 'NO'}"
        )
        gates[f"scatter throughput >= {args.min_speedup:.2f}x"] = ok
        passed = passed and ok
    path = write_bench_json(
        "shard",
        {
            "rows": rows,
            "best_speedup": report.best_speedup,
        },
        {
            "files": len(files),
            "shards": list(args.shards),
            "units": args.units,
            "queries_per_type": args.queries,
            "mutations": args.mutations,
            "partitioner": args.partitioner,
            "min_speedup": args.min_speedup,
            "seed": args.seed,
        },
        gates=gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if passed else 1


def _cmd_reshard_bench(args: argparse.Namespace) -> int:
    from repro.shard.reshard import ReshardPolicy
    from repro.shard.reshard_bench import run_reshard_bench

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gates compare deployments
    # with different physical layouts, so bounded-breadth recall loss must
    # not masquerade as a resharding bug (same policy as shard-bench).
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    report = run_reshard_bench(
        files,
        config,
        args.shards,
        queries_per_type=args.queries,
        n_mutations=args.mutations,
        workload_seed=args.seed + 1,
        storm_readers=args.readers,
        storm_rounds=args.rounds,
        min_utilization=args.min_utilization,
        min_speedup=args.min_speedup,
        policy=ReshardPolicy(max_shards=args.max_shards),
    )

    _print(
        format_table(
            ["cycle", "shards", "busiest shard (sim ms)", "scatter q/s",
             "speedup", "utilization", "identical"],
            [row.as_table_row() for row in report.rows],
            title=f"reshard-bench: {len(files)} files, {args.units} total "
            f"units, {args.shards} shards, {args.queries} queries/type x3 "
            f"phases ('!' marks a degenerate partition)",
        )
    )
    storm = report.storm
    _print(
        f"storm: {storm.requests} concurrent requests "
        f"({storm.failed_requests} failed), {storm.writes} writes, "
        f"{storm.rebalances} rebalance(s) + {storm.splits} split(s) moving "
        f"{storm.moved} files in {storm.wall_seconds:.2f}s wall"
    )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(
        format_table(
            ["reshard gate", "passed"],
            gate_rows,
            title="reshard gates (vs unsharded baseline)",
        )
    )
    path = write_bench_json(
        "reshard",
        report.as_dict(),
        {
            "files": len(files),
            "shards": args.shards,
            "units": args.units,
            "queries_per_type": args.queries,
            "mutations": args.mutations,
            "readers": args.readers,
            "rounds": args.rounds,
            "min_utilization": args.min_utilization,
            "min_speedup": args.min_speedup,
            "seed": args.seed,
        },
        gates=report.gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if report.passed else 1


def _cmd_replica_bench(args: argparse.Namespace) -> int:
    from repro.replication.benchmarking import run_replica_failover

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gate compares deployments
    # with different physical layouts, so bounded-breadth recall loss must
    # not masquerade as a replication bug (same policy as shard-bench).
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    report = run_replica_failover(
        files,
        config,
        shards=args.shards,
        replicas=args.replicas,
        modes=tuple(args.modes),
        max_lag=args.max_lag,
        queries_per_type=args.queries,
        n_mutations=args.mutations,
        partitioner=args.partitioner,
        workload_seed=args.seed + 1,
    )

    _print(
        format_table(
            ["mode", "shards x copies", "build (s)", "mut wall (s)",
             "query wall (s)", "failovers", "degraded reads", "failed reqs",
             "max lag", "identical"],
            [row.as_table_row() for row in report.rows],
            title=f"replica-bench: {len(files)} files, {args.shards} shards x "
            f"{args.replicas + 1} copies, {args.units} total units/copy set, "
            f"{args.queries} queries/type x3 phases, {args.mutations} mutations, "
            f"every primary killed mid-stream",
        )
    )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(
        format_table(
            ["failover gate", "passed"],
            gate_rows,
            title="replication gates (vs unfailed baseline)",
        )
    )
    path = write_bench_json(
        "replica",
        {"rows": [row.as_table_row() for row in report.rows]},
        {
            "files": len(files),
            "shards": args.shards,
            "replicas": args.replicas,
            "modes": list(args.modes),
            "max_lag": args.max_lag,
            "units": args.units,
            "queries_per_type": args.queries,
            "mutations": args.mutations,
            "partitioner": args.partitioner,
            "seed": args.seed,
        },
        gates=report.gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if report.passed else 1


def _cmd_client_bench(args: argparse.Namespace) -> int:
    import time

    from dataclasses import replace as dc_replace

    from repro.api import DeploymentSpec, RequestOptions, connect, load_spec, save_spec

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gate compares deployments
    # with different physical layouts, so bounded-breadth recall loss must
    # not masquerade as a client-API bug (same policy as shard-bench).
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    if args.spec:
        spec = dc_replace(load_spec(args.spec), store=config)
    else:
        kwargs = dict(
            topology=args.topology,
            store=config,
            shards=args.shards,
            replicas=args.replicas,
            replication_mode=args.replication_mode,
        )
        if args.wal_dir:
            kwargs["wal_dir"] = args.wal_dir
        spec = DeploymentSpec(**kwargs)
    if args.save_spec:
        save_spec(spec, args.save_spec)
        _print(f"deployment spec written to {args.save_spec}")

    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=args.seed + 1)
    workload = (
        generator.point_queries(args.queries, existing_fraction=0.8)
        + generator.range_queries(args.queries, distribution="zipf")
        + generator.topk_queries(args.queries, k=8, distribution="zipf")
    )

    # Legacy baseline: the plain library facade over the same population.
    baseline = SmartStore.build(files, config)
    reference = [result_fingerprint(baseline.execute(q)) for q in workload]

    built = time.perf_counter()
    with connect(spec, files) as client:
        build_wall = time.perf_counter() - built
        started = time.perf_counter()
        responses = [client.execute(q) for q in workload]
        query_wall = time.perf_counter() - started
        identical = [
            result_fingerprint(r.result) == ref
            for r, ref in zip(responses, reference)
        ]

        # Pagination gate: page concatenation == unpaginated payload.
        pagination_ok = True
        for probe in (
            generator.range_queries(2, distribution="zipf")
            + generator.topk_queries(2, k=16, distribution="zipf")
        ):
            full = client.execute(probe)
            pages = list(client.pages(probe, args.page_size))
            paged_files = [f.file_id for p in pages for f in p.files]
            paged_dists = [d for p in pages for d in p.distances]
            pagination_ok = pagination_ok and paged_files == [
                f.file_id for f in full.files
            ] and paged_dists == full.distances

        # Deadline probes: an immediately-expiring budget must come back
        # partial (policy default) and show up in the expiry telemetry.
        for probe in generator.range_queries(3, distribution="zipf"):
            client.execute(probe, RequestOptions(deadline_s=0.0))
        expired = client.service.telemetry.deadline_expired

        telemetry_rows = client.service.telemetry.report_rows()
        attribution = responses[0].attribution

    rows = [
        ["topology", spec.topology],
        ["attribution", ", ".join(f"{k}={v}" for k, v in attribution.items())],
        ["build wall (s)", f"{build_wall:.3f}"],
        ["query wall (s)", f"{query_wall:.3f}"],
        ["requests", len(workload)],
        ["deadline probes expired", expired],
    ]
    _print(
        format_table(
            ["statistic", "value"],
            rows,
            title=f"client-bench: {len(files)} files through one Client "
            f"({spec.topology}), {args.queries} queries/type",
        )
    )
    if telemetry_rows:
        _print(
            format_table(
                ["query type", "requests", "engine", "cache", "coalesced",
                 "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
                telemetry_rows,
                title="service telemetry through the client",
            )
        )
    gates = {
        "client payloads identical to legacy facade": all(identical),
        "page concatenation equals unpaginated result": pagination_ok,
        "deadline expiries visible in telemetry": expired >= 3,
    }
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in gates.items()]
    _print(format_table(["client-API gate", "passed"], gate_rows, title="gates"))
    path = write_bench_json(
        "client",
        {
            "topology": spec.topology,
            "build_wall_s": build_wall,
            "query_wall_s": query_wall,
            "requests": len(workload),
            "deadline_probes_expired": expired,
            "attribution": {str(k): v for k, v in attribution.items()},
        },
        {
            "files": len(files),
            "queries_per_type": args.queries,
            "page_size": args.page_size,
            "units": args.units,
            "seed": args.seed,
            "spec": spec.to_dict(),
        },
        gates=gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if all(gates.values()) else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro import obs
    from repro.api import load_spec
    from repro.server import serve_spec

    if args.trace or args.slow_query_s is not None:
        # Must happen before the deployment is built so spawned shard
        # workers inherit the tracing switch.
        obs.configure(
            tracing=bool(args.trace),
            slow_query_threshold_s=args.slow_query_s,
            slow_query_path=args.slow_query_log,
        )
        if args.trace:
            _print("tracing enabled (export via the trace_export op / repro obs-export)")
        if args.slow_query_s is not None:
            _print(f"slow-query log enabled at {args.slow_query_s}s threshold")

    spec = load_spec(args.spec)
    files = _load_population(args.input) if args.input else None

    server = serve_spec(
        spec,
        files,
        listen=args.listen,
        max_connections=args.max_connections,
        max_in_flight=args.max_in_flight,
        allow_remote_shutdown=args.allow_remote_shutdown,
    )
    _print(
        f"serving {spec.topology} deployment "
        f"({server.client.spec.execution} execution) at {server.address}"
    )
    sys.stdout.flush()

    stop = threading.Event()

    def _stop(signum, frame):  # pragma: no cover - signal path
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _stop)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass
    try:
        # Wake periodically so remote shutdown (server._closed) is noticed.
        while not stop.is_set() and not server._closed:
            stop.wait(0.25)
    finally:
        server.close()
        _print("server stopped")
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import SpanCollector
    from repro.server.remote import connect_remote

    out_dir = Path(args.output_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    with connect_remote(args.address) as client:
        metrics_text = client.metrics_text()
        spans = client.export_spans()

    prom_path = out_dir / f"{args.prefix}.prom"
    prom_path.write_text(metrics_text, encoding="utf-8")

    # Re-materialise the server's spans locally so both export formats
    # come from the same collector code path.
    collector = SpanCollector(capacity=max(1, len(spans) or 1))
    ingested = collector.ingest(spans)
    jsonl_path = collector.export_jsonl(out_dir / f"{args.prefix}_trace.jsonl")
    chrome_path = collector.export_chrome(
        out_dir / f"{args.prefix}_trace.chrome.json"
    )

    _print(f"wrote {prom_path} ({len(metrics_text.splitlines())} lines)")
    _print(f"wrote {jsonl_path} ({ingested} spans)")
    _print(f"wrote {chrome_path} (open in Perfetto / chrome://tracing)")
    if not ingested:
        _print("note: no spans on the server — was it started with --trace?")
    return 0


def _cmd_net_bench(args: argparse.Namespace) -> int:
    from repro.server.benchmarking import run_net_scaling

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gate compares deployments
    # with different physical layouts, so bounded-breadth recall loss must
    # not masquerade as a wire-protocol bug (same policy as shard-bench).
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    report = run_net_scaling(
        files,
        config,
        args.workers,
        queries_per_type=args.queries,
        workload_seed=args.seed + 1,
        partitioner=args.partitioner,
    )

    scaling_ok = report.gate_scaling(args.min_speedup)
    wall_ok = report.gate_wall_speedup(args.min_speedup)
    rows = [
        row.as_table_row(
            report.speedup_of(row.workers), report.wall_speedup_of(row.workers)
        )
        for row in report.rows
    ]
    _print(
        format_table(
            ["workers", "build (s)", "wall (s)", "busiest worker (sim ms)",
             "scatter q/s", "speedup", "wall q/s", "wall speedup", "identical"],
            rows,
            title=f"net-bench: {len(files)} files, {args.units} total units, "
            f"{2 * args.queries} scan-heavy queries, one OS process per worker "
            f"({report.cores} core(s) on this host)",
        )
    )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(
        format_table(
            ["net-path gate", "passed"],
            gate_rows,
            title="process-per-shard gates (vs in-process baseline)",
        )
    )
    if wall_ok is None:
        _print(
            f"wall-clock gate skipped: host has {report.cores} core(s) < "
            f"{report.max_workers} workers (scatter-throughput gate still applies)"
        )
    path = write_bench_json(
        "net",
        {
            "rows": rows,
            "speedup": report.speedup_of(report.max_workers),
            "wall_speedup": report.wall_speedup_of(report.max_workers),
            "cores": report.cores,
        },
        {
            "files": len(files),
            "workers": list(args.workers),
            "units": args.units,
            "queries_per_type": args.queries,
            "partitioner": args.partitioner,
            "min_speedup": args.min_speedup,
            "seed": args.seed,
        },
        gates=report.gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if report.passed else 1


def _cmd_storage_bench(args: argparse.Namespace) -> int:
    import tempfile

    from repro.storage.benchmarking import run_storage_bench

    files = _load_population(args.input) if args.input else _make_trace(
        args.profile, args.scale, args.seed, 1
    ).file_metadata()

    # Exhaustive search breadth: the equivalence gates compare a snapshot
    # restart, an LRU-starved restart and a fresh rebuild, so bounded-
    # breadth recall loss must not masquerade as a storage bug.
    config = SmartStoreConfig(
        num_units=args.units, seed=args.seed, search_breadth=max(64, args.units)
    )
    workdir = Path(args.root) if args.root else Path(
        tempfile.mkdtemp(prefix="repro-storage-")
    )
    report = run_storage_bench(
        files,
        config,
        workdir=workdir,
        tail_mutations=args.tail,
        probes_per_type=args.probes,
        seed=args.seed,
        min_recovery_speedup=args.min_speedup,
        repeats=args.repeats,
    )

    _print(
        format_table(
            ["cold-start path", "wall (s)", "work"],
            [
                [
                    "snapshot + WAL tail",
                    f"{report.recovery_seconds:.4f}",
                    f"{report.segments_published} segments mmap'd, "
                    f"{report.wal_records_replayed} tail records replayed",
                ],
                [
                    "full rebuild",
                    f"{report.rebuild_seconds:.4f}",
                    "full corpus re-indexed from scratch",
                ],
            ],
            title=f"storage-bench: {report.files} files, "
            f"{report.tail_mutations} tail mutations, "
            f"{report.speedup:.1f}x recovery speedup "
            f"(LRU drill: {report.faults} faults / {report.evictions} evictions)",
        )
    )
    gate_rows = [[name, "yes" if ok else "NO"] for name, ok in report.gates.items()]
    _print(format_table(["storage gate", "passed"], gate_rows, title="tiered-storage gates"))
    path = write_bench_json(
        "storage",
        report.metrics(),
        {
            "files": report.files,
            "units": args.units,
            "tail_mutations": args.tail,
            "probes_per_type": args.probes,
            "min_speedup": args.min_speedup,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        gates=report.gates,
    )
    _print(f"[bench json written to {path}]")
    return 0 if report.passed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run repro-lint (the project invariant rules) over a source tree.

    Exit code 0 when every finding is covered by the ratchet baseline
    (or there are none), 1 when new findings appear.  With
    ``--baseline-update`` the current findings *become* the baseline —
    the ratchet only ever moves deliberately.
    """
    from repro.analysis.engine import (
        load_baseline,
        run_lint,
        write_baseline,
    )
    from repro.analysis.rules import build_rules

    root = Path(args.root).resolve()
    if not root.is_dir():
        raise ValueError(f"lint root {root} is not a directory")
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / "analysis" / "baseline.json"
    )

    if args.list_rules:
        rows = [[rule.name, rule.summary] for rule in build_rules()]
        _print(format_table(["rule", "invariant"], rows, title="repro-lint rules"))
        return 0

    report = run_lint(root)
    baseline = load_baseline(baseline_path)
    fresh = report.new_findings(baseline)

    if args.baseline_update:
        write_baseline(baseline_path, report.findings)
        _print(
            f"[baseline updated: {len(report.findings)} finding(s) "
            f"recorded in {baseline_path}]"
        )
        return 0

    for finding in fresh:
        _print(finding.render())
    waived = len(report.findings) - len(fresh)
    _print(
        f"[repro-lint: {report.files_checked} files, "
        f"{len(report.rule_names)} rules, {len(fresh)} new finding(s), "
        f"{waived} baselined, {len(report.suppressed)} suppressed]"
    )
    return 1 if fresh else 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    rows = [[module, what] for module, what in sorted(EXPERIMENT_INDEX.items())]
    _print(
        format_table(
            ["benchmark module", "reproduces"],
            rows,
            title="Run with: pytest benchmarks/<module> --benchmark-only",
        )
    )
    return 0


# ---------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartStore (SC'09) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_source(p: argparse.ArgumentParser) -> None:
        p.add_argument("--profile", choices=TRACE_PROFILES, default="msn",
                       help="synthetic trace profile (default: msn)")
        p.add_argument("--scale", type=float, default=0.5,
                       help="trace down-scaling factor (default: 0.5)")
        p.add_argument("--seed", type=int, default=42, help="random seed")

    p_trace = sub.add_parser("trace", help="generate a synthetic trace")
    add_trace_source(p_trace)
    p_trace.add_argument("--tif", type=int, default=1,
                         help="Trace Intensifying Factor (sub-trace replication)")
    p_trace.add_argument("--output", help="write the trace as JSON-Lines")
    p_trace.add_argument("--population-output",
                         help="write only the file population as JSON-Lines")
    p_trace.set_defaults(func=_cmd_trace)

    p_build = sub.add_parser("build", help="build a SmartStore deployment")
    add_trace_source(p_build)
    p_build.add_argument("--input", help="population or trace JSON-Lines to index")
    p_build.add_argument("--units", type=int, default=60, help="number of storage units")
    p_build.add_argument("--mode", choices=("offline", "online"), default="offline")
    p_build.add_argument("--snapshot", help="write a deployment snapshot JSON here")
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="run one query against a deployment")
    add_trace_source(p_query)
    p_query.add_argument("--input", help="population or trace JSON-Lines to index")
    p_query.add_argument("--units", type=int, default=20, help="number of storage units")
    p_query.add_argument("--limit", type=int, default=10, help="max results to print")
    p_query.add_argument("-k", type=int, default=8, help="k for top-k queries")
    p_query.add_argument("kind", choices=("point", "range", "topk"))
    p_query.add_argument(
        "terms",
        nargs="+",
        help="point: FILENAME | range: attr=lo:hi ... | topk: attr=value ...",
    )
    p_query.set_defaults(func=_cmd_query)

    p_cmp = sub.add_parser("compare", help="compare SmartStore against the baselines")
    add_trace_source(p_cmp)
    p_cmp.add_argument("--input", help="population or trace JSON-Lines to index")
    p_cmp.add_argument("--units", type=int, default=20, help="number of storage units")
    p_cmp.add_argument("--queries", type=int, default=20, help="queries per workload")
    p_cmp.add_argument("--distribution", choices=("uniform", "gauss", "zipf"), default="zipf")
    p_cmp.set_defaults(func=_cmd_compare)

    p_serve = sub.add_parser(
        "serve-bench", help="benchmark the concurrent query service"
    )
    add_trace_source(p_serve)
    p_serve.add_argument("--input", help="population or trace JSON-Lines to index")
    p_serve.add_argument("--units", type=int, default=20, help="number of storage units")
    p_serve.add_argument("--queries", type=int, default=12,
                         help="unique queries per type (point/range/top-k)")
    p_serve.add_argument("--repeat", type=int, default=4,
                         help="how often the unique workload recurs in the stream")
    p_serve.add_argument("--workers", type=int, default=4, help="thread-pool size")
    p_serve.add_argument("--batch-window", type=int, default=16,
                         help="requests coalesced per batch")
    p_serve.add_argument("--mode", choices=("open", "closed"), default="open",
                         help="load-generation client model")
    p_serve.add_argument("--clients", type=int, default=4,
                         help="concurrent clients (closed loop)")
    p_serve.add_argument("--distribution", choices=("uniform", "gauss", "zipf"),
                         default="zipf")
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_ingest = sub.add_parser(
        "ingest-bench", help="benchmark the durable WAL-backed write path"
    )
    add_trace_source(p_ingest)
    p_ingest.add_argument("--input", help="population or trace JSON-Lines to index")
    p_ingest.add_argument("--units", type=int, default=8, help="number of storage units")
    p_ingest.add_argument("--mutations", type=int, default=120,
                          help="total mutations in the stream (inserts/deletes/modifies)")
    p_ingest.add_argument("--fsync-batch", type=int, default=64,
                          help="records per fsync in the batched-WAL configurations")
    p_ingest.add_argument("--compact-threshold", type=int, default=24,
                          help="per-group staged-mutation count that triggers compaction")
    p_ingest.add_argument("--probes", type=int, default=6,
                          help="probe queries per type for the correctness gates")
    p_ingest.add_argument("--wal-dir",
                          help="directory for WAL/checkpoint artefacts (default: temp)")
    p_ingest.set_defaults(func=_cmd_ingest_bench)

    p_shard = sub.add_parser(
        "shard-bench", help="benchmark the sharded scatter-gather deployment"
    )
    add_trace_source(p_shard)
    p_shard.add_argument("--input", help="population or trace JSON-Lines to index")
    p_shard.add_argument("--units", type=int, default=16,
                         help="total storage-unit budget (split across shards)")
    p_shard.add_argument("--shards", type=int, nargs="+", default=[1, 4],
                         help="shard counts to compare (default: 1 4)")
    p_shard.add_argument("--queries", type=int, default=8,
                         help="queries per type per phase")
    p_shard.add_argument("--mutations", type=int, default=45,
                         help="mutations staged between the query phases")
    p_shard.add_argument("--partitioner", choices=("semantic", "hash"),
                         default="semantic", help="corpus partitioner")
    p_shard.add_argument("--min-speedup", type=float, default=0.0,
                         help="fail unless the largest shard count reaches this "
                         "scatter-throughput speedup over 1 shard (0 = report only)")
    p_shard.set_defaults(func=_cmd_shard_bench)

    p_resh = sub.add_parser(
        "reshard-bench",
        help="benchmark live shard rebalancing under a mixed-traffic storm",
    )
    add_trace_source(p_resh)
    p_resh.add_argument("--input", help="population or trace JSON-Lines to index")
    p_resh.add_argument("--units", type=int, default=16,
                        help="total storage-unit budget (split across shards)")
    p_resh.add_argument("--shards", type=int, default=4,
                        help="shard count for the deliberately degenerate build")
    p_resh.add_argument("--queries", type=int, default=8,
                        help="queries per type per phase")
    p_resh.add_argument("--mutations", type=int, default=45,
                        help="mutations per stream (cycle 1 and the storm)")
    p_resh.add_argument("--readers", type=int, default=4,
                        help="concurrent reader threads during the storm")
    p_resh.add_argument("--rounds", type=int, default=2,
                        help="storm rounds (mutation chunk + controller pass)")
    p_resh.add_argument("--max-shards", type=int, default=16,
                        help="reshard policy: topology growth bound")
    p_resh.add_argument("--min-utilization", type=float, default=0.55,
                        help="fail unless the rebalanced cycle clears this "
                        "effective cluster utilization")
    p_resh.add_argument("--min-speedup", type=float, default=1.3,
                        help="fail unless the rebalanced cycle clears this "
                        "scatter-throughput speedup over the unsharded baseline")
    p_resh.set_defaults(func=_cmd_reshard_bench)

    p_rep = sub.add_parser(
        "replica-bench",
        help="benchmark replicated shards under a kill-the-primary storm",
    )
    add_trace_source(p_rep)
    p_rep.add_argument("--input", help="population or trace JSON-Lines to index")
    p_rep.add_argument("--units", type=int, default=8,
                       help="total storage-unit budget per copy set")
    p_rep.add_argument("--shards", type=int, default=2,
                       help="shard count (each shard becomes a replica group)")
    p_rep.add_argument("--replicas", type=int, default=2,
                       help="replicas per shard in addition to the primary")
    p_rep.add_argument("--modes", nargs="+", choices=("async", "sync"),
                       default=["async", "sync"],
                       help="replication modes to drive (default: both)")
    p_rep.add_argument("--max-lag", type=int, default=32,
                       help="async mode: bounded shipped-but-unapplied window")
    p_rep.add_argument("--queries", type=int, default=6,
                       help="queries per type per phase")
    p_rep.add_argument("--mutations", type=int, default=48,
                       help="mutations in the stream (primaries die halfway)")
    p_rep.add_argument("--partitioner", choices=("semantic", "hash"),
                       default="semantic", help="corpus partitioner")
    p_rep.set_defaults(func=_cmd_replica_bench)

    p_client = sub.add_parser(
        "client-bench",
        help="drive the unified client API over any topology from a spec",
    )
    add_trace_source(p_client)
    p_client.add_argument("--input", help="population or trace JSON-Lines to index")
    p_client.add_argument("--spec",
                          help="deployment spec JSON to load (overrides topology flags; "
                          "its store config is replaced by --units/--seed)")
    p_client.add_argument("--topology",
                          choices=("plain", "durable", "sharded", "replicated",
                                   "sharded_replicated"),
                          default="sharded_replicated",
                          help="deployment shape when no --spec is given")
    p_client.add_argument("--units", type=int, default=8,
                          help="storage units (total budget for sharded shapes)")
    p_client.add_argument("--shards", type=int, default=2,
                          help="shard count for sharded topologies")
    p_client.add_argument("--replicas", type=int, default=1,
                          help="replicas per shard/group for replicated topologies")
    p_client.add_argument("--replication-mode", choices=("async", "sync"),
                          default="async")
    p_client.add_argument("--wal-dir",
                          help="WAL directory (required for topology 'durable')")
    p_client.add_argument("--queries", type=int, default=6,
                          help="queries per type in the mixed workload")
    p_client.add_argument("--page-size", type=int, default=7,
                          help="page size for the cursor-pagination gate")
    p_client.add_argument("--save-spec",
                          help="write the resolved deployment spec JSON here")
    p_client.set_defaults(func=_cmd_client_bench)

    p_srv = sub.add_parser(
        "serve",
        help="serve a deployment spec over TCP (the network front door)",
    )
    p_srv.add_argument("--spec", required=True,
                       help="deployment spec JSON to stand up and serve")
    p_srv.add_argument("--input",
                       help="population or trace JSON-Lines to index "
                       "(default: the spec's population path)")
    p_srv.add_argument("--listen",
                       help="tcp://host:port to bind (default: the spec's "
                       "listen address, else an ephemeral loopback port)")
    p_srv.add_argument("--max-connections", type=int, default=64,
                       help="concurrent connection cap")
    p_srv.add_argument("--max-in-flight", type=int, default=None,
                       help="concurrent request admission cap (composes with "
                       "the service's own max_in_flight)")
    p_srv.add_argument("--allow-remote-shutdown", action="store_true",
                       help="accept the wire protocol's shutdown op")
    p_srv.add_argument("--trace", action="store_true",
                       help="enable distributed tracing (spans exportable "
                       "via the trace_export op / repro obs-export)")
    p_srv.add_argument("--slow-query-s", type=float, default=None,
                       help="emit a structured slow-query record for "
                       "requests slower than this many seconds")
    p_srv.add_argument("--slow-query-log",
                       help="append slow-query records to this JSONL file "
                       "(default: in-memory ring only)")
    p_srv.set_defaults(func=_cmd_serve)

    p_obs = sub.add_parser(
        "obs-export",
        help="export metrics and traces from a running server",
    )
    p_obs.add_argument("--address", required=True,
                       help="tcp://host:port of the running repro serve")
    p_obs.add_argument("--output-dir", default="obs",
                       help="directory for the exported artefacts "
                       "(default: ./obs)")
    p_obs.add_argument("--prefix", default="repro",
                       help="artefact filename prefix (default: repro)")
    p_obs.set_defaults(func=_cmd_obs_export)

    p_net = sub.add_parser(
        "net-bench",
        help="benchmark process-per-shard scatter over the wire protocol",
    )
    add_trace_source(p_net)
    p_net.add_argument("--input", help="population or trace JSON-Lines to index")
    p_net.add_argument("--units", type=int, default=16,
                       help="total storage-unit budget (split across workers)")
    p_net.add_argument("--workers", type=int, nargs="+", default=[1, 4],
                       help="worker-process counts to compare (default: 1 4)")
    p_net.add_argument("--queries", type=int, default=24,
                       help="scan-heavy queries per type (range/top-k)")
    p_net.add_argument("--partitioner", choices=("semantic", "hash"),
                       default="semantic", help="corpus partitioner")
    p_net.add_argument("--min-speedup", type=float, default=2.5,
                       help="fail unless the largest worker count reaches this "
                       "scatter-throughput speedup over 1 worker")
    p_net.set_defaults(func=_cmd_net_bench)

    p_storage = sub.add_parser(
        "storage-bench",
        help="benchmark O(tail) snapshot recovery against a full rebuild",
    )
    add_trace_source(p_storage)
    p_storage.add_argument("--input", help="population or trace JSON-Lines to index")
    p_storage.add_argument("--units", type=int, default=16,
                           help="storage-unit budget for the deployment")
    p_storage.add_argument("--root", default=None,
                           help="working directory for the WAL and segment "
                           "root (default: a fresh temp dir)")
    p_storage.add_argument("--tail", type=int, default=48,
                           help="post-checkpoint mutations forming the WAL tail")
    p_storage.add_argument("--probes", type=int, default=6,
                           help="equivalence probe queries per type")
    p_storage.add_argument("--repeats", type=int, default=3,
                           help="timing repeats (best-of) for both cold starts")
    p_storage.add_argument("--min-speedup", type=float, default=5.0,
                           help="fail unless snapshot+tail recovery beats the "
                           "full rebuild by this factor")
    p_storage.set_defaults(func=_cmd_storage_bench)

    p_lint = sub.add_parser(
        "lint",
        help="run the project invariant rules (repro-lint) over src/repro",
    )
    p_lint.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent),
        help="source tree to lint (default: the installed repro package)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        help="ratchet baseline JSON (default: <root>/analysis/baseline.json)",
    )
    p_lint.add_argument(
        "--baseline-update",
        action="store_true",
        help="accept the current findings as the new baseline",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_exp = sub.add_parser("experiments", help="list the benchmark/experiment index")
    p_exp.set_defaults(func=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, FileNotFoundError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
