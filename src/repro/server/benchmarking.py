"""Net-path scaling harness: process-per-shard throughput + equivalence.

Used by the ``net-bench`` CLI subcommand, the CI net-path smoke job and
``benchmarks/bench_net_scaling.py``, so all three run exactly the same
loop:

1. an **unsharded in-process baseline** answers a scan-heavy range/top-k
   workload, producing the reference result fingerprints;
2. for every requested worker count a process-per-shard deployment
   (:func:`repro.server.worker.build_process_router`) answers the
   identical workload; every query's fingerprint must match the
   baseline's (**net-path equivalence gate** — serialization over the
   wire protocol must be lossless);
3. throughput per worker count is recorded in two currencies:

   * **scatter throughput** — ``queries / busy-time-of-the-busiest-worker``
     in the repository's simulated-cost model, the same currency every
     other scaling figure here uses.  Workers are independent OS
     processes, so the deployment genuinely sustains this rate; the
     scaling gate compares it at N workers vs 1 worker.
   * **wall-clock throughput** — end-to-end wall time through the scatter
     pool.  Handler threads block on worker sockets with the GIL
     released, so on a machine with >= N cores the wall numbers show real
     multi-core speedup too; on smaller hosts (CI containers are often
     single-core) they cannot, which is why the hard gate rides on the
     simulated currency and the wall-clock gate applies only where the
     cores exist (see ``gate_wall_speedup``).

The uniform query-point distribution spreads scan work across every
worker (a Zipf stream would hammer one shard and cap the achievable
speedup below the shard count).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.server.worker import build_process_router
from repro.service.cache import result_fingerprint
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = ["NetScalingRow", "NetScalingReport", "run_net_scaling"]


@dataclass
class NetScalingRow:
    """Measurements for one worker-process count."""

    workers: int
    build_seconds: float
    wall_seconds: float
    busy_makespan: float        # simulated busy time of the busiest worker
    scatter_qps: float          # queries / busy_makespan
    wall_qps: float             # queries / wall_seconds
    identical: bool

    def as_table_row(
        self,
        speedup: Optional[float] = None,
        wall_speedup: Optional[float] = None,
    ) -> List[str]:
        return [
            f"{self.workers}",
            f"{self.build_seconds:.2f}",
            f"{self.wall_seconds:.3f}",
            f"{self.busy_makespan * 1e3:.2f}",
            f"{self.scatter_qps:.0f}",
            "-" if speedup is None else f"{speedup:.2f}x",
            f"{self.wall_qps:.0f}",
            "-" if wall_speedup is None else f"{wall_speedup:.2f}x",
            "yes" if self.identical else "NO",
        ]


@dataclass
class NetScalingReport:
    """Everything the CLI / benchmark needs to print and gate on."""

    rows: List[NetScalingRow]
    gates: Dict[str, bool] = field(default_factory=dict)
    cores: int = field(default_factory=lambda: os.cpu_count() or 1)

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def _row(self, workers: int) -> Optional[NetScalingRow]:
        return next((r for r in self.rows if r.workers == workers), None)

    def speedup_of(self, workers: int) -> Optional[float]:
        """Scatter throughput of ``workers`` relative to the 1-worker row."""
        base, row = self._row(1), self._row(workers)
        if base is None or row is None or base.scatter_qps <= 0:
            return None
        return row.scatter_qps / base.scatter_qps

    def wall_speedup_of(self, workers: int) -> Optional[float]:
        """Wall-clock throughput of ``workers`` relative to the 1-worker row."""
        base, row = self._row(1), self._row(workers)
        if base is None or row is None or base.wall_qps <= 0:
            return None
        return row.wall_qps / base.wall_qps

    @property
    def max_workers(self) -> int:
        return max(r.workers for r in self.rows) if self.rows else 0

    def gate_scaling(self, min_speedup: float) -> bool:
        """Hard gate: scatter throughput at max workers vs 1 worker."""
        best = self.speedup_of(self.max_workers)
        ok = best is not None and best >= min_speedup
        self.gates[
            f"{self.max_workers}-worker scatter throughput >= "
            f"{min_speedup:.2f}x of 1-worker"
        ] = ok
        return ok

    def gate_wall_speedup(self, min_speedup: float) -> Optional[bool]:
        """Wall-clock gate, applied only where the host has the cores.

        Returns None (and records nothing) when the machine has fewer
        cores than the largest worker count — a 4-process deployment on a
        1-core container cannot show wall-clock parallelism, and a gate
        that cannot pass anywhere but a big host would make the bench
        meaningless as a CI check.  The wall numbers are still reported.
        """
        if self.cores < self.max_workers:
            return None
        best = self.wall_speedup_of(self.max_workers)
        ok = best is not None and best >= min_speedup
        self.gates[
            f"{self.max_workers}-worker wall-clock throughput >= "
            f"{min_speedup:.2f}x of 1-worker ({self.cores} cores)"
        ] = ok
        return ok


def run_net_scaling(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    worker_counts: Sequence[int] = (1, 4),
    *,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    queries_per_type: int = 24,
    workload_seed: int = 17,
    partitioner: str = "semantic",
    scatter_workers: Optional[int] = None,
) -> NetScalingReport:
    """Run the net-path equivalence + process-scaling ablation.

    ``config.num_units`` is the total storage-unit budget, split across
    the worker processes of every deployment (as in the shard bench), so
    throughput differences come from parallelism, not extra hardware.
    """
    files = list(files)
    generator = QueryWorkloadGenerator(files, schema, seed=workload_seed)
    # Scan-heavy and uniformly spread: every worker gets real work.
    workload = generator.mixed_complex_queries(
        queries_per_type, queries_per_type, k=8, distribution="uniform"
    )

    baseline = SmartStore.build(files, config, schema)
    reference = [result_fingerprint(baseline.execute(q)) for q in workload]

    report = NetScalingReport(rows=[])
    for count in worker_counts:
        started = time.perf_counter()
        router = build_process_router(
            files,
            count,
            config,
            schema,
            partitioner=partitioner,
            units_per_shard=max(1, config.num_units // count),
            max_workers=scatter_workers,
        )
        build_seconds = time.perf_counter() - started
        try:
            router.reset_busy()
            started = time.perf_counter()
            prints = [result_fingerprint(router.execute(q)) for q in workload]
            wall = time.perf_counter() - started
            busy = router.busy_makespan()
            identical = prints == reference
            report.gates[
                f"{count} worker(s): results identical to in-process baseline"
            ] = identical
            report.rows.append(
                NetScalingRow(
                    workers=count,
                    build_seconds=build_seconds,
                    wall_seconds=wall,
                    busy_makespan=busy,
                    scatter_qps=len(workload) / busy if busy > 0 else 0.0,
                    wall_qps=len(workload) / wall if wall > 0 else 0.0,
                    identical=identical,
                )
            )
        finally:
            router.close()
    return report
