"""The network front door: wire protocol, socket server, shard workers,
and the remote client.

One wire protocol (:mod:`repro.server.protocol`) serves two hops:

* **client ↔ front door** — :class:`~repro.server.server.StoreServer`
  serves the full unified-client API over TCP;
  :func:`~repro.server.remote.connect_remote` (or
  ``repro.api.connect("tcp://host:port")``) is the drop-in remote client;
* **front door ↔ shard workers** — when a spec declares
  ``execution="processes"``, :func:`~repro.server.worker.build_process_router`
  runs one worker *process* per shard and the router scatters to them
  over the same protocol, so scan-heavy work escapes the GIL and uses
  every core.
"""

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    MSGPACK_AVAILABLE,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    RemoteError,
    WireCodec,
)
from repro.server.remote import RemoteClient, connect_remote
from repro.server.server import StoreServer, parse_address, serve_spec
from repro.server.worker import RemoteShard, build_process_router, spawn_worker

__all__ = [
    "MAX_FRAME_BYTES",
    "MSGPACK_AVAILABLE",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "ProtocolError",
    "RemoteClient",
    "RemoteError",
    "RemoteShard",
    "StoreServer",
    "WireCodec",
    "build_process_router",
    "connect_remote",
    "parse_address",
    "serve_spec",
    "spawn_worker",
]
