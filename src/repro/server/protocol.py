"""The wire protocol of the network front door.

One protocol, two audiences: remote clients talk to the
:class:`~repro.server.server.StoreServer` with it, and the front door
scatters to its :mod:`per-shard worker processes <repro.server.worker>`
with the very same framing and envelopes — there is exactly one
serialisation of every API type in the system.

Framing
-------
A *frame* is a 4-byte big-endian unsigned length followed by that many
payload bytes.  The payload is one JSON document (codec ``"json"``, the
default) or one msgpack document (codec ``"msgpack"``, negotiated in the
hello exchange and available only when the optional dependency is
installed — see :data:`MSGPACK_AVAILABLE`).  Frames above
:data:`MAX_FRAME_BYTES` are rejected *before* the payload is read, so an
attacker-supplied length cannot balloon server memory; empty frames and
truncated streams surface as :class:`ProtocolError` /
:class:`ConnectionClosed`, never as a hang.

Envelopes
---------
Every request carries a client-chosen ``id`` and an ``op``::

    {"id": 7, "op": "query", "query": {...}, "options": {...}}

and every reply echoes the id::

    {"id": 7, "ok": true, ...}                       # success
    {"id": 7, "ok": false, "error": {"type": "InvalidCursorError",
                                     "message": "..."}}

A reply to an unparseable request uses ``"id": null``.  The ``type``
field names the exception class; :func:`raise_remote_error` re-raises
the well-known API exceptions (:class:`InvalidCursorError`,
:class:`DeadlineExceededError`, ...) as themselves on the client side so
remote error handling is written exactly like local error handling.

Losslessness
------------
The serialisation of :class:`~repro.api.response.Response` (and the
:class:`~repro.core.queries.QueryResult` / ResultPage / MutationReceipt
payloads inside it) round-trips every client-observable field exactly:
floats travel as JSON numbers, which CPython prints and parses with
shortest-round-trip semantics, so result fingerprints computed from a
deserialised payload are byte-identical to local ones — the property the
remote fingerprint-equivalence suites gate on.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from repro.api.cursor import InvalidCursorError
from repro.api.options import (
    DeadlineExceededError,
    PartialResultError,
    RequestOptions,
)
from repro.api.response import Response, ResultPage
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.ingest.pipeline import MutationReceipt
from repro.persistence.jsonl import file_from_dict, file_to_dict
from repro.service.batching import ServiceOverloadedError
from repro.shard.router import ShardUnavailableError
from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = [
    "MAX_FRAME_BYTES",
    "MSGPACK_AVAILABLE",
    "PROTOCOL_VERSION",
    "ConnectionClosed",
    "ProtocolError",
    "RemoteError",
    "WireCodec",
    "error_envelope",
    "options_from_wire",
    "options_to_wire",
    "query_from_wire",
    "query_to_wire",
    "raise_remote_error",
    "read_frame",
    "response_from_wire",
    "response_to_wire",
    "result_from_wire",
    "result_to_wire",
    "write_frame",
]

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload size.  Large enough for any result
#: page the benches produce, small enough that a hostile length prefix
#: cannot make the server allocate unbounded memory.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct("!I")

try:  # optional accelerator codec — never required
    import msgpack  # type: ignore[import-not-found]

    MSGPACK_AVAILABLE = True
except ImportError:  # pragma: no cover - environment-dependent
    msgpack = None
    MSGPACK_AVAILABLE = False


class ProtocolError(ValueError):
    """The peer sent bytes that are not a well-formed protocol frame
    (oversized length, empty frame, undecodable payload, bad envelope)."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (possibly mid-frame)."""


class RemoteError(RuntimeError):
    """A server-side failure without a well-known local exception class."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class WireCodec:
    """Payload (de)serialisation behind the length-prefixed framing."""

    def __init__(self, name: str = "json") -> None:
        if name not in ("json", "msgpack"):
            raise ValueError(f"unknown codec {name!r}")
        if name == "msgpack" and not MSGPACK_AVAILABLE:
            raise ValueError("msgpack codec requested but msgpack is not installed")
        self.name = name

    def encode(self, payload: Dict[str, Any]) -> bytes:
        if self.name == "msgpack":  # pragma: no cover - optional dependency
            return msgpack.packb(payload, use_bin_type=True)
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    def decode(self, raw: bytes) -> Dict[str, Any]:
        try:
            if self.name == "msgpack":  # pragma: no cover - optional dependency
                payload = msgpack.unpackb(raw, raw=False)
            else:
                payload = json.loads(raw.decode("utf-8"))
        except Exception as exc:
            raise ProtocolError(f"undecodable {self.name} payload: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"protocol payload must be an object, got {type(payload).__name__}"
            )
        return payload


# ---------------------------------------------------------------------------- framing
def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {n} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket,
    codec: WireCodec,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> Dict[str, Any]:
    """Read one frame; raises :class:`ProtocolError` / :class:`ConnectionClosed`.

    The length prefix is validated before any payload byte is read, so an
    oversized or zero length costs nothing and never blocks.
    """
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length == 0:
        raise ProtocolError("empty frame (zero-length payload)")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return codec.decode(_recv_exact(sock, length))


def write_frame(
    sock: socket.socket,
    payload: Dict[str, Any],
    codec: WireCodec,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> int:
    """Serialise and send one frame; returns the payload size in bytes."""
    raw = codec.encode(payload)
    if len(raw) > max_frame_bytes:
        raise ProtocolError(
            f"outgoing frame of {len(raw)} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    sock.sendall(_LENGTH.pack(len(raw)) + raw)
    return len(raw)


# ---------------------------------------------------------------------------- error envelopes
#: Exception classes a server-side failure may legitimately surface to the
#: remote caller as *itself* (everything else becomes a RemoteError).
_KNOWN_ERRORS = {
    "InvalidCursorError": InvalidCursorError,
    "DeadlineExceededError": DeadlineExceededError,
    "PartialResultError": PartialResultError,
    "ServiceOverloadedError": ServiceOverloadedError,
    "ProtocolError": ProtocolError,
    "ShardUnavailableError": ShardUnavailableError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
}


def error_envelope(request_id: Optional[int], exc: BaseException) -> Dict[str, Any]:
    """The reply frame for a failed request (or an unparseable one)."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def raise_remote_error(error: Dict[str, Any]) -> "None":
    """Re-raise a server-side error locally, as its own class when known."""
    error_type = str(error.get("type", "RemoteError"))
    message = str(error.get("message", ""))
    cls = _KNOWN_ERRORS.get(error_type)
    if cls is not None:
        raise cls(message)
    raise RemoteError(error_type, message)


# ---------------------------------------------------------------------------- queries
def query_to_wire(query: Query) -> Dict[str, Any]:
    if isinstance(query, PointQuery):
        return {"type": "point", "filename": query.filename}
    if isinstance(query, RangeQuery):
        return {
            "type": "range",
            "attributes": list(query.attributes),
            "lower": list(query.lower),
            "upper": list(query.upper),
        }
    if isinstance(query, TopKQuery):
        return {
            "type": "topk",
            "attributes": list(query.attributes),
            "values": list(query.values),
            "k": query.k,
        }
    raise TypeError(f"unsupported query type {type(query)!r}")


def query_from_wire(payload: Dict[str, Any]) -> Query:
    try:
        kind = payload["type"]
        if kind == "point":
            return PointQuery(str(payload["filename"]))
        if kind == "range":
            return RangeQuery(
                tuple(str(a) for a in payload["attributes"]),
                tuple(float(v) for v in payload["lower"]),
                tuple(float(v) for v in payload["upper"]),
            )
        if kind == "topk":
            return TopKQuery(
                tuple(str(a) for a in payload["attributes"]),
                tuple(float(v) for v in payload["values"]),
                int(payload["k"]),
            )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed query payload: {exc}") from exc
    raise ProtocolError(f"unknown query type {payload.get('type')!r}")


# ---------------------------------------------------------------------------- options
def options_to_wire(options: Optional[RequestOptions]) -> Optional[Dict[str, Any]]:
    if options is None:
        return None
    return {
        "deadline_s": options.deadline_s,
        "on_deadline": options.on_deadline,
        "consistency": options.consistency,
        "max_staleness": options.max_staleness,
        "page_size": options.page_size,
        "cursor": options.cursor,
        "trace_id": options.trace_id,
        "trace_parent": options.trace_parent,
    }


def _tolerant_trace_field(value: Any) -> Optional[str]:
    """Trace correlation ids degrade to None on malformation, never raise:
    a peer corrupting telemetry headers must not be able to fail requests."""
    if (
        isinstance(value, str)
        and 0 < len(value) <= 128
        and value.isprintable()
    ):
        return value
    return None


def options_from_wire(payload: Optional[Dict[str, Any]]) -> Optional[RequestOptions]:
    if payload is None:
        return None
    try:
        return RequestOptions(
            deadline_s=(
                None if payload.get("deadline_s") is None
                else float(payload["deadline_s"])
            ),
            on_deadline=str(payload.get("on_deadline", "partial")),
            consistency=str(payload.get("consistency", "primary")),
            max_staleness=int(payload.get("max_staleness", 0)),
            page_size=(
                None if payload.get("page_size") is None
                else int(payload["page_size"])
            ),
            cursor=(
                None if payload.get("cursor") is None else str(payload["cursor"])
            ),
            trace_id=_tolerant_trace_field(payload.get("trace_id")),
            trace_parent=_tolerant_trace_field(payload.get("trace_parent")),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed request options: {exc}") from exc


# ---------------------------------------------------------------------------- metrics
def metrics_to_wire(metrics: Metrics) -> Dict[str, Any]:
    return {
        "messages": metrics.messages,
        "units_visited": sorted(metrics.units_visited),
        "memory_index_accesses": metrics.memory_index_accesses,
        "disk_index_accesses": metrics.disk_index_accesses,
        "memory_records_scanned": metrics.memory_records_scanned,
        "disk_records_scanned": metrics.disk_records_scanned,
        "bloom_probes": metrics.bloom_probes,
    }


def metrics_from_wire(payload: Dict[str, Any]) -> Metrics:
    metrics = Metrics()
    metrics.messages = int(payload.get("messages", 0))
    metrics.units_visited = {int(u) for u in payload.get("units_visited", ())}
    metrics.memory_index_accesses = int(payload.get("memory_index_accesses", 0))
    metrics.disk_index_accesses = int(payload.get("disk_index_accesses", 0))
    metrics.memory_records_scanned = int(payload.get("memory_records_scanned", 0))
    metrics.disk_records_scanned = int(payload.get("disk_records_scanned", 0))
    metrics.bloom_probes = int(payload.get("bloom_probes", 0))
    return metrics


# ---------------------------------------------------------------------------- results
def result_to_wire(result: QueryResult) -> Dict[str, Any]:
    return {
        "files": [file_to_dict(f) for f in result.files],
        "metrics": metrics_to_wire(result.metrics),
        "latency": result.latency,
        "groups_visited": result.groups_visited,
        "hops": result.hops,
        "found": result.found,
        "distances": list(result.distances),
        "complete": result.complete,
    }


def result_from_wire(payload: Dict[str, Any]) -> QueryResult:
    try:
        return QueryResult(
            files=[file_from_dict(d) for d in payload["files"]],
            metrics=metrics_from_wire(payload.get("metrics", {})),
            latency=float(payload["latency"]),
            groups_visited=int(payload["groups_visited"]),
            hops=int(payload["hops"]),
            found=bool(payload["found"]),
            distances=[float(d) for d in payload.get("distances", ())],
            complete=bool(payload.get("complete", True)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed query result payload: {exc}") from exc


def receipt_to_wire(receipt: MutationReceipt) -> Dict[str, Any]:
    return {
        "seq": receipt.seq,
        "kind": receipt.kind,
        "file_id": receipt.file_id,
        "group_id": receipt.group_id,
        "unit_id": receipt.unit_id,
        "known": receipt.known,
        "latency": receipt.latency,
    }


def receipt_from_wire(payload: Dict[str, Any]) -> MutationReceipt:
    try:
        return MutationReceipt(
            seq=int(payload["seq"]),
            kind=str(payload["kind"]),
            file_id=int(payload["file_id"]),
            group_id=int(payload["group_id"]),
            unit_id=int(payload["unit_id"]),
            known=bool(payload["known"]),
            latency=float(payload["latency"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed mutation receipt payload: {exc}") from exc


def page_to_wire(page: ResultPage) -> Dict[str, Any]:
    return {
        "files": [file_to_dict(f) for f in page.files],
        "distances": list(page.distances),
        "index": page.index,
        "cursor": page.cursor,
        "pinned": page.pinned,
    }


def page_from_wire(payload: Dict[str, Any]) -> ResultPage:
    try:
        return ResultPage(
            files=[file_from_dict(d) for d in payload["files"]],
            distances=[float(d) for d in payload.get("distances", ())],
            index=int(payload["index"]),
            cursor=(
                None if payload.get("cursor") is None else str(payload["cursor"])
            ),
            pinned=bool(payload.get("pinned", True)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result page payload: {exc}") from exc


# ---------------------------------------------------------------------------- the response envelope
def response_to_wire(response: Response) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "kind": response.kind,
        "latency_s": response.latency_s,
        "wall_s": response.wall_s,
        "complete": response.complete,
        "deadline_expired": response.deadline_expired,
        "attribution": dict(response.attribution),
    }
    if response.trace_id is not None:
        payload["trace_id"] = response.trace_id
    if response.result is not None:
        payload["result"] = result_to_wire(response.result)
    if response.page is not None:
        payload["page"] = page_to_wire(response.page)
    if response.receipt is not None:
        payload["receipt"] = receipt_to_wire(response.receipt)
    return payload


def response_from_wire(payload: Dict[str, Any]) -> Response:
    try:
        return Response(
            kind=str(payload["kind"]),
            latency_s=float(payload["latency_s"]),
            wall_s=float(payload["wall_s"]),
            complete=bool(payload.get("complete", True)),
            deadline_expired=bool(payload.get("deadline_expired", False)),
            result=(
                result_from_wire(payload["result"])
                if payload.get("result") is not None
                else None
            ),
            page=(
                page_from_wire(payload["page"])
                if payload.get("page") is not None
                else None
            ),
            receipt=(
                receipt_from_wire(payload["receipt"])
                if payload.get("receipt") is not None
                else None
            ),
            attribution=dict(payload.get("attribution", {})),
            trace_id=_tolerant_trace_field(payload.get("trace_id")),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed response envelope: {exc}") from exc


def jsonable(value: Any) -> Any:
    """Coerce a stats document into plain JSON-safe types (best effort).

    Stats dictionaries aggregate values from every layer — numpy scalars,
    tuples, sets — which the wire codec must not choke on.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(jsonable(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return repr(value)
