"""The network front door: a threaded socket server over one Client.

:class:`StoreServer` binds a TCP listener, loads (or is handed) a
deployment, and serves the full unified-client API over the
:mod:`wire protocol <repro.server.protocol>`: queries with request
options (deadlines, consistency, pagination — cursors travel as opaque
strings and pinned page-stream snapshots live server-side), mutations,
stats and epoch reads, plus a ``reshard`` op that runs one
reshard-controller pass on a sharded deployment.  :func:`serve_spec` is
the one-call form the CLI's ``repro serve`` uses.

Concurrency & admission
-----------------------
One accept thread plus one thread per connection.  Handler threads block
on socket I/O (GIL released), so many remote clients drive the
deployment concurrently; when the spec's execution mode is
``"processes"`` the scatter below runs on worker processes and the whole
read path uses every core.  Two admission knobs compose with the
:class:`~repro.service.service.QueryService`'s own ``max_in_flight``:

* ``max_connections`` — inbound connections beyond the cap are answered
  with a :class:`~repro.service.batching.ServiceOverloadedError` envelope
  and closed (never silently dropped);
* ``max_in_flight`` — framed requests executing concurrently across all
  connections; excess requests get the same overload envelope
  immediately (the service's queue never sees them).

Failure containment
-------------------
A malformed frame (garbage, truncated, oversized) terminates only its
own connection, after a best-effort error envelope; the request never
reaches the service, so a mutation is either fully applied and receipted
or not applied at all.  Graceful shutdown stops accepting, drains
in-flight requests, then closes every connection and (when the server
owns it) the deployment.
"""

from __future__ import annotations

import select
import socket
import threading
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.api.options import RequestOptions
from repro.api.spec import DeploymentSpec
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    context_from_wire,
    get_registry,
    get_tracer,
)
from repro.server import protocol
from repro.server.protocol import (
    ConnectionClosed,
    ProtocolError,
    WireCodec,
    error_envelope,
    read_frame,
    write_frame,
)
from repro.service.batching import ServiceOverloadedError

__all__ = ["StoreServer", "parse_address", "serve_spec"]

#: How long the accept/handler loops sleep between stop-flag checks.
_POLL_S = 0.25

#: Default graceful-shutdown drain budget.
SHUTDOWN_TIMEOUT_S = 10.0


def parse_address(address: str) -> Tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``; port 0 means ephemeral."""
    if not address.startswith("tcp://"):
        raise ValueError(f"address must start with tcp://, got {address!r}")
    rest = address[len("tcp://") :]
    host, sep, port = rest.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be tcp://host:port, got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ValueError(f"invalid port in address {address!r}") from exc


class StoreServer:
    """Serve one connected :class:`~repro.api.client.Client` over TCP."""

    def __init__(
        self,
        client: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        max_in_flight: Optional[int] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        allow_remote_shutdown: bool = False,
        owns_client: bool = False,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.client = client
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.max_connections = max_connections
        self.max_in_flight = max_in_flight
        self.max_frame_bytes = max_frame_bytes
        self.allow_remote_shutdown = allow_remote_shutdown
        self.owns_client = owns_client
        self._telemetry = client.service.telemetry
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._in_flight = 0
        self._drained = threading.Condition(self._lock)
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "StoreServer":
        """Bind the listener and start accepting (idempotent)."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(min(128, self.max_connections))
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        if self.port is None:
            raise RuntimeError("server is not started")
        return f"tcp://{self.host}:{self.port}"

    def close(self, timeout: float = SHUTDOWN_TIMEOUT_S) -> None:
        """Graceful shutdown: drain in-flight requests, then tear down."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=max(1.0, _POLL_S * 4))
        with self._drained:
            self._drained.wait_for(lambda: self._in_flight == 0, timeout=timeout)
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass
        for thread in list(self._handlers):
            thread.join(timeout=1.0)
        if self.owns_client:
            self.client.close()

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ accept loop
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                ready, _, _ = select.select([self._listener], [], [], _POLL_S)
            except OSError:
                return
            if not ready:
                continue
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            with self._lock:
                active = len([t for t in self._handlers if t.is_alive()])
            if active >= self.max_connections:
                self._telemetry.record_connection(accepted=False)
                self._refuse(conn, "connection limit reached")
                continue
            self._telemetry.record_connection(accepted=True)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-server-conn",
                daemon=True,
            )
            with self._lock:
                self._handlers = [t for t in self._handlers if t.is_alive()]
                self._handlers.append(thread)
                self._connections = [
                    c for c in self._connections if c.fileno() != -1
                ]
                self._connections.append(conn)
            thread.start()

    def _refuse(self, conn: socket.socket, reason: str) -> None:
        """Answer an over-limit connection with an overload envelope."""
        try:
            write_frame(
                conn,
                error_envelope(None, ServiceOverloadedError(reason)),
                WireCodec("json"),
            )
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ per-connection loop
    def _serve_connection(self, conn: socket.socket) -> None:
        codec = WireCodec("json")
        try:
            while not self._stop.is_set():
                try:
                    ready, _, _ = select.select([conn], [], [], _POLL_S)
                except (OSError, ValueError):
                    return
                if not ready:
                    continue
                try:
                    payload = read_frame(
                        conn, codec, max_frame_bytes=self.max_frame_bytes
                    )
                except ConnectionClosed:
                    return
                except ProtocolError as exc:
                    # Garbage framing: tell the peer why, then drop the
                    # connection — the stream cannot be trusted past this
                    # point, and nothing was applied.
                    self._telemetry.record_protocol_error()
                    try:
                        write_frame(conn, error_envelope(None, exc), codec)
                    except OSError:
                        pass
                    return
                except OSError:
                    return
                codec = self._dispatch(conn, codec, payload)
                if codec is None:
                    return
        finally:
            self._telemetry.record_disconnect()
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(
        self, conn: socket.socket, codec: WireCodec, payload: Dict[str, Any]
    ) -> Optional[WireCodec]:
        """Handle one framed request; returns the (possibly renegotiated)
        codec for the rest of the connection, or None to close it."""
        request_id = payload.get("id")
        bytes_in = len(codec.encode(payload))
        with self._lock:
            if (
                self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight
            ):
                overloaded = True
            else:
                overloaded = False
                self._in_flight += 1
        if overloaded:
            self._telemetry.record_net_request(bytes_in=bytes_in, rejected=True)
            try:
                write_frame(
                    conn,
                    error_envelope(
                        request_id,
                        ServiceOverloadedError(
                            f"server at max_in_flight={self.max_in_flight}"
                        ),
                    ),
                    codec,
                )
            except OSError:
                return None
            return codec
        next_codec: Optional[WireCodec] = codec
        try:
            try:
                reply, next_codec, keep_open = self._handle(payload, codec)
                reply.update({"id": request_id, "ok": True})
            except BaseException as exc:  # noqa: BLE001 - must answer the peer
                if isinstance(exc, ProtocolError):
                    self._telemetry.record_protocol_error()
                reply, keep_open = error_envelope(request_id, exc), True
            tracer = get_tracer()
            ser_ctx: Optional[TraceContext] = None
            if tracer.enabled:
                response = reply.get("response")
                trace_id = (
                    response.get("trace_id")
                    if isinstance(response, dict)
                    else None
                )
                if isinstance(trace_id, str) and trace_id:
                    ser_ctx = TraceContext(trace_id, "")
            try:
                with tracer.span("server.serialize", ser_ctx) as ser_span:
                    bytes_out = write_frame(
                        conn, reply, codec, max_frame_bytes=self.max_frame_bytes
                    )
                    ser_span.tag(bytes=bytes_out)
            except OSError:
                return None
            self._telemetry.record_net_request(
                bytes_in=bytes_in, bytes_out=bytes_out
            )
        finally:
            with self._drained:
                self._in_flight -= 1
                self._drained.notify_all()
        if not keep_open:
            return None
        return next_codec

    # ------------------------------------------------------------------ op handlers
    def _handle(
        self, payload: Dict[str, Any], codec: WireCodec
    ) -> Tuple[Dict[str, Any], WireCodec, bool]:
        op = payload.get("op")
        if op == "hello":
            return self._hello(payload, codec)
        if op == "execute":
            return self._execute(payload), codec, True
        if op == "mutate":
            return self._mutate(payload), codec, True
        if op == "stats":
            self._mirror_worker_stats()
            return (
                {"stats": protocol.jsonable(self.client.stats())},
                codec,
                True,
            )
        if op == "epoch":
            return {"epoch": self.client.epoch()}, codec, True
        if op == "reshard":
            outcome = self.client.reshard(force=bool(payload.get("force", False)))
            return {"outcome": protocol.jsonable(outcome)}, codec, True
        if op == "metrics":
            return (
                {
                    "metrics": self.metrics_text(),
                    "content_type": "text/plain; version=0.0.4",
                },
                codec,
                True,
            )
        if op == "trace_export":
            spans = get_tracer().collector.snapshot()
            return {"spans": [s.to_dict() for s in spans]}, codec, True
        if op == "ping":
            return {}, codec, True
        if op == "bye":
            return {}, codec, False
        if op == "shutdown":
            if not self.allow_remote_shutdown:
                raise ProtocolError("remote shutdown is not enabled on this server")
            # Reply first, then tear down from a helper thread so the
            # drain of in-flight requests (this one included) completes.
            threading.Thread(
                target=self.close, name="repro-server-shutdown", daemon=True
            ).start()
            return {}, codec, False
        raise ProtocolError(f"unknown op {op!r}")

    def _hello(
        self, payload: Dict[str, Any], codec: WireCodec
    ) -> Tuple[Dict[str, Any], WireCodec, bool]:
        requested = str(payload.get("codec", "json"))
        negotiated = codec
        if requested != codec.name:
            try:
                negotiated = WireCodec(requested)
            except ValueError:
                negotiated = codec  # keep talking; reply names the codec
        client_protocol = int(payload.get("protocol", protocol.PROTOCOL_VERSION))
        if client_protocol != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {client_protocol} is not supported "
                f"(server speaks {protocol.PROTOCOL_VERSION})"
            )
        reply = {
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "codec": negotiated.name,
            "topology": self.client.topology,
            "execution": self.client.spec.execution,
            "files": self._file_count(),
        }
        # The reply itself still travels in the old codec; the switch
        # applies from the next frame in both directions.
        return reply, negotiated, True

    def _file_count(self) -> int:
        """Indexed-file count across topologies (store / group / router)."""
        store = self.client.service.store
        files = getattr(store, "files", None)
        if files is not None:
            return len(files)
        return sum(len(shard.files) for shard in getattr(store, "shards", ()))

    def _execute(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        query = protocol.query_from_wire(payload.get("query") or {})
        options = protocol.options_from_wire(payload.get("options"))
        tracer = get_tracer()
        if not tracer.enabled:
            response = self.client.execute(query, options)
            return {"response": protocol.response_to_wire(response)}
        # Server edge: continue the caller's trace when one rode the
        # options in, otherwise start a fresh one here.
        if options is None:
            options = RequestOptions()
        if options.trace_id is None:
            options = replace(options, trace_id=TraceContext.new().trace_id)
        ctx = TraceContext(options.trace_id, options.trace_parent or "")
        with tracer.span(
            "server.execute", ctx, query=type(query).__name__
        ) as span:
            options = replace(options, trace_parent=span.span_id)
            response = self.client.execute(query, options)
            span.tag(complete=response.complete)
        return {"response": protocol.response_to_wire(response)}

    def _mutate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        kind = payload.get("kind")
        if kind not in ("insert", "delete", "modify"):
            raise ProtocolError(f"unknown mutation kind {kind!r}")
        try:
            file = protocol.file_from_dict(dict(payload["file"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed mutation payload: {exc}") from exc
        tracer = get_tracer()
        if not tracer.enabled:
            response = getattr(self.client, kind)(file)
            return {"response": protocol.response_to_wire(response)}
        ctx = context_from_wire(payload.get("trace")) or TraceContext.new()
        with tracer.span("server.mutate", ctx, kind=kind):
            # The span's thread-local context makes the client continue
            # this trace instead of minting its own.
            response = getattr(self.client, kind)(file)
        return {"response": protocol.response_to_wire(response)}

    def _mirror_worker_stats(self) -> None:
        """Fold process-router health into the service telemetry."""
        store = self.client.store
        dead = getattr(store, "dead_shards", None)
        if callable(dead) and hasattr(store, "shard_calls_failed"):
            processes = sum(
                1
                for shard in getattr(store, "shards", ())
                if hasattr(shard, "process")
            )
            self._telemetry.record_worker_stats(
                processes=processes, calls_failed=store.shard_calls_failed
            )

    def metrics_text(self) -> str:
        """Prometheus text exposition for the whole deployment.

        Renders from a scratch registry — the server's own instruments
        plus every worker's shipped snapshot under a ``shard`` label — so
        repeated scrapes never double-count the cumulative merges.
        """
        self._mirror_worker_stats()
        merged = MetricsRegistry()
        merged.merge(get_registry().to_wire())
        store = self.client.store
        for sid, shard in enumerate(getattr(store, "shards", ())):
            worker_stats = getattr(shard, "worker_stats", None)
            if worker_stats is None:
                continue
            try:
                doc = worker_stats()
            except Exception:  # noqa: BLE001 - a dead worker must not fail the scrape
                merged.counter(
                    "server_scrape_worker_unreachable",
                    "workers whose stats could not be fetched this scrape",
                    shard=str(sid),
                ).inc()
                continue
            payload = doc.get("metrics")
            if payload:
                merged.merge(payload, extra_labels={"shard": str(sid)})
        return merged.render_prometheus()

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, Any]:
        self._mirror_worker_stats()
        with self._lock:
            handlers = len([t for t in self._handlers if t.is_alive()])
        return {
            "address": self.address if self.port is not None else None,
            "connections": handlers,
            "in_flight": self._in_flight,
            "max_connections": self.max_connections,
            "max_in_flight": self.max_in_flight,
            "network": self._telemetry.network.as_dict(),
        }


def serve_spec(
    spec: DeploymentSpec,
    files: Optional[Any] = None,
    *,
    listen: Optional[str] = None,
    max_connections: int = 64,
    max_in_flight: Optional[int] = None,
    allow_remote_shutdown: bool = False,
) -> StoreServer:
    """Stand the spec's deployment up and serve it (the ``repro serve`` core).

    ``listen`` overrides the spec's own ``listen`` address; both default
    to an ephemeral loopback port.  The returned server **owns** the
    deployment: closing it closes the client too.
    """
    from repro.api.client import connect

    address = listen or spec.listen or "tcp://127.0.0.1:0"
    host, port = parse_address(address)
    client = connect(spec, files)
    try:
        server = StoreServer(
            client,
            host,
            port,
            max_connections=max_connections,
            max_in_flight=max_in_flight,
            allow_remote_shutdown=allow_remote_shutdown,
            owns_client=True,
        )
        return server.start()
    except BaseException:
        client.close()
        raise
