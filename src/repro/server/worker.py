"""Worker-process-per-shard execution: scatter-gather that escapes the GIL.

The in-process :class:`~repro.shard.router.ShardRouter` scatters on a
thread pool, so its ~N-way parallelism is bounded by the GIL — fine for
the simulated-cost currency, useless for real multi-core wall time.  This
module runs **one OS process per shard** instead:

* :func:`worker_main` is the ``multiprocessing`` (spawn) entry point: it
  rebuilds its shard's :class:`~repro.core.smartstore.SmartStore` from the
  shipped population slice (with the *corpus-wide* index bounds, so merged
  top-k distances stay comparable), stands a WAL-backed
  :class:`~repro.ingest.pipeline.IngestPipeline` over it when the
  deployment is durable, and serves the shard ops of the
  :mod:`wire protocol <repro.server.protocol>` on a loopback socket;
* :class:`RemoteShard` is the front-door side proxy.  It satisfies the
  router's shard-backend contract (engine queries, mutations, compaction,
  summaries, versioning mirror) by speaking the same protocol a remote
  client speaks to the front door — scattering is *network I/O* on the
  router's thread pool, so four shard scans genuinely run on four cores;
* :func:`build_process_router` partitions a corpus exactly like
  ``_build_shard_router``, spawns one worker per shard and returns a
  perfectly ordinary :class:`~repro.shard.router.ShardRouter` over the
  proxies — pruning summaries, shared-MaxD top-k, ownership routing and
  the service layer all run unchanged.

A dead worker never hangs a request: every transport failure flips the
proxy's ``alive`` flag and surfaces as
:class:`~repro.shard.router.ShardUnavailableError`, which the router
converts into an incomplete per-shard result (client partial/fail policy
applies) and mutations propagate as a clean error (the mutation either
reached the worker's WAL or it did not — never half-applied).
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.options import Deadline
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.core.versioning import VersioningManager
from repro.ingest.pipeline import IngestPipeline, MutationReceipt
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.obs import (
    configure as obs_configure,
    context_from_wire,
    context_to_wire,
    get_registry,
    get_tracer,
)
from repro.persistence.jsonl import (
    file_from_dict,
    file_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.persistence.snapshot import config_from_dict, config_to_dict
from repro.server import protocol
from repro.server.protocol import (
    ConnectionClosed,
    ProtocolError,
    WireCodec,
    error_envelope,
    read_frame,
    write_frame,
)
from repro.shard.partitioner import corpus_index_bounds, make_partitioner
from repro.shard.router import ShardRouter, ShardUnavailableError
from repro.workloads.types import Query

__all__ = [
    "RemoteShard",
    "build_process_router",
    "spawn_worker",
    "worker_main",
]

#: Engine methods a worker accepts over the wire (anything else is a
#: protocol error, not an attribute lookup on live objects).
_QUERY_METHODS = ("point_query", "range_query", "topk_query")
_MUTATION_KINDS = ("insert", "delete", "modify")

#: How long the parent waits for a spawned worker to report readiness.
SPAWN_TIMEOUT_S = 120.0

#: Per-call transport timeout on the proxy side.  Generous — a scan of a
#: large shard is legitimate work — but finite, so a wedged worker
#: surfaces as ShardUnavailableError instead of a hang.
CALL_TIMEOUT_S = 120.0


# ---------------------------------------------------------------------------- worker process
class _WorkerState:
    """Everything one worker process serves from."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.shard_id = int(payload["shard_id"])
        schema = schema_from_dict(payload["schema"])
        config = config_from_dict(dict(payload["config"]))
        files = [file_from_dict(d) for d in payload["files"]]
        bounds = (
            np.asarray(payload["index_bounds"][0], dtype=np.float64),
            np.asarray(payload["index_bounds"][1], dtype=np.float64),
        )
        self.store = SmartStore.build(files, config, schema, index_bounds=bounds)
        wal = None
        if payload.get("wal_path"):
            wal_path = Path(payload["wal_path"])
            wal_path.parent.mkdir(parents=True, exist_ok=True)
            wal = WriteAheadLog(wal_path, fsync_every=int(payload.get("fsync_every", 1)))
        self.pipeline = IngestPipeline(self.store, wal)
        self.max_frame_bytes = int(
            payload.get("max_frame_bytes", protocol.MAX_FRAME_BYTES)
        )
        # The parent's observability choices travel in the spawn payload,
        # so worker-side spans exist exactly when the deployment traces.
        obs_configure(tracing=bool(payload.get("tracing", False)))
        # One worker, many parent connections: engine scans may run
        # concurrently, mutations serialise against them.
        self.mutation_lock = threading.Lock()
        self.requests_served = 0
        self.stop = threading.Event()

    def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        op = payload.get("op")
        self.requests_served += 1
        if op == "hello":
            return {
                "server": "repro-worker",
                "protocol": protocol.PROTOCOL_VERSION,
                "shard_id": self.shard_id,
                "files": len(self.store.files),
            }
        if op == "ping":
            return {}
        if op == "shard_query":
            return self._shard_query(payload)
        if op == "shard_mutate":
            return self._shard_mutate(payload)
        if op == "compact":
            return self._compact(payload)
        if op == "stats":
            return {
                "stats": protocol.jsonable(self.pipeline.stats()),
                "requests_served": self.requests_served,
                "clock": self.store.versioning.change_clock,
                # The worker's whole metrics registry rides the existing
                # stats op; the parent merges it under a shard label.
                "metrics": get_registry().to_wire(),
            }
        if op == "shutdown":
            self.stop.set()
            return {}
        raise ProtocolError(f"unknown worker op {op!r}")

    def _shard_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        method = payload.get("method")
        if method not in _QUERY_METHODS:
            raise ProtocolError(f"unknown engine method {method!r}")
        query = protocol.query_from_wire(payload["query"])
        kwargs: Dict[str, Any] = {}
        if payload.get("home_unit") is not None:
            kwargs["home_unit"] = int(payload["home_unit"])
        remaining = payload.get("deadline_remaining_s")
        if remaining is not None:
            # Deadlines are absolute monotonic instants, which do not
            # travel between processes; the remaining budget does.
            kwargs["deadline"] = Deadline.after(max(0.0, float(remaining)))
        if payload.get("max_d_bound") is not None:
            kwargs["max_d_bound"] = float(payload["max_d_bound"])
        # A malformed trace header degrades to None (fresh-trace semantics);
        # it must never fail the scan it rode in on.
        ctx = context_from_wire(payload.get("trace"))
        tracer = get_tracer()
        with tracer.span(
            "worker.scan", ctx, shard=self.shard_id, method=method
        ) as scan_span:
            result: QueryResult = getattr(self.store.engine, method)(query, **kwargs)
            scan_span.tag(complete=result.complete)
        get_registry().histogram(
            "repro_worker_scan_latency_seconds",
            "Simulated per-scan latency inside one shard worker",
            method=method,
        ).observe(result.latency)
        reply = {
            "result": protocol.result_to_wire(result),
            "staged": len(self.pipeline.overlay),
        }
        if ctx is not None and tracer.enabled:
            # Ship this request's worker-side spans back inline, so the
            # parent's collector holds one cross-process trace.
            reply["spans"] = [
                s.to_dict() for s in tracer.collector.take(ctx.trace_id)
            ]
        return reply

    def _shard_mutate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        kind = payload.get("kind")
        if kind not in _MUTATION_KINDS:
            raise ProtocolError(f"unknown mutation kind {kind!r}")
        file = file_from_dict(dict(payload["file"]))
        ctx = context_from_wire(payload.get("trace"))
        tracer = get_tracer()
        with self.mutation_lock, tracer.span(
            "worker.mutate", ctx, shard=self.shard_id, kind=kind
        ):
            receipt: MutationReceipt = getattr(self.pipeline, kind)(file)
        get_registry().histogram(
            "repro_worker_mutation_latency_seconds",
            "Simulated per-mutation latency inside one shard worker",
            kind=kind,
        ).observe(receipt.latency)
        reply = {
            "receipt": protocol.receipt_to_wire(receipt),
            "staged": len(self.pipeline.overlay),
        }
        if ctx is not None and tracer.enabled:
            reply["spans"] = [
                s.to_dict() for s in tracer.collector.take(ctx.trace_id)
            ]
        return reply

    def _compact(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        mode = payload.get("mode", "run_once")
        if mode not in ("run_once", "drain"):
            raise ProtocolError(f"unknown compaction mode {mode!r}")
        with self.mutation_lock:
            count = (
                self.pipeline.compactor.drain()
                if mode == "drain"
                else self.pipeline.compactor.run_once()
            )
        return {
            "count": int(count),
            "staged": len(self.pipeline.overlay),
            "group_compactions": self.pipeline.compactor.stats.group_compactions,
        }


def _serve_connection(state: _WorkerState, conn: socket.socket) -> None:
    codec = WireCodec("json")
    try:
        while not state.stop.is_set():
            try:
                payload = read_frame(
                    conn, codec, max_frame_bytes=state.max_frame_bytes
                )
            except ConnectionClosed:
                return
            except (ProtocolError, socket.timeout, OSError) as exc:
                # Malformed bytes from the parent: answer with an error
                # envelope when the socket still works, then drop the
                # connection — never leave the peer waiting.
                try:
                    write_frame(conn, error_envelope(None, exc), codec)
                except OSError:
                    pass
                return
            request_id = payload.get("id")
            try:
                reply = state.handle(payload)
                reply.update({"id": request_id, "ok": True})
            except BaseException as exc:  # noqa: BLE001 - must answer the peer
                reply = error_envelope(request_id, exc)
            try:
                write_frame(conn, reply, codec, max_frame_bytes=state.max_frame_bytes)
            except OSError:
                return
    finally:
        try:
            conn.close()
        except OSError:
            pass


def worker_main(payload: Dict[str, Any], ready: Any) -> None:
    """Entry point of one shard worker process (spawn target).

    Builds the shard deployment, binds a loopback listener and reports
    ``{"port": ..., "unit_ids": [...]}`` (or ``{"error": ...}``) through
    the ``ready`` pipe, then serves until a ``shutdown`` op or SIGTERM.
    """
    try:
        state = _WorkerState(payload)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(16)
        listener.settimeout(0.2)
    except BaseException as exc:  # noqa: BLE001 - parent must learn why
        try:
            ready.send({"error": f"{type(exc).__name__}: {exc}"})
        finally:
            ready.close()
        return
    ready.send(
        {
            "port": listener.getsockname()[1],
            "unit_ids": state.store.cluster.unit_ids(),
        }
    )
    ready.close()

    def _terminate(signum: int, frame: Any) -> None:  # pragma: no cover - signal path
        state.stop.set()

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass

    handlers: List[threading.Thread] = []
    try:
        while not state.stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=_serve_connection,
                args=(state, conn),
                name=f"repro-worker-{state.shard_id}-conn",
                daemon=True,
            )
            thread.start()
            handlers.append(thread)
            handlers = [t for t in handlers if t.is_alive()]
    finally:
        listener.close()
        for thread in handlers:
            thread.join(timeout=1.0)
        state.pipeline.close()


# ---------------------------------------------------------------------------- proxy-side shims
class _RemoteCluster:
    """Home-unit domain of a remote shard, mirrored from the worker.

    The draw is deterministic per shard (own seeded RNG), mirroring the
    in-process ``ClusterSimulator.random_home_unit`` contract.
    """

    def __init__(self, unit_ids: Sequence[int], seed: int) -> None:
        self._unit_ids = [int(u) for u in unit_ids]
        self.rng = np.random.default_rng(seed)

    @property
    def num_units(self) -> int:
        return len(self._unit_ids)

    def unit_ids(self) -> List[int]:
        return list(self._unit_ids)

    def random_home_unit(self) -> int:
        return int(self._unit_ids[self.rng.integers(len(self._unit_ids))])


class _RemoteOverlay:
    """``len(pipeline.overlay)`` view: the worker's staged-mutation count,
    mirrored from the most recent reply that carried it."""

    def __init__(self) -> None:
        self.staged = 0

    def __len__(self) -> int:
        return self.staged


class _RemoteCompactorStats:
    def __init__(self) -> None:
        self.group_compactions = 0


class _RemoteCompactor:
    """Drives the worker's compactor over the wire (router compactor hook)."""

    def __init__(self, shard: "RemoteShard") -> None:
        self._shard = shard
        self.stats = _RemoteCompactorStats()

    def _compact(self, mode: str) -> int:
        reply = self._shard._call({"op": "compact", "mode": mode})
        self._shard._observe_staged(reply)
        self.stats.group_compactions = int(reply.get("group_compactions", 0))
        return int(reply.get("count", 0))

    def run_once(self) -> int:
        return self._compact("run_once")

    def drain(self) -> int:
        return self._compact("drain")

    def stop(self) -> None:  # pipeline-close parity; workers have no daemon
        return None


class RemoteShard:
    """Front-door proxy for one shard worker process.

    Satisfies the :class:`~repro.shard.router.ShardRouter` backend
    contract — store facade (``engine`` / ``files`` / ``schema`` /
    ``cluster`` / ``versioning``) *and* write path (``insert`` /
    ``delete`` / ``modify`` / ``compactor`` / ``overlay``) — by calling
    the worker over the wire protocol.  The proxy keeps a small
    per-worker connection pool (the scatter pool may land several
    concurrent calls on one shard) and a local
    :class:`~repro.core.versioning.VersioningManager` mirror whose clock
    bumps on every routed mutation, so the service's cache epochs behave
    exactly as they do over in-process shards.
    """

    def __init__(
        self,
        shard_id: int,
        files: Sequence[FileMetadata],
        schema: AttributeSchema,
        config: SmartStoreConfig,
        index_bounds: Tuple[np.ndarray, np.ndarray],
        process: multiprocessing.process.BaseProcess,
        port: int,
        unit_ids: Sequence[int],
        *,
        call_timeout: float = CALL_TIMEOUT_S,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    ) -> None:
        self.shard_id = shard_id
        self.files = list(files)
        self.schema = schema
        self.config = config
        self.index_lower = np.asarray(index_bounds[0], dtype=np.float64)
        self.index_upper = np.asarray(index_bounds[1], dtype=np.float64)
        self.process = process
        self.port = port
        self.alive = True
        self.versioning = VersioningManager()
        self.cluster = _RemoteCluster(unit_ids, seed=1009 + shard_id)
        self.overlay = _RemoteOverlay()
        self.compactor = _RemoteCompactor(self)
        self._log_mask = np.asarray(schema.log_scale_mask(), dtype=bool)
        self._call_timeout = call_timeout
        self._max_frame_bytes = max_frame_bytes
        self._codec = WireCodec("json")
        self._conns: List[socket.socket] = []
        self._conn_lock = threading.Lock()
        self._request_id = 0
        self._closed = False

    # ------------------------------------------------------------------ transport
    def _dial(self) -> socket.socket:
        conn = socket.create_connection(
            ("127.0.0.1", self.port), timeout=self._call_timeout
        )
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _checkout(self) -> socket.socket:
        with self._conn_lock:
            if self._conns:
                return self._conns.pop()
        return self._dial()

    def _checkin(self, conn: socket.socket) -> None:
        with self._conn_lock:
            if not self._closed:
                self._conns.append(conn)
                return
        try:
            conn.close()
        except OSError:
            pass

    def _next_id(self) -> int:
        with self._conn_lock:
            self._request_id += 1
            return self._request_id

    def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response exchange; transport failure marks the
        shard dead and raises :class:`ShardUnavailableError`."""
        if self._closed:
            raise ShardUnavailableError(self.shard_id, "proxy is closed")
        payload = dict(payload)
        payload["id"] = self._next_id()
        try:
            conn = self._checkout()
        except OSError as exc:
            self.alive = False
            raise ShardUnavailableError(self.shard_id, f"dial failed: {exc}") from exc
        try:
            write_frame(
                conn, payload, self._codec, max_frame_bytes=self._max_frame_bytes
            )
            reply = read_frame(
                conn, self._codec, max_frame_bytes=self._max_frame_bytes
            )
        except (ConnectionClosed, ProtocolError, socket.timeout, OSError) as exc:
            self.alive = False
            try:
                conn.close()
            except OSError:
                pass
            raise ShardUnavailableError(
                self.shard_id, f"worker transport failed: {exc}"
            ) from exc
        self._checkin(conn)
        if not reply.get("ok"):
            # A structured failure from a *live* worker: re-raise it as the
            # exception it was (bad query, unknown op...), not as death.
            protocol.raise_remote_error(reply.get("error", {}))
        return reply

    def _observe_staged(self, reply: Dict[str, Any]) -> None:
        staged = reply.get("staged")
        if staged is not None:
            self.overlay.staged = int(staged)

    # ------------------------------------------------------------------ store facade (engine)
    @property
    def engine(self) -> "RemoteShard":
        return self

    def to_index_space(self, attr_indices: Sequence[int], values: Sequence[float]) -> np.ndarray:
        """Raw query values → index space; identical math to the worker's
        :meth:`~repro.core.queries.QueryEngine.to_index_space` (the mask
        and bounds are the corpus-wide ones every shard was built with)."""
        idx = np.asarray(list(attr_indices), dtype=np.intp)
        vals = np.asarray(values, dtype=np.float64).copy()
        logs = self._log_mask[idx]
        vals[logs] = np.log1p(np.maximum(vals[logs], 0.0))
        return vals

    def _query(
        self,
        method: str,
        query: Query,
        home_unit: Optional[int],
        deadline: Optional[Deadline],
        max_d_bound: Optional[float],
    ) -> QueryResult:
        payload: Dict[str, Any] = {
            "op": "shard_query",
            "method": method,
            "query": protocol.query_to_wire(query),
            "home_unit": home_unit,
        }
        if deadline is not None:
            payload["deadline_remaining_s"] = max(0.0, deadline.remaining())
        if max_d_bound is not None:
            payload["max_d_bound"] = float(max_d_bound)
        tracer = get_tracer()
        ctx = tracer.current() if tracer.enabled else None
        if ctx is not None:
            payload["trace"] = context_to_wire(ctx)
        reply = self._call(payload)
        self._observe_staged(reply)
        if ctx is not None:
            # Fold the worker's spans for this request into the local
            # collector: one trace across the process boundary.
            tracer.collector.ingest(reply.get("spans"))
        return protocol.result_from_wire(reply["result"])

    def point_query(
        self,
        query: Query,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        **_ignored: Any,
    ) -> QueryResult:
        return self._query("point_query", query, home_unit, deadline, None)

    def range_query(
        self,
        query: Query,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        **_ignored: Any,
    ) -> QueryResult:
        return self._query("range_query", query, home_unit, deadline, None)

    def topk_query(
        self,
        query: Query,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        max_d_bound: Optional[float] = None,
        **_ignored: Any,
    ) -> QueryResult:
        return self._query("topk_query", query, home_unit, deadline, max_d_bound)

    # ------------------------------------------------------------------ write path (pipeline)
    def _mutate(self, kind: str, file: FileMetadata) -> MutationReceipt:
        payload: Dict[str, Any] = {
            "op": "shard_mutate",
            "kind": kind,
            "file": file_to_dict(file),
        }
        tracer = get_tracer()
        ctx = tracer.current() if tracer.enabled else None
        if ctx is not None:
            payload["trace"] = context_to_wire(ctx)
        reply = self._call(payload)
        self._observe_staged(reply)
        if ctx is not None:
            tracer.collector.ingest(reply.get("spans"))
        receipt = protocol.receipt_from_wire(reply["receipt"])
        # The worker's own versioning clock advanced; bump the local mirror
        # so the front door's cache epochs (and their subscribers) track it.
        self.versioning.touch()
        return receipt

    def insert(self, file: FileMetadata) -> MutationReceipt:
        return self._mutate("insert", file)

    def delete(self, file: FileMetadata) -> MutationReceipt:
        return self._mutate("delete", file)

    def modify(self, file: FileMetadata) -> MutationReceipt:
        return self._mutate("modify", file)

    def stats(self) -> Dict[str, Any]:
        reply = self._call({"op": "stats"})
        return dict(reply.get("stats", {}))

    def worker_stats(self) -> Dict[str, Any]:
        """The worker's full stats document (not just its pipeline stats):
        process identity, requests served, version clock, and the worker's
        metrics-registry snapshot — what the router surfaces so a remote
        client's ``stats()`` call sees per-worker internals."""
        reply = self._call({"op": "stats"})
        return {
            "alive": True,
            "pid": self.process.pid,
            "port": self.port,
            "requests_served": reply.get("requests_served"),
            "clock": reply.get("clock"),
            "stats": dict(reply.get("stats", {})),
            "metrics": reply.get("metrics"),
        }

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Ask the worker to exit, close the pool, reap the process."""
        if self._closed:
            return
        try:
            self._call({"op": "shutdown"})
        except (ShardUnavailableError, ProtocolError):
            pass  # already dead — reaped below
        with self._conn_lock:
            self._closed = True
            conns, self._conns = self._conns, []
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self.process.is_alive():
            self.process.join(timeout=10.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.terminate()
                self.process.join(timeout=5.0)
        self.alive = False

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (
            f"RemoteShard(shard={self.shard_id}, files={len(self.files)}, "
            f"port={self.port}, {state})"
        )


# ---------------------------------------------------------------------------- builders
def spawn_worker(
    shard_id: int,
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    schema: AttributeSchema,
    index_bounds: Tuple[np.ndarray, np.ndarray],
    *,
    wal_path: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
    spawn_timeout: float = SPAWN_TIMEOUT_S,
) -> RemoteShard:
    """Spawn one shard worker process and return its connected proxy."""
    ctx = multiprocessing.get_context("spawn")
    parent_end, child_end = ctx.Pipe(duplex=False)
    payload = {
        "shard_id": shard_id,
        "files": [file_to_dict(f) for f in files],
        "schema": schema_to_dict(schema),
        "config": config_to_dict(config),
        "index_bounds": [
            [float(v) for v in index_bounds[0]],
            [float(v) for v in index_bounds[1]],
        ],
        "wal_path": None if wal_path is None else str(wal_path),
        "fsync_every": fsync_every,
        # Workers inherit the parent's tracing switch at spawn time so their
        # spans exist to ship back when the parent is collecting them.
        "tracing": get_tracer().enabled,
    }
    process = ctx.Process(
        target=worker_main,
        args=(payload, child_end),
        name=f"repro-shard-worker-{shard_id}",
        daemon=True,
    )
    process.start()
    child_end.close()
    if not parent_end.poll(spawn_timeout):
        process.terminate()
        raise RuntimeError(
            f"shard worker {shard_id} did not report readiness within "
            f"{spawn_timeout}s"
        )
    ready = parent_end.recv()
    parent_end.close()
    if "error" in ready:
        process.join(timeout=5.0)
        raise RuntimeError(f"shard worker {shard_id} failed to start: {ready['error']}")
    return RemoteShard(
        shard_id,
        files,
        schema,
        config,
        index_bounds,
        process,
        int(ready["port"]),
        ready["unit_ids"],
    )


def build_process_router(
    files: Sequence[FileMetadata],
    num_shards: int,
    config: Optional[SmartStoreConfig] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    partitioner: str = "semantic",
    strategy: str = "slice",
    units_per_shard: Optional[int] = None,
    wal_dir: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
    max_workers: Optional[int] = None,
    spawn_timeout: float = SPAWN_TIMEOUT_S,
) -> ShardRouter:
    """One worker process per shard behind an ordinary :class:`ShardRouter`.

    The corpus split, per-shard unit budget (``config.num_units`` is the
    *total*) and corpus-wide index bounds follow
    ``repro.shard.router._build_shard_router`` exactly, so a process
    deployment is fingerprint-comparable with its in-process twin.
    ``num_shards=1`` is allowed (the single-worker baseline the scaling
    bench compares against).
    """
    from dataclasses import replace as dc_replace

    config = config if config is not None else SmartStoreConfig()
    files = list(files)
    if not files:
        raise ValueError("cannot shard an empty corpus")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    part = make_partitioner(
        files,
        num_shards,
        kind=partitioner if num_shards > 1 else "hash",
        schema=schema,
        rank=config.lsi_rank,
        seed=config.seed,
        strategy=strategy,
    )
    labels = part.assign(files)
    effective = getattr(part, "num_shards", num_shards)
    shard_files: List[List[FileMetadata]] = [[] for _ in range(effective)]
    for file, label in zip(files, labels):
        shard_files[int(label)].append(file)
    for sid, members in enumerate(shard_files):
        if not members:
            raise ValueError(
                f"shard {sid} received no files ({len(files)} files over "
                f"{effective} shards); lower num_shards or use the semantic "
                f"partitioner, which balances shard sizes"
            )

    bounds = corpus_index_bounds(files, schema)
    units = (
        units_per_shard
        if units_per_shard is not None
        else max(1, config.num_units // effective)
    )
    shard_config = dc_replace(config, num_units=units)

    wal_root = None
    if wal_dir is not None:
        wal_root = Path(wal_dir)
        wal_root.mkdir(parents=True, exist_ok=True)

    proxies: List[RemoteShard] = []
    try:
        for sid, members in enumerate(shard_files):
            proxies.append(
                spawn_worker(
                    sid,
                    members,
                    shard_config,
                    schema,
                    bounds,
                    wal_path=(
                        None if wal_root is None else wal_root / f"shard-{sid}.wal"
                    ),
                    fsync_every=fsync_every,
                    spawn_timeout=spawn_timeout,
                )
            )
    except BaseException:
        for proxy in proxies:
            proxy.close()
        raise
    workers = max_workers if max_workers is not None else len(proxies)
    return ShardRouter(
        proxies, part, pipelines=proxies, max_workers=max(1, workers)
    )
