"""The remote client: ``connect("tcp://host:port")`` as a drop-in Client.

:class:`RemoteClient` mirrors the :class:`~repro.api.client.Client`
surface — ``execute`` / ``submit`` / ``execute_many`` / ``pages``,
``insert`` / ``delete`` / ``modify``, ``stats`` / ``epoch`` /
``topology``, ``close`` and context-manager support — over one TCP
connection pool speaking the :mod:`wire protocol
<repro.server.protocol>`.  Every call returns the same
:class:`~repro.api.response.Response` envelope a local client returns,
rebuilt losslessly from the wire form, so code (and fingerprint suites)
written against a local deployment runs unchanged against a remote one.

Server-side exceptions arrive as error envelopes and are re-raised as
their own classes where known (:class:`InvalidCursorError`,
:class:`DeadlineExceededError`, :class:`PartialResultError`,
:class:`ServiceOverloadedError`, ...), so remote error handling is
written exactly like local error handling.  Pagination state (the pinned
page-stream snapshots) lives on the server; cursors travel as the opaque
strings they already are.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.api.options import RequestOptions
from repro.api.response import Response
from repro.metadata.file_metadata import FileMetadata
from repro.obs import TraceContext, context_to_wire, get_slowlog, get_tracer
from repro.persistence.jsonl import file_to_dict
from repro.server import protocol
from repro.server.protocol import (
    ProtocolError,
    WireCodec,
    read_frame,
    write_frame,
)
from repro.server.server import parse_address
from repro.workloads.types import Query

__all__ = ["RemoteClient", "connect_remote"]

#: Default per-call socket timeout (finite so a dead server surfaces as
#: an error, generous so legitimate scans are never cut off).
CALL_TIMEOUT_S = 120.0

#: Async submit()s run on this many client-side threads.
SUBMIT_WORKERS = 8


def connect_remote(
    address: str,
    *,
    codec: str = "json",
    timeout_s: float = CALL_TIMEOUT_S,
) -> "RemoteClient":
    """Open a remote deployment: ``connect_remote("tcp://host:port")``."""
    return RemoteClient(address, codec=codec, timeout_s=timeout_s)


class RemoteClient:
    """A connected remote deployment (usually via ``connect("tcp://...")``)."""

    def __init__(
        self,
        address: str,
        *,
        codec: str = "json",
        timeout_s: float = CALL_TIMEOUT_S,
    ) -> None:
        self.address = address
        self._host, self._port = parse_address(address)
        self._timeout_s = timeout_s
        self._codec = WireCodec("json")
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self._request_id = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Hello exchange: verify the protocol version, learn the server's
        # topology, and negotiate the payload codec for the pool.
        hello = self._call({"op": "hello", "protocol": protocol.PROTOCOL_VERSION,
                            "codec": codec})
        self.server_info: Dict[str, Any] = {
            k: v for k, v in hello.items() if k not in ("id", "ok")
        }
        negotiated = str(hello.get("codec", "json"))
        if negotiated != self._codec.name:
            # Pooled connections were opened under the old codec; drop
            # them so every future frame speaks the negotiated one.
            with self._lock:
                conns, self._conns = self._conns, []
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass
            self._codec = WireCodec(negotiated)

    # ------------------------------------------------------------------ transport
    def _dial(self) -> socket.socket:
        conn = socket.create_connection(
            (self._host, self._port), timeout=self._timeout_s
        )
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def _next_id(self) -> int:
        with self._lock:
            self._request_id += 1
            return self._request_id

    def _call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply exchange on a pooled connection."""
        if self._closed:
            raise RuntimeError("client is closed")
        payload = dict(payload)
        payload["id"] = self._next_id()
        with self._lock:
            conn = self._conns.pop() if self._conns else None
        if conn is None:
            conn = self._dial()
        try:
            write_frame(conn, payload, self._codec)
            reply = read_frame(conn, self._codec)
        except BaseException:
            try:
                conn.close()
            except OSError:
                pass
            raise
        with self._lock:
            if not self._closed:
                self._conns.append(conn)
                conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if not reply.get("ok"):
            protocol.raise_remote_error(reply.get("error", {}))
        return reply

    # ------------------------------------------------------------------ queries
    def execute(
        self, query: Query, options: Optional[RequestOptions] = None
    ) -> Response:
        """Serve one query remotely; returns the uniform Response envelope."""
        tracer = get_tracer()
        if tracer.enabled:
            # Client edge of a distributed trace: the ids ride the options
            # over the wire and the server continues the same trace.
            if options is None:
                options = RequestOptions()
            if options.trace_id is None:
                options = replace(options, trace_id=TraceContext.new().trace_id)
            with tracer.root(
                "remote.execute",
                trace_id=options.trace_id,
                query=type(query).__name__,
            ) as root:
                if root.span_id:
                    options = replace(options, trace_parent=root.span_id)
                response = self._execute_wire(query, options)
                root.tag(complete=response.complete)
        else:
            response = self._execute_wire(query, options)
        self._maybe_slowlog(response)
        return response

    def _execute_wire(
        self, query: Query, options: Optional[RequestOptions]
    ) -> Response:
        reply = self._call(
            {
                "op": "execute",
                "query": protocol.query_to_wire(query),
                "options": protocol.options_to_wire(options),
            }
        )
        return protocol.response_from_wire(reply["response"])

    def _maybe_slowlog(self, response: Response) -> None:
        slowlog = get_slowlog()
        if not slowlog.enabled:
            return
        spans: Sequence[Any] = ()
        if response.trace_id is not None:
            spans = get_tracer().collector.spans_for(response.trace_id)
        slowlog.maybe_record(
            wall_s=response.wall_s,
            kind=response.kind,
            trace_id=response.trace_id,
            latency_s=response.latency_s,
            complete=response.complete,
            deadline_expired=response.deadline_expired,
            attribution=dict(response.attribution),
            spans=spans,
        )

    def submit(
        self, query: Query, options: Optional[RequestOptions] = None
    ) -> "Future[Response]":
        """Admit one query asynchronously (a client-side worker drives the
        round-trip; the server interleaves it with other connections)."""
        if options is not None and options.paginated:
            raise ValueError("paginated requests must go through execute()")
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=SUBMIT_WORKERS,
                    thread_name_prefix="repro-remote-submit",
                )
            pool = self._pool
        return pool.submit(self.execute, query, options)

    def execute_many(
        self, queries: Sequence[Query], options: Optional[RequestOptions] = None
    ) -> List[Response]:
        """Serve a whole workload, preserving input order."""
        futures = [self.submit(q, options) for q in queries]
        return [f.result() for f in futures]

    def pages(
        self, query: Query, page_size: int, options: Optional[RequestOptions] = None
    ) -> Iterator[Response]:
        """Iterate every page of a paginated result (convenience)."""
        options = options if options is not None else RequestOptions()
        response = self.execute(
            query, replace(options, page_size=page_size, cursor=None)
        )
        yield response
        while response.cursor is not None:
            response = self.execute(
                query, replace(options, page_size=None, cursor=response.cursor)
            )
            yield response

    # ------------------------------------------------------------------ mutations
    def insert(self, file: FileMetadata) -> Response:
        return self._mutate("insert", file)

    def delete(self, file: FileMetadata) -> Response:
        return self._mutate("delete", file)

    def modify(self, file: FileMetadata) -> Response:
        return self._mutate("modify", file)

    def _mutate(self, kind: str, file: FileMetadata) -> Response:
        payload: Dict[str, Any] = {
            "op": "mutate",
            "kind": kind,
            "file": file_to_dict(file),
        }
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.root("remote.mutate", kind=kind) as root:
                payload["trace"] = context_to_wire(
                    TraceContext(root.trace_id, root.span_id)
                )
                reply = self._call(payload)
                response = protocol.response_from_wire(reply["response"])
        else:
            reply = self._call(payload)
            response = protocol.response_from_wire(reply["response"])
        self._maybe_slowlog(response)
        return response

    # ------------------------------------------------------------------ introspection
    @property
    def topology(self) -> str:
        return str(self.server_info.get("topology", "unknown"))

    def epoch(self) -> str:
        """The remote deployment's current version-clock snapshot."""
        return str(self._call({"op": "epoch"})["epoch"])

    def stats(self) -> Dict[str, Any]:
        """The remote deployment's uniform statistics document."""
        return dict(self._call({"op": "stats"})["stats"])

    def reshard(self, force: bool = False) -> Dict[str, Any]:
        """One reshard-controller pass on the remote deployment (the
        ``reshard`` op); returns the outcome document.  Advisory like the
        local call: unsupported topologies report ``performed=False``."""
        return dict(self._call({"op": "reshard", "force": bool(force)})["outcome"])

    def ping(self) -> bool:
        self._call({"op": "ping"})
        return True

    def metrics_text(self) -> str:
        """The deployment's merged Prometheus text exposition (the
        ``metrics`` op): server-process instruments plus every shard
        worker's registry under a ``shard`` label."""
        return str(self._call({"op": "metrics"})["metrics"])

    def export_spans(self) -> List[Dict[str, Any]]:
        """The server-side span collector's current contents (the
        ``trace_export`` op), as plain span dicts."""
        spans = self._call({"op": "trace_export"}).get("spans", [])
        return [dict(s) for s in spans if isinstance(s, dict)]

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release every connection (idempotent; safe with open cursors —
        pagination state lives server-side and expires there)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns, self._conns = self._conns, []
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        for conn in conns:
            try:
                write_frame(conn, {"id": 0, "op": "bye"}, self._codec)
            except (OSError, ProtocolError):
                pass
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "RemoteClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"RemoteClient({self.address!r}, {self.topology}, {state})"
