"""Query types: point, range and top-k.

These are the three query interfaces SmartStore exposes (§1.2).  They are
deliberately plain, immutable value objects: the query engines of the core
system, of the baselines and of the evaluation harness all consume the same
objects, which is what makes the latency/recall comparisons apples-to-apples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

__all__ = ["PointQuery", "RangeQuery", "TopKQuery", "Query"]


@dataclass(frozen=True)
class PointQuery:
    """A filename-based point query: "does file ``filename`` exist, and where?"

    Filename indexing remains the dominant query type in file systems; in
    SmartStore it routes over the hierarchical Bloom filters (§3.3.3).
    """

    filename: str

    def __post_init__(self) -> None:
        if not self.filename:
            raise ValueError("filename must be non-empty")


@dataclass(frozen=True)
class RangeQuery:
    """A multi-dimensional range query.

    Finds every file whose value of ``attributes[i]`` lies within
    ``[lower[i], upper[i]]`` for all constrained attributes — e.g. *"files
    revised between 10:00 and 16:20 with 30-50 MB read and 5-8 MB written"*
    is the 3-attribute example of §5.1.
    """

    attributes: Tuple[str, ...]
    lower: Tuple[float, ...]
    upper: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a range query must constrain at least one attribute")
        if not (len(self.attributes) == len(self.lower) == len(self.upper)):
            raise ValueError(
                "attributes, lower and upper must have the same length, got "
                f"{len(self.attributes)}, {len(self.lower)}, {len(self.upper)}"
            )
        # Non-finite bounds are rejected outright: NaN compares False with
        # everything, so a NaN bound would sail through the lo > hi check
        # below yet silently defeat (or vacuously satisfy) MBR pruning and
        # per-record comparisons downstream; ±inf windows are equally
        # meaningless in the index space.
        if any(not math.isfinite(v) for v in (*self.lower, *self.upper)):
            raise ValueError("range bounds must be finite (NaN/inf are not allowed)")
        if any(lo > hi for lo, hi in zip(self.lower, self.upper)):
            raise ValueError("every lower bound must not exceed its upper bound")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("attributes must not repeat")

    @property
    def dimensionality(self) -> int:
        return len(self.attributes)


@dataclass(frozen=True)
class TopKQuery:
    """A top-k nearest-neighbour query.

    Finds the ``k`` files whose constrained attribute values are closest to
    ``values`` — e.g. *"10 files closest to: size ≈ 300 MB, last visited
    around Jan 1 2008"* from §1.1.  Distances are measured in the
    deployment's normalised attribute space so that dimensions with very
    different units are comparable.
    """

    attributes: Tuple[str, ...]
    values: Tuple[float, ...]
    k: int

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("a top-k query must constrain at least one attribute")
        if len(self.attributes) != len(self.values):
            raise ValueError(
                f"attributes and values must have the same length, got "
                f"{len(self.attributes)} and {len(self.values)}"
            )
        if any(not math.isfinite(v) for v in self.values):
            raise ValueError("top-k query values must be finite (NaN/inf are not allowed)")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("attributes must not repeat")

    @property
    def dimensionality(self) -> int:
        return len(self.attributes)


Query = Union[PointQuery, RangeQuery, TopKQuery]
