"""Synthesising point / range / top-k query workloads.

Complex queries are generated statistically within the multi-dimensional
attribute space (§5.1).  Three query-point distributions are supported:

* ``"uniform"`` — coordinates drawn uniformly from each attribute's global
  range; such queries often land in sparse regions and straddle semantic
  groups, which is why the paper observes the lowest recall for them;
* ``"gauss"`` — coordinates drawn from a Gaussian centred inside the data;
* ``"zipf"`` — the query is anchored on an existing file chosen by
  Zipf-skewed popularity, so the queried region coincides with the dense,
  highly correlated parts of the attribute space (highest recall in the
  paper).

Query windows and centres are synthesised in the deployment's *index space*
(wide-range attributes log-transformed), which is how a user naturally
phrases them — "files between 30 MB and 50 MB" is a narrow multiplicative
window, not a slice of the 0-to-max-file-size axis.  The emitted query
objects are always expressed in raw (natural) units.

Point-query workloads sample existing filenames by popularity, optionally
mixing in a fraction of never-created filenames to exercise the negative
path of the Bloom-filter routing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.traces.distributions import zipf_popularity
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["QueryWorkloadGenerator", "DISTRIBUTIONS"]

#: Query-point distributions the generator understands.
DISTRIBUTIONS = ("uniform", "gauss", "zipf")


class QueryWorkloadGenerator:
    """Generates query workloads over a fixed file population.

    Parameters
    ----------
    files:
        The indexed file population queries should target.
    schema:
        Attribute schema in use.
    seed:
        Seed for reproducible workloads.
    """

    def __init__(
        self,
        files: Sequence[FileMetadata],
        schema: AttributeSchema = DEFAULT_SCHEMA,
        seed: Optional[int] = None,
    ) -> None:
        if not files:
            raise ValueError("the file population must be non-empty")
        self.files = list(files)
        self.schema = schema
        self.rng = np.random.default_rng(seed)
        raw = attribute_matrix(self.files, schema)
        self._index_matrix = log_transform(raw, schema)   # index-space coordinates
        self._lower = self._index_matrix.min(axis=0)
        self._upper = self._index_matrix.max(axis=0)
        self._log_mask = np.array(schema.log_scale_mask(), dtype=bool)
        # Zipf popularity is assigned by access-count rank: the files the
        # trace reports as most accessed receive the most query anchors, so a
        # Zipf workload probes the hot, long-established part of the
        # population (the paper's Figure 10 setting).  Falls back to list
        # order when the schema has no access_count attribute.
        weights = zipf_popularity(len(self.files), exponent=1.0)
        if "access_count" in schema:
            col = schema.index("access_count")
            rank_of_file = np.empty(len(self.files), dtype=np.int64)
            rank_of_file[np.argsort(-raw[:, col], kind="stable")] = np.arange(len(self.files))
            self._popularity = weights[rank_of_file]
        else:
            self._popularity = weights

    # ------------------------------------------------------------------ helpers
    def _attr_indices(self, attributes: Sequence[str]) -> List[int]:
        return [self.schema.index(a) for a in attributes]

    def _from_index_space(self, attributes: Sequence[str], values: np.ndarray) -> np.ndarray:
        """Convert index-space coordinates back to raw (natural) units."""
        idx = self._attr_indices(attributes)
        out = np.array(values, dtype=np.float64, copy=True)
        mask = self._log_mask[idx]
        out[..., mask] = np.expm1(out[..., mask])
        return np.maximum(out, 0.0)

    def _centers(self, attributes: Sequence[str], n: int, distribution: str) -> np.ndarray:
        """Query centre points in index space, shape ``(n, len(attributes))``."""
        if distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {distribution!r}; expected one of {DISTRIBUTIONS}"
            )
        idx = self._attr_indices(attributes)
        lo = self._lower[idx]
        hi = self._upper[idx]
        span = np.where(hi > lo, hi - lo, 1.0)

        if distribution == "uniform":
            return self.rng.uniform(lo, hi, size=(n, len(idx)))
        if distribution == "gauss":
            # Centre the Gaussian on the data itself (mean / std of the
            # indexed population) so Gauss queries, like Zipf ones, probe the
            # densely populated part of the attribute space.
            center = self._index_matrix[:, idx].mean(axis=0)
            std = np.maximum(self._index_matrix[:, idx].std(axis=0), 1e-9 * span)
            samples = self.rng.normal(center, std, size=(n, len(idx)))
            return np.clip(samples, lo, hi)
        # zipf: anchor on popular files, jitter slightly around their attributes
        anchors = self.rng.choice(len(self.files), size=n, p=self._popularity)
        base = self._index_matrix[np.ix_(anchors, idx)]
        jitter = self.rng.normal(0.0, 0.02 * span, size=(n, len(idx)))
        return np.clip(base + jitter, lo, hi)

    # ------------------------------------------------------------------ point queries
    def point_queries(self, n: int, *, existing_fraction: float = 0.9) -> List[PointQuery]:
        """``n`` filename point queries.

        ``existing_fraction`` of them target filenames that exist (sampled
        with Zipf popularity); the remainder target synthetic filenames that
        were never created, exercising the Bloom filters' negative path.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if not 0.0 <= existing_fraction <= 1.0:
            raise ValueError("existing_fraction must be in [0, 1]")
        n_hit = int(round(n * existing_fraction))
        queries: List[PointQuery] = []
        if n_hit:
            picks = self.rng.choice(len(self.files), size=n_hit, p=self._popularity)
            queries.extend(PointQuery(self.files[i].filename) for i in picks)
        for _ in range(n - n_hit):
            queries.append(PointQuery(f"nonexistent-{self.rng.integers(1 << 30)}.miss"))
        self.rng.shuffle(queries)  # type: ignore[arg-type]
        return queries

    # ------------------------------------------------------------------ range queries
    def range_queries(
        self,
        n: int,
        attributes: Optional[Sequence[str]] = None,
        *,
        distribution: str = "zipf",
        selectivity: float = 0.05,
        ensure_nonempty: bool = False,
    ) -> List[RangeQuery]:
        """``n`` multi-dimensional range queries.

        ``selectivity`` controls the query window width per dimension as a
        fraction of the attribute's index-space range (0.05 → 5 %-wide
        windows, which for log-scaled attributes translates to a
        multiplicative band around the centre value).

        ``ensure_nonempty`` resamples window centres until at least one
        indexed file falls inside the window — the recall studies use this
        so that every query has a non-trivial ideal result set.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if not 0.0 < selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")
        attributes = tuple(attributes) if attributes else self._default_attributes()
        idx = self._attr_indices(attributes)
        lo = self._lower[idx]
        hi = self._upper[idx]
        span = np.where(hi > lo, hi - lo, 1.0)
        half_width = 0.5 * selectivity * span
        data = self._index_matrix[:, idx]

        queries: List[RangeQuery] = []
        attempts = 0
        while len(queries) < n and attempts < 50 * max(n, 1):
            needed = n - len(queries)
            centers = self._centers(attributes, needed, distribution)
            attempts += needed
            for c in centers:
                lower_idx = np.maximum(c - half_width, lo)
                upper_idx = np.minimum(c + half_width, hi)
                if ensure_nonempty:
                    inside = np.all((data >= lower_idx) & (data <= upper_idx), axis=1)
                    if not inside.any():
                        continue
                lower_raw = self._from_index_space(attributes, lower_idx)
                upper_raw = self._from_index_space(attributes, upper_idx)
                queries.append(
                    RangeQuery(
                        attributes=attributes,
                        lower=tuple(float(x) for x in lower_raw),
                        upper=tuple(float(x) for x in upper_raw),
                    )
                )
                if len(queries) >= n:
                    break
        return queries

    # ------------------------------------------------------------------ top-k queries
    def topk_queries(
        self,
        n: int,
        attributes: Optional[Sequence[str]] = None,
        *,
        k: int = 8,
        distribution: str = "zipf",
    ) -> List[TopKQuery]:
        """``n`` top-k queries (the paper's default is k = 8)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        attributes = tuple(attributes) if attributes else self._default_attributes()
        centers = self._centers(attributes, n, distribution)
        raw_centers = self._from_index_space(attributes, centers)
        return [
            TopKQuery(
                attributes=attributes,
                values=tuple(float(x) for x in c),
                k=k,
            )
            for c in raw_centers
        ]

    def mixed_complex_queries(
        self,
        n_range: int,
        n_topk: int,
        attributes: Optional[Sequence[str]] = None,
        *,
        k: int = 8,
        distribution: str = "zipf",
        selectivity: float = 0.05,
    ) -> List[object]:
        """A shuffled mix of range and top-k queries (Figure 12's workload)."""
        queries: List[object] = []
        queries.extend(
            self.range_queries(n_range, attributes, distribution=distribution, selectivity=selectivity)
        )
        queries.extend(self.topk_queries(n_topk, attributes, k=k, distribution=distribution))
        self.rng.shuffle(queries)  # type: ignore[arg-type]
        return queries

    # ------------------------------------------------------------------ mutation workloads
    def mutation_stream(
        self,
        n_inserts: int,
        n_deletes: int,
        n_modifies: int = 0,
        *,
        shuffle: bool = True,
        prefix: str = "/ingest",
    ) -> List[Tuple[str, FileMetadata]]:
        """An online-mutation workload: ``(kind, file)`` pairs for the ingest path.

        The stream is *bounds-preserving* by construction, which is what the
        write-path equivalence checks need (a store that drains this stream
        answers byte-identically to a fresh build over the mutated
        population):

        * **inserts** are synthesised by jittering popular files in index
          space, clipped strictly inside the population's per-attribute
          bounds (they can never extend any deployment-wide normalisation
          bound);
        * **deletes** and **modifies** target existing files that are not
          the min or max of any attribute (removing them cannot shrink a
          bound), sampled without replacement;
        * **modifies** keep the file's path/id and jitter its attribute
          values within bounds.
        """
        if min(n_inserts, n_deletes, n_modifies) < 0:
            raise ValueError("mutation counts must be non-negative")
        names = self.schema.names
        lo, hi = self._lower, self._upper
        span = np.where(hi > lo, hi - lo, 1.0)
        inner_lo = lo + 0.001 * span
        inner_hi = hi - 0.001 * span

        def jitter_of(row: np.ndarray) -> np.ndarray:
            sample = row + self.rng.normal(0.0, 0.02 * span)
            return np.clip(sample, inner_lo, inner_hi)

        stream: List[Tuple[str, FileMetadata]] = []
        anchors = self.rng.choice(
            len(self.files), size=n_inserts, p=self._popularity
        )
        stamp = int(self.rng.integers(1 << 30))
        for i, anchor in enumerate(anchors):
            values = self._from_index_space(names, jitter_of(self._index_matrix[anchor]))
            stream.append(
                (
                    "insert",
                    FileMetadata(
                        path=f"{prefix}/new-{stamp}-{i:06d}.dat",
                        attributes={n: float(v) for n, v in zip(names, values)},
                    ),
                )
            )

        extreme_rows = set(np.argmin(self._index_matrix, axis=0).tolist())
        extreme_rows |= set(np.argmax(self._index_matrix, axis=0).tolist())
        victims = [i for i in range(len(self.files)) if i not in extreme_rows]
        needed = n_deletes + n_modifies
        if needed > len(victims):
            raise ValueError(
                f"population has only {len(victims)} non-extreme files; "
                f"cannot target {needed}"
            )
        picked = self.rng.choice(len(victims), size=needed, replace=False)
        targets = [self.files[victims[i]] for i in picked]
        for f in targets[:n_deletes]:
            stream.append(("delete", f))
        for f in targets[n_deletes:]:
            # Re-derive the file's index-space row to jitter around it.
            values = self._from_index_space(
                names,
                jitter_of(
                    log_transform(
                        attribute_matrix([f], self.schema), self.schema
                    )[0]
                ),
            )
            stream.append(
                (
                    "modify",
                    FileMetadata(
                        path=f.path,
                        attributes={n: float(v) for n, v in zip(names, values)},
                        file_id=f.file_id,
                    ),
                )
            )
        if shuffle:
            self.rng.shuffle(stream)  # type: ignore[arg-type]
        return stream

    # ------------------------------------------------------------------ defaults
    def _default_attributes(self) -> Tuple[str, ...]:
        """The 3-attribute combination the paper's examples use.

        §5.1's example range query constrains last-revision time plus read
        and write volume; we default to the same trio when present in the
        schema, otherwise the first three schema attributes.
        """
        preferred = ("mtime", "read_bytes", "write_bytes")
        if all(p in self.schema for p in preferred):
            return preferred
        return self.schema.names[: min(3, len(self.schema))]
