"""Query workload synthesis.

No public file-system traces contain complex-query requests, so the paper
synthesises them (§5.1): range queries are random hyper-rectangles and top-k
queries are random points in the multi-dimensional attribute space, with the
query coordinates following Uniform, Gauss or Zipf distributions.  This
subpackage defines the three query types SmartStore serves (point, range,
top-k), a generator that synthesises workloads of each kind over a given
file population, and a trace replayer that turns a trace's own I/O records
into metadata access streams (for the caching/prefetching experiments and
the workload-shape measurements of §1.1).
"""

from repro.workloads.types import PointQuery, RangeQuery, TopKQuery, Query
from repro.workloads.generator import QueryWorkloadGenerator, DISTRIBUTIONS
from repro.workloads.replay import ReplayStatistics, TraceReplayer

__all__ = [
    "PointQuery",
    "RangeQuery",
    "TopKQuery",
    "Query",
    "QueryWorkloadGenerator",
    "DISTRIBUTIONS",
    "TraceReplayer",
    "ReplayStatistics",
]
