"""Trace replay: turning an I/O record stream into metadata access workloads.

The synthetic workloads in :mod:`repro.workloads.generator` probe the
attribute space directly; replay goes the other way and drives experiments
from the trace's own request stream, the way the paper's motivating studies
do (Filecules' popularity skew, FARMER's inter-file access correlation).
It resolves every record back to its file-metadata record, exposes the
access stream (globally or per user/process), and measures the two
workload properties the introduction leans on:

* popularity skew — what fraction of requests the most popular files absorb;
* access correlation — how often consecutive accesses hit semantically
  correlated files (same project / directory), which is the signal the
  semantic prefetching application converts into cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.metadata.file_metadata import FileMetadata
from repro.traces.base import Trace, TraceRecord

__all__ = ["ReplayStatistics", "TraceReplayer"]

#: Operations that constitute an access to an existing file's metadata.
ACCESS_OPS = ("read", "write", "stat", "open")


@dataclass(frozen=True)
class ReplayStatistics:
    """Workload-shape statistics of a replayed trace.

    Attributes
    ----------
    total_accesses:
        Records that resolved to a known file and count as accesses.
    unique_files:
        Distinct files touched.
    top_file_share:
        Fraction of all accesses absorbed by the most popular 10 % of the
        touched files (the Filecules-style skew measure).
    consecutive_correlation:
        Fraction of consecutive access pairs that touch correlated files —
        same project when the metadata carries a ``project`` annotation,
        same directory otherwise.  §1.1 quotes inter-file access
        correlations of up to 80 % on real traces.
    operation_mix:
        Fraction of accesses per operation type.
    """

    total_accesses: int
    unique_files: int
    top_file_share: float
    consecutive_correlation: float
    operation_mix: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "total_accesses": self.total_accesses,
            "unique_files": self.unique_files,
            "top_file_share": self.top_file_share,
            "consecutive_correlation": self.consecutive_correlation,
            "operation_mix": dict(self.operation_mix),
        }


def _correlated(a: FileMetadata, b: FileMetadata) -> bool:
    """Two files count as correlated when they share a project or directory."""
    pa, pb = a.extra.get("project"), b.extra.get("project")
    if pa is not None and pb is not None:
        return pa == pb
    return a.directory == b.directory


class TraceReplayer:
    """Resolve a trace's records against its file population and replay them.

    Parameters
    ----------
    trace:
        The trace to replay.  Its explicit file population is used when
        present; otherwise the population is derived via
        :meth:`~repro.traces.base.Trace.file_metadata`.
    include_ops:
        Which operations count as metadata accesses (defaults to
        read/write/stat/open; creates and deletes mutate the population and
        are not replayed as accesses).
    """

    def __init__(self, trace: Trace, *, include_ops: Sequence[str] = ACCESS_OPS) -> None:
        self.trace = trace
        self.include_ops = tuple(include_ops)
        files = trace.files if trace.files else trace.file_metadata()
        self._by_path: Dict[str, FileMetadata] = {f.path: f for f in files}
        self.files = list(files)

    # ------------------------------------------------------------------ streams
    def resolve(self, record: TraceRecord) -> Optional[FileMetadata]:
        """The file a record touches, or ``None`` for unknown paths / other ops."""
        if record.op not in self.include_ops:
            return None
        return self._by_path.get(record.path)

    def access_stream(self) -> List[FileMetadata]:
        """Every resolved access, in timestamp order."""
        stream: List[FileMetadata] = []
        for record in self.trace.records:
            file = self.resolve(record)
            if file is not None:
                stream.append(file)
        return stream

    def access_pairs(self) -> List[Tuple[TraceRecord, FileMetadata]]:
        """Resolved accesses together with their originating records."""
        pairs: List[Tuple[TraceRecord, FileMetadata]] = []
        for record in self.trace.records:
            file = self.resolve(record)
            if file is not None:
                pairs.append((record, file))
        return pairs

    def per_user_streams(self) -> Dict[int, List[FileMetadata]]:
        """Access streams split by user id (each in timestamp order)."""
        streams: Dict[int, List[FileMetadata]] = {}
        for record, file in self.access_pairs():
            streams.setdefault(record.user_id, []).append(file)
        return streams

    def per_process_streams(self) -> Dict[int, List[FileMetadata]]:
        """Access streams split by process id (each in timestamp order)."""
        streams: Dict[int, List[FileMetadata]] = {}
        for record, file in self.access_pairs():
            streams.setdefault(record.process_id, []).append(file)
        return streams

    # ------------------------------------------------------------------ workload shape
    def popular_files(self, n: int = 10) -> List[Tuple[FileMetadata, int]]:
        """The ``n`` most frequently accessed files with their access counts."""
        counts: Dict[int, int] = {}
        by_id: Dict[int, FileMetadata] = {}
        for file in self.access_stream():
            counts[file.file_id] = counts.get(file.file_id, 0) + 1
            by_id[file.file_id] = file
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]
        return [(by_id[fid], count) for fid, count in ranked]

    def statistics(self, *, top_fraction: float = 0.10) -> ReplayStatistics:
        """Popularity-skew and access-correlation statistics of the stream."""
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        stream = self.access_stream()
        if not stream:
            return ReplayStatistics(0, 0, 0.0, 0.0, {})

        counts: Dict[int, int] = {}
        ops: Dict[str, int] = {}
        for record, file in self.access_pairs():
            counts[file.file_id] = counts.get(file.file_id, 0) + 1
            ops[record.op] = ops.get(record.op, 0) + 1

        total = len(stream)
        ranked = sorted(counts.values(), reverse=True)
        top_n = max(1, int(round(len(ranked) * top_fraction)))
        top_share = sum(ranked[:top_n]) / total

        correlated_pairs = sum(
            1 for a, b in zip(stream, stream[1:]) if _correlated(a, b)
        )
        correlation = correlated_pairs / (total - 1) if total > 1 else 0.0

        return ReplayStatistics(
            total_accesses=total,
            unique_files=len(counts),
            top_file_share=top_share,
            consecutive_correlation=correlation,
            operation_mix={op: c / total for op, c in sorted(ops.items())},
        )

    def __repr__(self) -> str:
        return (
            f"TraceReplayer(trace={self.trace.name!r}, records={len(self.trace.records)}, "
            f"files={len(self.files)})"
        )
