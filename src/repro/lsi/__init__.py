"""Latent Semantic Indexing (LSI) machinery.

SmartStore measures the semantic correlation between files (and between
storage/index units) with Latent Semantic Indexing built on a truncated
Singular Value Decomposition (§3.1.1).  This subpackage provides:

* :func:`~repro.lsi.svd.truncated_svd` — a thin, shape-checked wrapper over
  ``scipy.linalg.svd(..., full_matrices=False)`` / ``scipy.sparse.linalg.svds``
  that always returns a rank-``p`` factorisation.
* :class:`~repro.lsi.model.LSIModel` — fit an attribute–item matrix, project
  items into the ``p``-dimensional semantic subspace, fold in query vectors
  (``q_hat = Sigma^-1 U^T q``) and compute pairwise semantic correlations.
* :func:`~repro.lsi.kmeans.kmeans` — the K-means alternative the paper
  discusses (and argues against) in §3.1.1, kept as an ablation baseline.
"""

from repro.lsi.svd import truncated_svd
from repro.lsi.model import LSIModel
from repro.lsi.incremental import DriftReport, IncrementalLSI
from repro.lsi.kmeans import kmeans, KMeansResult, balanced_kmeans

__all__ = [
    "truncated_svd",
    "LSIModel",
    "IncrementalLSI",
    "DriftReport",
    "kmeans",
    "balanced_kmeans",
    "KMeansResult",
]
