"""Incremental LSI: folding new items into an existing semantic subspace.

SmartStore's grouping is computed from an SVD over the build-time
population, but the population does not stand still: §3.2 inserts and
deletes storage units, §4.4 accumulates per-group metadata changes in
version chains, and reconfiguration applies them in bulk.  Re-running the
SVD on every insertion would defeat the purpose of the cheap versioned
updates, so in between reconfigurations new items are *folded in*: they are
projected onto the existing subspace (``Sigma_p^{-1} U_p^T q``, the standard
LSI fold-in) and the decomposition itself is left untouched.

Fold-in is exact for items that lie inside the retained subspace and
degrades gracefully for items that do not; the part of an item's attribute
vector that the subspace cannot represent (its *residual*) is a direct
measure of how stale the decomposition has become.  :class:`IncrementalLSI`
tracks that residual and the fraction of folded-in items so callers — the
reconfiguration path in practice — can decide when a full refit is due.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.lsi.model import LSIModel

__all__ = ["DriftReport", "IncrementalLSI"]


@dataclass(frozen=True)
class DriftReport:
    """How far the folded-in items have drifted from the fitted subspace.

    Attributes
    ----------
    fitted_items / folded_items:
        Items covered by the last SVD refit vs. items added by fold-in since.
    folded_fraction:
        ``folded_items / (fitted_items + folded_items)``.
    mean_residual / max_residual:
        Mean and maximum relative residual of the folded-in items: the
        fraction of each item's attribute-space norm that the retained
        subspace cannot represent (0 = perfectly captured, 1 = orthogonal to
        the subspace).  Both are 0 when nothing has been folded in.
    """

    fitted_items: int
    folded_items: int
    folded_fraction: float
    mean_residual: float
    max_residual: float

    def exceeds(self, *, max_folded_fraction: float = 0.25, max_mean_residual: float = 0.35) -> bool:
        """True when either drift signal crosses its threshold."""
        return (
            self.folded_fraction > max_folded_fraction
            or self.mean_residual > max_mean_residual
        )


class IncrementalLSI:
    """An LSI model that admits new items by fold-in and refits on demand.

    Parameters
    ----------
    item_matrix:
        The initial ``(n_items, D)`` row-per-item attribute matrix.
    rank:
        Number of singular triplets to retain (clamped like
        :meth:`LSIModel.fit`).
    """

    def __init__(self, item_matrix: np.ndarray, rank: int) -> None:
        matrix = np.asarray(item_matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError(f"item matrix must be a non-empty 2-D array, got {matrix.shape}")
        self.rank = rank
        self._rows: List[np.ndarray] = [row.copy() for row in matrix]
        self._fitted_count = len(self._rows)
        self._folded_residuals: List[float] = []
        self.model = LSIModel.fit_items(matrix, rank)
        self._semantic = self.model.item_vectors().copy()

    # ------------------------------------------------------------------ accessors
    @property
    def n_items(self) -> int:
        """Items currently represented (fitted plus folded-in)."""
        return len(self._rows)

    @property
    def n_attributes(self) -> int:
        return self.model.n_attributes

    def item_vectors(self) -> np.ndarray:
        """Semantic coordinates of every item, shape ``(n_items, p)``."""
        return self._semantic

    def attribute_matrix(self) -> np.ndarray:
        """The accumulated raw ``(n_items, D)`` attribute matrix."""
        return np.vstack(self._rows)

    # ------------------------------------------------------------------ incremental updates
    def _residual_ratio(self, row: np.ndarray) -> float:
        """Relative attribute-space residual of one item w.r.t. the subspace."""
        norm = np.linalg.norm(row)
        if norm == 0.0:
            return 0.0
        projected = self.model.u @ (self.model.u.T @ row)
        return float(np.linalg.norm(row - projected) / norm)

    def add_items(self, item_matrix: np.ndarray) -> np.ndarray:
        """Fold new items into the subspace without refitting.

        Returns the semantic coordinates of the added items, shape
        ``(m, p)``.
        """
        new = np.asarray(item_matrix, dtype=np.float64)
        if new.ndim == 1:
            new = new[None, :]
        if new.shape[1] != self.n_attributes:
            raise ValueError(
                f"new items have {new.shape[1]} attributes, the model was fitted on "
                f"{self.n_attributes}"
            )
        # Fold with the *unscaled* projection ``U_p^T q``: for an item that was
        # part of the fitted matrix this reproduces its ``V_p Sigma_p`` row
        # exactly, so folded items live in the same coordinate system as
        # :meth:`item_vectors`.
        folded = np.atleast_2d(self.model.fold_in(new, scale=False))
        for row in new:
            self._rows.append(row.copy())
            self._folded_residuals.append(self._residual_ratio(row))
        self._semantic = np.vstack([self._semantic, folded])
        return folded

    def remove_item(self, index: int) -> None:
        """Drop one item (by current row index) from the model's view.

        The decomposition is not recomputed — exactly like a deletion
        recorded in a version chain, the item simply stops being returned;
        the next :meth:`refresh` makes the removal exact.
        """
        if not 0 <= index < len(self._rows):
            raise IndexError(f"item index {index} out of range (n_items={len(self._rows)})")
        del self._rows[index]
        self._semantic = np.delete(self._semantic, index, axis=0)
        folded_start = self._fitted_count
        if index >= folded_start:
            del self._folded_residuals[index - folded_start]
        else:
            self._fitted_count -= 1

    def update_item(self, index: int, new_row: np.ndarray) -> np.ndarray:
        """Replace one item's attributes and re-fold its semantic vector."""
        new_row = np.asarray(new_row, dtype=np.float64).ravel()
        if new_row.shape[0] != self.n_attributes:
            raise ValueError(
                f"updated item has {new_row.shape[0]} attributes, expected {self.n_attributes}"
            )
        if not 0 <= index < len(self._rows):
            raise IndexError(f"item index {index} out of range (n_items={len(self._rows)})")
        self._rows[index] = new_row.copy()
        folded = self.model.fold_in(new_row, scale=False)
        self._semantic[index] = folded
        if index >= self._fitted_count:
            self._folded_residuals[index - self._fitted_count] = self._residual_ratio(new_row)
        return folded

    # ------------------------------------------------------------------ drift & refresh
    def drift(self) -> DriftReport:
        """Quantify how stale the decomposition is."""
        folded = len(self._folded_residuals)
        total = len(self._rows)
        return DriftReport(
            fitted_items=self._fitted_count,
            folded_items=folded,
            folded_fraction=folded / total if total else 0.0,
            mean_residual=float(np.mean(self._folded_residuals)) if folded else 0.0,
            max_residual=float(np.max(self._folded_residuals)) if folded else 0.0,
        )

    def needs_refresh(
        self, *, max_folded_fraction: float = 0.25, max_mean_residual: float = 0.35
    ) -> bool:
        """Policy hook: should the next reconfiguration refit the SVD?"""
        return self.drift().exceeds(
            max_folded_fraction=max_folded_fraction, max_mean_residual=max_mean_residual
        )

    def refresh(self, rank: Optional[int] = None) -> LSIModel:
        """Refit the SVD over every accumulated item and reset drift tracking."""
        if rank is not None:
            self.rank = rank
        matrix = self.attribute_matrix()
        self.model = LSIModel.fit_items(matrix, self.rank)
        self._semantic = self.model.item_vectors().copy()
        self._fitted_count = len(self._rows)
        self._folded_residuals = []
        return self.model

    # ------------------------------------------------------------------ similarity passthrough
    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two semantic vectors (delegates to the model)."""
        return self.model.similarity(a, b)

    def fold_in(self, vectors: np.ndarray, *, scale: bool = True) -> np.ndarray:
        """Project attribute-space vectors with the current decomposition."""
        return self.model.fold_in(vectors, scale=scale)

    def __repr__(self) -> str:
        drift = self.drift()
        return (
            f"IncrementalLSI(items={self.n_items}, rank={self.model.rank}, "
            f"folded={drift.folded_items}, mean_residual={drift.mean_residual:.3f})"
        )
