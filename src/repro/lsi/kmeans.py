"""K-means clustering: the grouping alternative discussed in §3.1.1.

The paper argues for LSI over K-means (sensitivity to initialisation and to
the choice of ``K``) but the comparison only makes sense if K-means exists
as an ablation baseline, so a small, fully vectorised implementation lives
here.  A *balanced* variant is also provided because the semantic grouping
statement requires "group sizes are approximately equal", and the balanced
assignment is what the file→storage-unit partitioner builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["KMeansResult", "kmeans", "balanced_kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Result of a K-means run.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster index per point.
    centroids:
        ``(k, d)`` final cluster centroids.
    inertia:
        Total within-cluster sum of squared distances — exactly the
        quantitative semantic-correlation measure of §1.1.
    iterations:
        Number of Lloyd iterations executed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]


def _init_centroids(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids according to distance."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing centroid.
            centroids[i:] = points[int(rng.integers(n))]
            break
        probs = closest_sq / total
        chosen = int(rng.choice(n, p=probs))
        centroids[i] = points[chosen]
        dist_sq = np.sum((points - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


def _pairwise_sq_dist(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """``(n, k)`` squared Euclidean distances, computed without Python loops."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; broadcasting keeps memory modest.
    p_sq = np.sum(points**2, axis=1)[:, None]
    c_sq = np.sum(centroids**2, axis=1)[None, :]
    cross = points @ centroids.T
    d = p_sq - 2.0 * cross + c_sq
    np.maximum(d, 0.0, out=d)
    return d


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: Optional[int] = None,
) -> KMeansResult:
    """Lloyd's K-means with k-means++ initialisation.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix.
    k:
        Number of clusters, ``1 <= k <= n``.
    max_iter, tol:
        Iteration cap and relative-inertia convergence tolerance.
    seed:
        Seed for reproducible initialisation.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")

    rng = np.random.default_rng(seed)
    centroids = _init_centroids(points, k, rng)
    prev_inertia = np.inf
    labels = np.zeros(n, dtype=np.intp)
    iterations = 0

    for iterations in range(1, max_iter + 1):
        dists = _pairwise_sq_dist(points, centroids)
        labels = np.argmin(dists, axis=1)
        inertia = float(dists[np.arange(n), labels].sum())

        # Recompute centroids; re-seed any emptied cluster on the farthest point.
        for c in range(k):
            members = labels == c
            if members.any():
                centroids[c] = points[members].mean(axis=0)
            else:
                farthest = int(np.argmax(dists[np.arange(n), labels]))
                centroids[c] = points[farthest]

        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            prev_inertia = inertia
            break
        prev_inertia = inertia

    final_d = _pairwise_sq_dist(points, centroids)
    labels = np.argmin(final_d, axis=1)
    inertia = float(final_d[np.arange(n), labels].sum())
    return KMeansResult(labels=labels, centroids=centroids, inertia=inertia, iterations=iterations)


def balanced_kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    slack: float = 1.2,
    seed: Optional[int] = None,
) -> KMeansResult:
    """K-means followed by a balancing pass that equalises cluster sizes.

    The semantic grouping statement (§3.1.1) asks for groups of
    *approximately* equal size — storage units have comparable capacity.
    After a standard K-means run, points are re-assigned greedily (most
    confident assignments first) with a per-cluster capacity of
    ``ceil(slack * n / k)``; the slack keeps clusters roughly balanced
    without forcing semantically unrelated points into a cluster purely to
    hit an exact quota.
    """
    points = np.asarray(points, dtype=np.float64)
    if slack < 1.0:
        raise ValueError("slack must be >= 1.0")
    base = kmeans(points, k, max_iter=max_iter, seed=seed)
    n = points.shape[0]
    capacity = max(1, int(np.ceil(slack * n / k)))

    dists = _pairwise_sq_dist(points, base.centroids)
    # Confidence = gap between best and second-best centroid; assign the most
    # confident points first so only genuinely ambiguous points overflow.
    sorted_d = np.sort(dists, axis=1)
    confidence = sorted_d[:, 1] - sorted_d[:, 0] if k > 1 else sorted_d[:, 0]
    order = np.argsort(-confidence)

    counts = np.zeros(k, dtype=np.intp)
    labels = np.empty(n, dtype=np.intp)
    for idx in order:
        for candidate in np.argsort(dists[idx]):
            if counts[candidate] < capacity:
                labels[idx] = candidate
                counts[candidate] += 1
                break

    centroids = np.empty_like(base.centroids)
    for c in range(k):
        members = labels == c
        centroids[c] = points[members].mean(axis=0) if members.any() else base.centroids[c]
    final_d = _pairwise_sq_dist(points, centroids)
    inertia = float(final_d[np.arange(n), labels].sum())
    return KMeansResult(labels=labels, centroids=centroids, inertia=inertia, iterations=base.iterations)
