"""The LSI model: projection, query fold-in and semantic correlation.

Following §3.1.1 of the paper, the attribute–item matrix ``A`` (``t``
attributes × ``n`` items) is decomposed as ``A = U Sigma V^T`` and
approximated by keeping the ``p`` largest singular triplets.  Each item
(file, storage unit or index unit) is represented by a row of
``V_p Sigma_p`` — its coordinates in the semantic subspace — and a query
vector ``q`` in attribute space is *folded in* as ``q_hat = Sigma_p^{-1}
U_p^T q``.  The semantic correlation between two items is the cosine of the
angle between their semantic vectors (an inner product after unit
normalisation), which is the similarity measure the grouping and routing
components threshold against the admission constants ``epsilon_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.lsi.svd import truncated_svd

__all__ = ["LSIModel"]


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` with each row scaled to unit L2 norm (zero rows kept)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe


@dataclass
class LSIModel:
    """A fitted Latent Semantic Indexing model.

    Use :meth:`fit` to build a model from an attribute–item matrix, then
    :meth:`item_vectors` / :meth:`fold_in` / :meth:`similarity` /
    :meth:`correlation_matrix` for the downstream grouping and routing
    computations.

    Attributes
    ----------
    rank:
        Number of retained singular triplets ``p``.
    u, singular_values, vt:
        The truncated factors ``U_p`` (``t × p``), ``sigma_p`` (``p``) and
        ``V_p^T`` (``p × n``).
    """

    rank: int
    u: np.ndarray
    singular_values: np.ndarray
    vt: np.ndarray
    _item_semantic: np.ndarray = field(repr=False, default=None)
    _item_unit: np.ndarray = field(repr=False, default=None)

    # ------------------------------------------------------------------ fitting
    @classmethod
    def fit(cls, matrix: np.ndarray, rank: int) -> "LSIModel":
        """Fit an LSI model on the ``(t, n)`` attribute–item matrix.

        ``rank`` is clamped to ``min(t, n)``; a rank of 0 or less is an
        error.  Rows are attributes and columns are items, matching the
        paper's ``A in R^{t x n}`` convention.
        """
        u, s, vt = truncated_svd(matrix, rank)
        model = cls(rank=len(s), u=u, singular_values=s, vt=vt)
        # Semantic coordinates of the indexed items: rows of V_p * Sigma_p.
        model._item_semantic = (vt.T * s[None, :]).astype(np.float64)
        model._item_unit = _unit_rows(model._item_semantic)
        return model

    @classmethod
    def fit_items(cls, item_matrix: np.ndarray, rank: int) -> "LSIModel":
        """Convenience constructor for an ``(n_items, D)`` row-per-item matrix.

        Most call sites in this repository hold matrices with one row per
        file/unit (the natural numpy layout); this transposes into the
        paper's attribute-per-row convention before fitting.
        """
        item_matrix = np.asarray(item_matrix, dtype=np.float64)
        if item_matrix.ndim != 2:
            raise ValueError(f"item matrix must be 2-D, got shape {item_matrix.shape}")
        return cls.fit(item_matrix.T, rank)

    # ------------------------------------------------------------------ accessors
    @property
    def n_items(self) -> int:
        """Number of items (columns of ``A``) the model was fitted on."""
        return self.vt.shape[1]

    @property
    def n_attributes(self) -> int:
        """Number of attributes (rows of ``A``) the model was fitted on."""
        return self.u.shape[0]

    def item_vectors(self) -> np.ndarray:
        """Semantic coordinates of the fitted items, shape ``(n_items, p)``."""
        return self._item_semantic

    # ------------------------------------------------------------------ fold-in
    def fold_in(self, vectors: np.ndarray, *, scale: bool = True) -> np.ndarray:
        """Project attribute-space vectors into the semantic subspace.

        Parameters
        ----------
        vectors:
            Either a single attribute vector of length ``t`` or an
            ``(m, t)`` batch.
        scale:
            When true (default) the projection is ``Sigma_p^{-1} U_p^T q``,
            the scaled fold-in the paper quotes; when false the plain
            ``U_p^T q`` projection is returned.

        Returns
        -------
        ``(m, p)`` array of semantic coordinates (``(p,)`` for a single
        input vector).
        """
        q = np.asarray(vectors, dtype=np.float64)
        single = q.ndim == 1
        if single:
            q = q[None, :]
        if q.shape[1] != self.n_attributes:
            raise ValueError(
                f"query dimensionality {q.shape[1]} does not match the "
                f"model's attribute count {self.n_attributes}"
            )
        projected = q @ self.u  # (m, p)
        if scale:
            inv = np.where(self.singular_values > 0, 1.0 / self.singular_values, 0.0)
            projected = projected * inv[None, :]
        return projected[0] if single else projected

    # ------------------------------------------------------------------ similarity
    def similarity(self, a: np.ndarray, b: np.ndarray) -> float:
        """Cosine similarity between two semantic vectors in ``[-1, 1]``."""
        a = np.asarray(a, dtype=np.float64).ravel()
        b = np.asarray(b, dtype=np.float64).ravel()
        na = np.linalg.norm(a)
        nb = np.linalg.norm(b)
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    def similarities_to_items(self, query_vector: np.ndarray) -> np.ndarray:
        """Cosine similarity of one attribute-space query to every fitted item."""
        q_sem = self.fold_in(query_vector)
        q_norm = np.linalg.norm(q_sem)
        if q_norm == 0.0:
            return np.zeros(self.n_items)
        return (self._item_unit @ (q_sem / q_norm)).astype(np.float64)

    def correlation_matrix(self, item_vectors: Optional[np.ndarray] = None) -> np.ndarray:
        """Pairwise semantic correlation (cosine) matrix.

        Without arguments the correlations between the fitted items are
        returned (shape ``(n_items, n_items)``).  When ``item_vectors`` is
        given it must be an ``(m, p)`` array of semantic coordinates (e.g.
        group centroids) and the ``(m, m)`` correlation matrix of those is
        returned instead.
        """
        if item_vectors is None:
            unit = self._item_unit
        else:
            unit = _unit_rows(np.asarray(item_vectors, dtype=np.float64))
        corr = unit @ unit.T
        # Numerical noise can push values marginally outside [-1, 1].
        np.clip(corr, -1.0, 1.0, out=corr)
        return corr

    # ------------------------------------------------------------------ quality
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total spectral energy carried by each retained triplet."""
        total = np.sum(self.singular_values**2)
        if total == 0:
            return np.zeros_like(self.singular_values)
        return (self.singular_values**2) / total

    def reconstruct(self) -> np.ndarray:
        """The rank-``p`` approximation ``A_p = U_p Sigma_p V_p^T``."""
        return (self.u * self.singular_values[None, :]) @ self.vt
