"""Truncated SVD used by the LSI model.

The full SVD of an ``(t, n)`` attribute–item matrix costs roughly ``O(t n
min(t, n))`` and — as the scientific-Python optimisation guidance stresses —
is almost always the hot spot of an LSI pipeline.  We therefore always
request the *economy* decomposition (``full_matrices=False``) and, for large
sparse inputs, fall back to the ARPACK-based ``scipy.sparse.linalg.svds``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

__all__ = ["truncated_svd"]


def truncated_svd(
    matrix: np.ndarray,
    rank: int,
    *,
    use_sparse: bool | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-``p`` SVD ``A ~= U_p diag(s_p) V_p^T``.

    Parameters
    ----------
    matrix:
        The ``(t, n)`` attribute–item matrix ``A`` (attributes are rows and
        items — files or storage units — are columns, matching the paper's
        formulation).
    rank:
        Number of singular triplets ``p`` to keep, ``1 <= p <= min(t, n)``.
        Values larger than the matrix rank are clamped.
    use_sparse:
        Force the sparse (ARPACK) code path; by default it is chosen
        automatically for scipy sparse inputs or very large dense matrices
        where only a few singular values are wanted.

    Returns
    -------
    (U_p, s_p, Vt_p):
        ``U_p`` is ``(t, p)``, ``s_p`` is ``(p,)`` sorted in *descending*
        order, ``Vt_p`` is ``(p, n)``.
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")

    is_sparse = scipy.sparse.issparse(matrix)
    if not is_sparse:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    t, n = matrix.shape
    if t == 0 or n == 0:
        raise ValueError(f"matrix must be non-empty, got shape {matrix.shape}")

    max_rank = min(t, n)
    rank = min(rank, max_rank)

    if use_sparse is None:
        # ARPACK needs rank < min(t, n); it only pays off when we keep a
        # small fraction of the spectrum of a large matrix.
        use_sparse = is_sparse or (max_rank > 512 and rank <= max_rank // 4)
    if use_sparse and rank >= max_rank:
        use_sparse = False
        if is_sparse:
            matrix = matrix.toarray()

    if use_sparse:
        u, s, vt = scipy.sparse.linalg.svds(matrix, k=rank)
        # svds returns singular values in ascending order.
        order = np.argsort(s)[::-1]
        return u[:, order], s[order], vt[order, :]

    if is_sparse:
        matrix = matrix.toarray()
    u, s, vt = scipy.linalg.svd(matrix, full_matrices=False)
    return u[:, :rank], s[:rank], vt[:rank, :]
