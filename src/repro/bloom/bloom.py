"""MD5-based Bloom filter.

The construction follows the prototype described in §5.1: each key is hashed
with MD5, the 128-bit signature is split into four 32-bit words, and the
``k`` probe positions are derived from those words by double hashing
(``h_i = w0 + i * w1 + i^2 * w2 + w3``), a standard technique that preserves
Bloom-filter false-positive behaviour while requiring a single cryptographic
hash per key.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List

import numpy as np

__all__ = ["BloomFilter", "DEFAULT_BITS", "DEFAULT_HASHES"]

#: Prototype parameters from §5.1.
DEFAULT_BITS = 1024
DEFAULT_HASHES = 7


def _md5_words(key: str) -> tuple[int, int, int, int]:
    """Split the MD5 digest of ``key`` into four 32-bit words (little endian)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return (
        int.from_bytes(digest[0:4], "little"),
        int.from_bytes(digest[4:8], "little"),
        int.from_bytes(digest[8:12], "little"),
        int.from_bytes(digest[12:16], "little"),
    )


class BloomFilter:
    """A fixed-size Bloom filter over string keys.

    Parameters
    ----------
    num_bits:
        Filter size ``m`` in bits (1024 in the paper's prototype).
    num_hashes:
        Number of probe positions ``k`` per key (7 in the prototype).
    """

    __slots__ = ("num_bits", "num_hashes", "bits", "count")

    def __init__(self, num_bits: int = DEFAULT_BITS, num_hashes: int = DEFAULT_HASHES) -> None:
        if num_bits < 8:
            raise ValueError(f"num_bits must be >= 8, got {num_bits}")
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self.bits = np.zeros(self.num_bits, dtype=bool)
        self.count = 0  # number of keys added (including duplicates)

    # ------------------------------------------------------------------ hashing
    def _positions(self, key: str) -> Iterator[int]:
        w0, w1, w2, w3 = _md5_words(key)
        m = self.num_bits
        for i in range(self.num_hashes):
            yield (w0 + i * w1 + (i * i) * w2 + w3) % m

    # ------------------------------------------------------------------ updates
    def add(self, key: str) -> None:
        """Insert ``key`` into the filter."""
        for pos in self._positions(key):
            self.bits[pos] = True
        self.count += 1

    def add_many(self, keys: Iterable[str]) -> None:
        """Insert every key of an iterable."""
        for key in keys:
            self.add(key)

    # ------------------------------------------------------------------ queries
    def __contains__(self, key: str) -> bool:
        return all(self.bits[pos] for pos in self._positions(key))

    def contains(self, key: str) -> bool:
        """Membership test; false positives are possible, false negatives are not
        (for keys actually added to *this* filter)."""
        return key in self

    # ------------------------------------------------------------------ composition
    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise OR of two filters with identical parameters.

        This is how an index unit's filter is derived from its children
        (Figure 4): a key present in any child is present in the union.
        """
        self._check_compatible(other)
        merged = BloomFilter(self.num_bits, self.num_hashes)
        np.logical_or(self.bits, other.bits, out=merged.bits)
        merged.count = self.count + other.count
        return merged

    def union_inplace(self, other: "BloomFilter") -> None:
        """In-place union, used when rebuilding an index unit's filter."""
        self._check_compatible(other)
        np.logical_or(self.bits, other.bits, out=self.bits)
        self.count += other.count

    @classmethod
    def union_of(cls, filters: Iterable["BloomFilter"]) -> "BloomFilter":
        """Union of an arbitrary number of compatible filters."""
        filters = list(filters)
        if not filters:
            raise ValueError("cannot union zero Bloom filters")
        merged = cls(filters[0].num_bits, filters[0].num_hashes)
        for f in filters:
            merged.union_inplace(f)
        return merged

    def copy(self) -> "BloomFilter":
        clone = BloomFilter(self.num_bits, self.num_hashes)
        clone.bits = self.bits.copy()
        clone.count = self.count
        return clone

    def clear(self) -> None:
        """Remove every key (reset all bits)."""
        self.bits[:] = False
        self.count = 0

    def _check_compatible(self, other: "BloomFilter") -> None:
        if self.num_bits != other.num_bits or self.num_hashes != other.num_hashes:
            raise ValueError(
                "cannot combine Bloom filters with different parameters: "
                f"({self.num_bits}, {self.num_hashes}) vs ({other.num_bits}, {other.num_hashes})"
            )

    # ------------------------------------------------------------------ analytics
    def fill_ratio(self) -> float:
        """Fraction of bits currently set."""
        return float(self.bits.mean())

    def false_positive_probability(self) -> float:
        """Estimated false-positive probability given the current fill ratio.

        For a filter with fill ratio ``rho`` and ``k`` probes the chance a
        never-inserted key hits only set bits is ``rho ** k``.
        """
        return float(self.fill_ratio() ** self.num_hashes)

    def size_bytes(self) -> int:
        """Storage footprint of the bit array in bytes (for space accounting)."""
        return (self.num_bits + 7) // 8

    def __repr__(self) -> str:
        return (
            f"BloomFilter(bits={self.num_bits}, k={self.num_hashes}, "
            f"keys={self.count}, fill={self.fill_ratio():.3f})"
        )
