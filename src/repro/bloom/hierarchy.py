"""Hierarchical Bloom-filter index (Figure 4).

Each leaf (storage unit) owns a Bloom filter over its local filenames; each
internal node (index unit) owns the union of its children's filters.  A
filename point query starts at the root and descends only along children
whose filter reports the key, so the set of leaves actually probed is small
— this mirrors the group-based hierarchical Bloom-filter array approach the
paper builds on (§2.2, ref. [28]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bloom.bloom import BloomFilter, DEFAULT_BITS, DEFAULT_HASHES

__all__ = ["HierarchicalBloomIndex"]


@dataclass
class _BloomNode:
    """Internal node of the hierarchy: a filter plus child node ids."""

    node_id: int
    bloom: BloomFilter
    children: List[int] = field(default_factory=list)
    is_leaf: bool = True
    leaf_key: Optional[object] = None  # caller-provided identity of the leaf (e.g. unit id)


class HierarchicalBloomIndex:
    """A tree of Bloom filters mirroring the semantic R-tree's shape.

    The index is built bottom-up: leaves are registered with
    :meth:`add_leaf`, internal levels with :meth:`add_internal`, and the
    last internal node added becomes the root.  Point lookups then walk the
    hierarchy and return the leaf keys whose filters (and all ancestors'
    filters) report the queried filename.
    """

    def __init__(self, num_bits: int = DEFAULT_BITS, num_hashes: int = DEFAULT_HASHES) -> None:
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._nodes: Dict[int, _BloomNode] = {}
        self._next_id = 0
        self.root_id: Optional[int] = None

    # ------------------------------------------------------------------ construction
    def add_leaf(self, leaf_key: object, filenames: Iterable[str]) -> int:
        """Register a leaf holding ``filenames``; returns the node id."""
        bloom = BloomFilter(self.num_bits, self.num_hashes)
        bloom.add_many(filenames)
        node_id = self._allocate()
        self._nodes[node_id] = _BloomNode(node_id, bloom, is_leaf=True, leaf_key=leaf_key)
        if self.root_id is None:
            self.root_id = node_id
        return node_id

    def add_internal(self, child_ids: Sequence[int]) -> int:
        """Create an internal node as the union of existing nodes."""
        if not child_ids:
            raise ValueError("an internal Bloom node needs at least one child")
        children = [self._nodes[c] for c in child_ids]
        bloom = BloomFilter.union_of([c.bloom for c in children])
        node_id = self._allocate()
        self._nodes[node_id] = _BloomNode(
            node_id, bloom, children=list(child_ids), is_leaf=False
        )
        self.root_id = node_id
        return node_id

    def _allocate(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    # ------------------------------------------------------------------ updates
    def add_filename(self, leaf_id: int, filename: str) -> None:
        """Add a filename to a leaf and refresh every ancestor union filter.

        Ancestors are found by scanning the (small) node table; hierarchy
        sizes here are bounded by the number of storage units, not files.
        """
        node = self._nodes[leaf_id]
        if not node.is_leaf:
            raise ValueError(f"node {leaf_id} is not a leaf")
        node.bloom.add(filename)
        # Propagate to every ancestor containing this leaf.
        child = leaf_id
        changed = True
        while changed:
            changed = False
            for candidate in self._nodes.values():
                if not candidate.is_leaf and child in candidate.children:
                    candidate.bloom.add(filename)
                    child = candidate.node_id
                    changed = True
                    break

    # ------------------------------------------------------------------ queries
    def lookup(self, filename: str) -> Tuple[List[object], int]:
        """Return ``(leaf_keys, nodes_probed)`` for a filename point query.

        ``leaf_keys`` is the list of leaf identities whose filters report
        the filename (possibly empty); ``nodes_probed`` counts every Bloom
        filter consulted, which the evaluation charges to the cost model.
        """
        if self.root_id is None:
            return [], 0
        hits: List[object] = []
        probed = 0
        stack = [self.root_id]
        while stack:
            node = self._nodes[stack.pop()]
            probed += 1
            if not node.bloom.contains(filename):
                continue
            if node.is_leaf:
                hits.append(node.leaf_key)
            else:
                stack.extend(node.children)
        return hits, probed

    # ------------------------------------------------------------------ analytics
    def leaf_ids(self) -> List[int]:
        return [n.node_id for n in self._nodes.values() if n.is_leaf]

    def node_count(self) -> int:
        return len(self._nodes)

    def size_bytes(self) -> int:
        """Total storage footprint of every filter in the hierarchy."""
        return sum(n.bloom.size_bytes() for n in self._nodes.values())
