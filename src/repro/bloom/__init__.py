"""Bloom filters for filename-based point queries.

SmartStore embeds a Bloom filter in every storage unit (over the filenames
stored locally) and in every index unit (the bitwise union of the children's
filters, Figure 4).  A point query walks down the semantic R-tree along the
branches whose filters report a hit, which bounds the search to a handful of
units instead of the whole system (§3.3.3).

The prototype parameters of §5.1 are reproduced: 1024-bit filters, k = 7
hash probes derived from an MD5 digest.
"""

from repro.bloom.bloom import BloomFilter, DEFAULT_BITS, DEFAULT_HASHES
from repro.bloom.hierarchy import HierarchicalBloomIndex

__all__ = ["BloomFilter", "HierarchicalBloomIndex", "DEFAULT_BITS", "DEFAULT_HASHES"]
