"""Online elasticity: live shard split & rebalance under traffic.

The scaling benchmark can *detect* a degenerate partition (one hot shard
holding most of the corpus or absorbing most of the busy time — see
:class:`~repro.shard.load.PartitionLoad`); this module *repairs* one
without stopping the deployment.  A :class:`ReshardController` watches a
:class:`~repro.shard.router.ShardRouter`'s live load report and, when the
partition is degenerate, splits the hot shard in four phases:

1. **Plan** — recut the hot shard's slice of the principal semantic
   component at a fresh popularity-weighted median (Zipf-by-rank weights,
   the load model the workload generators actually emit), so the two
   halves carry comparable *query load*, not just comparable file counts.
2. **Backfill** — build a brand-new SmartStore deployment over the moving
   half's snapshot, then catch it up like a replica: the controller
   subscribes to the source pipeline's mutation feed
   (:meth:`~repro.ingest.pipeline.IngestPipeline.subscribe_mutations` —
   the same hook replication ships WAL segments through) and applies
   every record touching a moving file via
   :meth:`~repro.ingest.pipeline.IngestPipeline.apply_replicated`
   (idempotent: the applied-seq watermark skips duplicates).  The old
   owner keeps serving reads *and writes* the whole time.
3. **Flip** — take the router's topology write lock (queries and routed
   mutations drain; new ones briefly queue), drain the final backlog,
   recut the partitioner (:meth:`SemanticShardPartitioner.split_slice`
   inserts the new shard id without renumbering existing ones), install
   the new shard, and repoint ownership of every moving file.  Installing
   grows the composite cache-epoch tuple's *arity*, so no pre-split epoch
   can ever compare equal again: every cached result is stale by
   construction, and in-flight paginated reads ride their
   placement-independent cursors (fingerprint + offset, no shard ids) to
   byte-identical pages.
4. **Handoff** — stage deletes for the moved files on the old shard
   (still under the write lock), so the populations are disjoint the
   instant traffic resumes.  Summaries stay conservative: the old shard's
   box/filter never shrink, which can only cost a wasted probe, never a
   wrong answer.

Splitting grows capacity, but the degenerate CLI-default corpus needs the
opposite repair: the *same* shard count behind *better* cuts.  A cut that
lands inside the Zipf-hot head of the principal component makes every
piece of the hot neighbourhood cost nearly a full scan on every shard
that overlaps it — measured on the seed-42 corpus, no sequence of splits
beats ~1.1x while a fresh balanced build reaches ~2x.  So the
controller's primary repair is :meth:`ReshardController.rebalance`:

1. **Recut** — refit the partitioner on the live corpus
   (:meth:`SemanticShardPartitioner.refit`): fresh popularity-weighted
   quantile cuts for the current shard count, balanced fallback on.
2. **Migrate** — under the topology write lock, every file whose fresh
   slice disagrees with its current owner moves as a WAL-logged
   delete+insert pair, so per-shard mutation histories stay replayable
   and the union population never changes (fingerprint equivalence is
   structural, not coincidental).
3. **Repack** — each store is rebuilt over its live population with the
   same config and corpus-wide index bounds.  Migration alone leaves
   recipient stores with index groups laid out for their *old*
   population (measured: the migrated topology runs ~25% hotter than a
   fresh build of identical placement); repacking restores fresh-build
   locality.  Re-registering the rebuilt stores grows the composite
   cache-epoch tuple's arity, so every pre-rebalance cached page is
   stale by construction — the same flush-by-arity argument the split
   path relies on.

:meth:`ReshardController.run_once` tries the rebalance first and falls
back to a split only when the fresh quantiles already agree with the
current placement (the corpus genuinely needs more shards, not better
cuts).

Scope: resharding requires in-process, unreplicated shards using the
fitted ``slice`` partitioner strategy (``supports_split``).  Replicated
and process-mode topologies report ``performed=False`` with a reason
instead of raising — elasticity is advisory, never a crash.

Durability: when the source shard is durable the new shard gets its own
``shard-<id>.wal`` next to it, and every backfilled record is re-logged
there under the source's sequence numbers.  The new WAL starts at the
split (the snapshot base is not re-logged), so crash recovery of a
split-off shard needs a checkpoint first — exactly the replica-resync
contract, documented in ``docs/INVARIANTS.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.smartstore import SmartStore
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import WALRecord, WriteAheadLog
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.obs import get_registry, get_tracer
from repro.shard.load import PartitionLoad
from repro.storage import SegmentStore
from repro.shard.partitioner import (
    POPULARITY_ATTRIBUTE,
    SemanticShardPartitioner,
)
from repro.shard.router import (
    SUMMARY_BLOOM_BITS,
    SUMMARY_BLOOM_HASHES,
    ShardRouter,
    ShardSummary,
)

__all__ = [
    "ReshardPolicy",
    "ReshardOutcome",
    "ReshardController",
    "FRESH_PLACEMENT",
]


@dataclass(frozen=True)
class ReshardPolicy:
    """When the controller is allowed to split.

    ``max_shards`` bounds topology growth (every split adds one shard);
    ``min_split_population`` refuses to split a shard too small for two
    viable halves; ``min_busy_seconds`` requires enough measured traffic
    for the busy-share half of the degeneracy verdict to mean something —
    below it, only the population-share half of
    :attr:`~repro.shard.load.PartitionLoad.degenerate` can trigger.
    ``cooldown_evaluations`` skips the degeneracy verdict for that many
    passes after a performed reshard: the action resets the busy
    accounting, so the window right after it holds too thin a sample to
    judge the *new* placement — acting on it is flapping, not repair.
    """

    max_shards: int = 16
    min_split_population: int = 8
    min_busy_seconds: float = 0.0
    cooldown_evaluations: int = 1


#: The rebalance no-op reason run_once() treats as "cuts can't help,
#: consider growing capacity instead".
FRESH_PLACEMENT = "placement already matches the fresh quantile cuts"


@dataclass
class ReshardOutcome:
    """What one controller pass decided and did."""

    performed: bool
    reason: str
    action: str = "none"
    source_shard: Optional[int] = None
    new_shard: Optional[int] = None
    moved: int = 0
    catch_up: int = 0
    handoff_deletes: int = 0
    repacked: int = 0
    load: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "performed": self.performed,
            "reason": self.reason,
            "action": self.action,
            "source_shard": self.source_shard,
            "new_shard": self.new_shard,
            "moved": self.moved,
            "catch_up": self.catch_up,
            "handoff_deletes": self.handoff_deletes,
            "repacked": self.repacked,
            "load": dict(self.load),
        }


class _Backlog:
    """Mutation records shipped while the backfill is in flight.

    The listener appends from writer threads (inside the source
    pipeline's mutation lock, so records arrive in apply order); the
    controller drains batches from its own thread.  A tiny lock decouples
    the two — the listener must never block on backfill progress.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[WALRecord] = []

    def append(self, record: WALRecord) -> None:
        with self._lock:
            self._records.append(record)

    def drain(self) -> List[WALRecord]:
        with self._lock:
            drained, self._records = self._records, []
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class ReshardController:
    """Detect degenerate partitions on a live router and repair them.

    One controller per router; :meth:`run_once` is the whole loop body
    (evaluate, then rebalance — or split, when fresh cuts can't help —
    if warranted), :meth:`start` runs it on a background thread.  All
    reshard actions are serialised by an internal lock, so a manual
    :meth:`split`/:meth:`rebalance` and the background loop can never
    interleave.
    """

    def __init__(
        self, router: ShardRouter, policy: Optional[ReshardPolicy] = None
    ) -> None:
        self.router = router
        self.policy = policy if policy is not None else ReshardPolicy()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.evaluations = 0
        self.splits = 0
        self.rebalances = 0
        self.skipped = 0
        self._cooldown = 0
        self.last_outcome: Optional[ReshardOutcome] = None

    # ------------------------------------------------------------------ policy
    def _supported(self) -> Optional[str]:
        """None when the router can be resharded, else the reason it can't."""
        router = self.router
        part = router.partitioner
        if not isinstance(part, SemanticShardPartitioner) or not part.supports_split:
            return "partitioner does not support live slice splits"
        if router.replicated:
            return "replicated shards cannot be split live yet"
        if not all(isinstance(s, SmartStore) for s in router.shards):
            return "only in-process shard backends can be split live"
        return None

    def evaluate(self) -> Tuple[PartitionLoad, Optional[str]]:
        """Current load plus the reason not to reshard (None = act now)."""
        self.evaluations += 1
        load = self.router.load_report()
        unsupported = self._supported()
        if unsupported is not None:
            return load, unsupported
        if self._cooldown > 0:
            self._cooldown -= 1
            return load, "cooling down after a recent reshard"
        if sum(load.busy_seconds) < self.policy.min_busy_seconds:
            if not (load.populations and load.population_share >= load.population_cap):
                return load, "not enough measured traffic to judge balance"
        if not load.degenerate:
            return load, "partition is balanced"
        return load, None

    def run_once(self, *, force: bool = False) -> ReshardOutcome:
        """One controller pass: evaluate, repair if warranted.

        The repair is a :meth:`rebalance` (recut every slice at fresh
        popularity-weighted quantiles, migrate, repack); a split of the
        hot shard is the fallback when the fresh quantiles already match
        the current placement — then the corpus needs more shards, not
        different cuts.  ``force=True`` skips the degeneracy verdict
        (support and safety checks still apply) — the knob the bench and
        the ``reshard`` wire op use to exercise a reshard on demand.
        """
        with self._lock:
            load, reason = self.evaluate()
            if reason is not None and not (force and self._forceable(reason)):
                self.skipped += 1
                outcome = ReshardOutcome(
                    performed=False, reason=reason, load=load.as_dict()
                )
                self.last_outcome = outcome
                return outcome
            outcome = self._rebalance_locked(load)
            if not outcome.performed and outcome.reason == FRESH_PLACEMENT:
                outcome = self._grow_locked(load, outcome)
            self.last_outcome = outcome
            return outcome

    def _grow_locked(
        self, load: PartitionLoad, fallback: ReshardOutcome
    ) -> ReshardOutcome:
        """Split the hot shard when a rebalance had nothing to move
        (controller lock held).  Returns ``fallback`` annotated with the
        refusal when policy forbids growing."""
        if load.shards >= self.policy.max_shards:
            fallback.reason += (
                f"; already at max_shards={self.policy.max_shards}"
            )
            return fallback
        hot = load.hottest_shard()
        if hot is None:
            fallback.reason += "; no load measured to pick a split target"
            return fallback
        if load.populations[hot] < self.policy.min_split_population:
            fallback.reason += (
                f"; hot shard {hot} holds only {load.populations[hot]} files "
                f"(< min_split_population={self.policy.min_split_population})"
            )
            return fallback
        return self._split_locked(hot, load)

    @staticmethod
    def _forceable(reason: str) -> bool:
        """Which evaluate() refusals ``force=True`` may override: verdicts
        about *whether the partition needs it*, never about whether a
        split is possible or safe."""
        return (
            reason in ("partition is balanced",)
            or reason.startswith("not enough measured traffic")
            or reason.startswith("cooling down")
        )

    def split(self, shard_id: int) -> ReshardOutcome:
        """Split one specific shard now (support/size checks still apply)."""
        with self._lock:
            unsupported = self._supported()
            if unsupported is not None:
                self.skipped += 1
                outcome = ReshardOutcome(
                    performed=False, reason=unsupported, action="split"
                )
                self.last_outcome = outcome
                return outcome
            load = self.router.load_report()
            if shard_id < 0 or shard_id >= load.shards:
                outcome = ReshardOutcome(
                    performed=False,
                    reason=f"no shard {shard_id} (topology has {load.shards})",
                    action="split",
                    load=load.as_dict(),
                )
                self.last_outcome = outcome
                return outcome
            outcome = self._split_locked(shard_id, load)
            self.last_outcome = outcome
            return outcome

    def rebalance(self) -> ReshardOutcome:
        """Recut every slice at fresh quantiles now (support checks still
        apply; the degeneracy verdict is not consulted)."""
        with self._lock:
            unsupported = self._supported()
            if unsupported is not None:
                self.skipped += 1
                outcome = ReshardOutcome(
                    performed=False, reason=unsupported, action="rebalance"
                )
                self.last_outcome = outcome
                return outcome
            load = self.router.load_report()
            outcome = self._rebalance_locked(load)
            self.last_outcome = outcome
            return outcome

    # ------------------------------------------------------------------ rebalance protocol
    def _rebalance_locked(self, load: PartitionLoad) -> ReshardOutcome:
        """The recut/migrate/repack protocol (controller lock held).

        Two exclusive (topology write lock) sections with a serving
        window between them: **migrate** stages the WAL-logged
        delete+insert pairs, swaps the recut partitioner and refreshes
        every summary, then releases the lock — traffic serves the
        (correct, just slower) overlay-heavy placement; then
        **drain+repack** folds the staged moves into the stores and swaps
        each for a fresh build over its drained population.  The drain
        must sit inside the exclusive section: compaction restructures
        storage units engine *reads* do not lock (the
        :class:`~repro.ingest.compactor.Compactor` contract), so draining
        while readers hold only the topology read side races their group
        scans.  A split can overlap serving during its long phase because
        the new store is invisible until the flip — a rebalance mutates
        stores traffic is actively reading.
        """
        router = self.router
        part = router.partitioner
        assert isinstance(part, SemanticShardPartitioner)
        tracer = get_tracer()

        with tracer.span("reshard.rebalance", shards=router.num_shards):
            with router._topology.write_locked():
                pipes: List[IngestPipeline] = []
                for pipe in router.pipelines:
                    assert isinstance(pipe, IngestPipeline)
                    pipes.append(pipe)
                live: List[FileMetadata] = [
                    f for pipe in pipes for f in pipe.materialized_files()
                ]
                if len(live) < router.num_shards:
                    return ReshardOutcome(
                        performed=False,
                        reason="corpus smaller than the shard count",
                        action="rebalance",
                        load=load.as_dict(),
                    )
                fresh = part.refit(live)
                labels = fresh.labels
                moves: List[Tuple[FileMetadata, int, int]] = []
                for file, label in zip(live, labels):
                    target = int(label)
                    source = router._owner.get(file.file_id)
                    if source is not None and source != target:
                        moves.append((file, source, target))
                if not moves:
                    return ReshardOutcome(
                        performed=False,
                        reason=FRESH_PLACEMENT,
                        action="rebalance",
                        load=load.as_dict(),
                    )
                # Migrate: WAL-logged delete+insert pairs keep every
                # shard's mutation history replayable and the union
                # population unchanged at every instant.
                with tracer.span("reshard.migrate", moves=len(moves)):
                    for file, source, target in moves:
                        pipes[source].delete(file)
                        pipes[target].insert(file)
                        router._owner[file.file_id] = target
                router.partitioner = fresh
                # Summaries must cover the new placement before traffic
                # resumes: a recipient shard missing its new files from
                # the bloom/box would be wrongly pruned — a wrong answer,
                # not a wasted probe.
                for shard_id in range(len(router.shards)):
                    self._refresh_summary_locked(shard_id)

            with tracer.span("reshard.repack", shards=router.num_shards):
                with router._topology.write_locked():
                    # Fold the staged moves in first: repacking from a
                    # half-staged population bakes the migration overlay
                    # into a grouping measurably worse than a fresh build.
                    router.compactor.drain()
                    for shard_id in range(len(router.shards)):
                        self._repack_shard_locked(shard_id)

            # Freeze the repacked placement into fresh segments — outside
            # the exclusive section (no segment fsync under the topology
            # lock), one pipeline lock at a time.
            for pipe in list(router.pipelines):
                if (
                    isinstance(pipe, IngestPipeline)
                    and pipe.storage is not None
                ):
                    pipe.checkpoint()

            # Pre-rebalance busy accounting measured the old placement.
            router.reset_busy()
            self.rebalances += 1
            self._cooldown = self.policy.cooldown_evaluations
            registry = get_registry()
            registry.counter(
                "reshard_rebalances_total",
                "Live rebalances (recut + migrate + repack) performed",
            ).inc()
            registry.counter(
                "reshard_files_moved_total",
                "Files moved between shards by live resharding",
            ).inc(float(len(moves)))
            return ReshardOutcome(
                performed=True,
                reason="rebalanced at fresh quantile cuts",
                action="rebalance",
                moved=len(moves),
                repacked=len(router.shards),
                load=load.as_dict(),
            )

    def _repack_shard_locked(self, shard_id: int) -> None:
        """Rebuild one shard's store over its live population (topology
        write lock held).

        Migration leaves stores with index groups laid out for their old
        population, which measures ~25% hotter than a fresh build of the
        identical placement; repacking rebuilds each store with the same
        config and corpus-wide index bounds.  The WAL carries over
        untouched (the move mutations are already logged) and the
        sequence watermarks continue.  Re-registering the rebuilt store
        grows the composite cache-epoch tuple's arity, which is exactly
        the global-flush-by-construction contract a topology change must
        honour.
        """
        router = self.router
        pipe = router.pipelines[shard_id]
        store = router.shards[shard_id]
        assert isinstance(pipe, IngestPipeline)
        assert isinstance(store, SmartStore)
        files = pipe.materialized_files()
        if not files:
            return
        rebuilt = SmartStore.build(
            files,
            store.config,
            router.schema,
            index_bounds=(store.index_lower, store.index_upper),
        )
        if pipe.wal is not None:
            pipe.wal.unsubscribe(pipe._forward_record)
        new_pipe = IngestPipeline(rebuilt, pipe.wal)
        new_pipe.applied_seq = pipe.applied_seq
        new_pipe._next_local_seq = pipe._next_local_seq
        storage = pipe.storage
        if storage is not None:
            # Same segment root follows the rebuilt store; the repack
            # rewrote every group's layout, so every segment is stale.
            # Publishing happens *after* the exclusive section (no
            # segment fsync under the topology lock — INVARIANTS §12).
            new_pipe.attach_storage(storage)
            storage.mark_all_dirty()
        router.shards[shard_id] = rebuilt
        router.pipelines[shard_id] = new_pipe
        router.versioning.attach(rebuilt.versioning)

    def _refresh_summary_locked(self, shard_id: int) -> None:
        """Rebuild one shard's router summary over its live population
        (topology write lock held)."""
        router = self.router
        pipe = router.pipelines[shard_id]
        assert isinstance(pipe, IngestPipeline)
        files = pipe.materialized_files()
        summary = ShardSummary(
            shard_id, bits=SUMMARY_BLOOM_BITS, hashes=SUMMARY_BLOOM_HASHES
        )
        if files:
            rows = log_transform(
                attribute_matrix(files, router.schema), router.schema
            )
            for row, file in zip(rows, files):
                summary.observe_row(row, file.filename)
        router._summaries[shard_id] = summary

    # ------------------------------------------------------------------ split protocol
    def _plan_cut(
        self,
        part: SemanticShardPartitioner,
        members: List[FileMetadata],
        *,
        by_load: bool,
    ) -> Tuple[Optional[float], Optional[str]]:
        """The weighted median of the hot slice's principal component.

        Files at or below the cut stay (the ``side="left"`` tie rule used
        everywhere else); strictly above move.  ``by_load=True`` weights
        members Zipf by ``access_count`` rank — the load distribution the
        workload generators emit — so the two halves split the *modelled
        query load* evenly (the right cut when busy time tripped the
        verdict); ``by_load=False`` weights uniformly, halving the
        *population* (the right cut when the population share tripped it —
        a load-median there would shave a small hot tail off a huge shard
        and converge glacially).  Returns ``(None, reason)`` when no cut
        can separate the slice (all members tie on the component).
        """
        m = len(members)
        if m < 2:
            return None, "hot shard holds fewer than two files"
        values = np.asarray([part.principal_value(f) for f in members])
        popularity = np.asarray(
            [float(f.attributes.get(POPULARITY_ATTRIBUTE, 0.0)) for f in members]
        )
        if by_load and popularity.max() > popularity.min():
            ranks = np.argsort(-popularity, kind="stable")
            weights = np.empty(m)
            weights[ranks] = 1.0 / np.arange(1, m + 1)
        else:
            weights = np.ones(m)
        order = np.argsort(values, kind="stable")
        prefix = np.cumsum(weights[order])
        pos = int(np.searchsorted(prefix, prefix[-1] / 2.0))
        pos = min(max(pos, 0), m - 2)
        cut = float(values[order[pos]])
        # A cut inside a tied run strands the whole run on the staying
        # side; slide to the last position holding this value so at least
        # one member sits strictly above.
        while pos < m - 1 and values[order[pos + 1]] <= cut:
            pos += 1
            cut = float(values[order[pos]])
        if pos >= m - 1:
            return None, (
                "hot slice is indivisible: every member ties on the "
                "principal component"
            )
        return cut, None

    def _split_locked(self, shard_id: int, load: PartitionLoad) -> ReshardOutcome:
        """The four-phase split protocol (controller lock held)."""
        router = self.router
        part = router.partitioner
        assert isinstance(part, SemanticShardPartitioner)
        source_store = router.shards[shard_id]
        source_pipe = router.pipelines[shard_id]
        assert isinstance(source_store, SmartStore)
        assert isinstance(source_pipe, IngestPipeline)
        tracer = get_tracer()

        with tracer.span("reshard.split", shard=shard_id):
            backlog = _Backlog()
            source_pipe.subscribe_mutations(backlog.append)
            try:
                # -------- snapshot (source keeps serving after this block)
                with source_pipe.lock:
                    members = source_pipe.materialized_files()
                    watermark = source_pipe.applied_seq

                # Population imbalance wants a count-median cut; busy-time
                # imbalance wants a load-median cut (see _plan_cut).
                population_hot = (
                    bool(load.populations)
                    and load.population_share >= load.population_cap
                )
                cut, no_cut = self._plan_cut(
                    part, members, by_load=not population_hot
                )
                if cut is None:
                    self.skipped += 1
                    return ReshardOutcome(
                        performed=False,
                        reason=no_cut or "no viable cut",
                        action="split",
                        source_shard=shard_id,
                        load=load.as_dict(),
                    )
                moving = [
                    f for f in members if part.principal_value(f) > cut
                ]
                moving_ids: Set[int] = {f.file_id for f in moving}

                # -------- backfill: build the new deployment, then catch up
                catch_up = 0
                with tracer.span(
                    "reshard.backfill", shard=shard_id, moving=len(moving)
                ):
                    new_store = SmartStore.build(
                        moving,
                        source_store.config,
                        router.schema,
                        index_bounds=(
                            source_store.index_lower,
                            source_store.index_upper,
                        ),
                    )
                    new_wal: Optional[WriteAheadLog] = None
                    if source_pipe.wal is not None:
                        new_wal = WriteAheadLog(
                            source_pipe.wal.path.parent
                            / f"shard-{len(router.shards)}.wal",
                            fsync_every=source_pipe.wal.fsync_every,
                        )
                    new_pipe = IngestPipeline(new_store, new_wal)
                    source_storage = source_pipe.storage
                    if source_storage is not None:
                        # The split-off shard gets its own segment root
                        # beside the source's (shard-<i> siblings under
                        # one storage root), born all-dirty so its first
                        # publish freezes the whole moved population.
                        new_root = (
                            Path(source_storage.root).parent
                            / f"shard-{len(router.shards)}"
                        )
                        new_pipe.attach_storage(
                            SegmentStore(
                                new_root,
                                resident_segments=source_storage.resident_budget,
                            )
                        )
                    # Same numbering adjustment a replica resync performs:
                    # the snapshot covers everything through the watermark,
                    # so apply_replicated()'s idempotence filter starts
                    # there and the new shard continues the source's
                    # sequence numbering.
                    new_pipe.applied_seq = watermark
                    new_pipe._next_local_seq = watermark + 1
                    # Catch up concurrent traffic while the source still
                    # serves: drain-until-quiet, leaving only the final
                    # (write-locked) drain for the flip.
                    while True:
                        records = backlog.drain()
                        if not records:
                            break
                        catch_up += self._apply_backlog(
                            new_pipe, records, moving_ids
                        )

                # -------- flip: exclusive topology transition
                with tracer.span("reshard.flip", shard=shard_id):
                    with router._topology.write_locked():
                        catch_up += self._apply_backlog(
                            new_pipe, backlog.drain(), moving_ids
                        )
                        source_pipe.unsubscribe_mutations(backlog.append)
                        new_id = part.split_slice(shard_id, cut)
                        summary = self._build_summary(router, new_id, new_pipe)
                        router._install_shard_locked(
                            new_store, new_pipe, summary, sorted(moving_ids)
                        )
                        # -------- handoff: disjoint populations before
                        # traffic resumes.  Deletes of files the traffic
                        # already removed would be rejected-unknown noise,
                        # so only files still materialised on the source go.
                        still_there = {
                            f.file_id for f in source_pipe.materialized_files()
                        }
                        handoff = [
                            f for f in members if f.file_id in moving_ids
                            and f.file_id in still_there
                        ]
                        for file in handoff:
                            source_pipe.delete(file)

                # Drain+repack emits segments: both halves of the split
                # publish their new placement — outside the flip's
                # exclusive section (no segment fsync under the topology
                # lock), serialised on each pipeline's own lock.
                if source_pipe.storage is not None:
                    source_pipe.checkpoint()
                if new_pipe.storage is not None:
                    new_pipe.checkpoint()

                # Pre-split busy accounting measured the *old* placement;
                # left in place it would keep nominating the shard that was
                # just split.  Start the next evaluation window fresh.
                router.reset_busy()
                self.splits += 1
                self._cooldown = self.policy.cooldown_evaluations
                registry = get_registry()
                registry.counter(
                    "reshard_splits_total",
                    "Live shard splits performed by the reshard controller",
                ).inc()
                registry.counter(
                    "reshard_files_moved_total",
                    "Files moved to a new shard by live splits",
                ).inc(float(len(moving)))
                return ReshardOutcome(
                    performed=True,
                    reason="split hot shard",
                    action="split",
                    source_shard=shard_id,
                    new_shard=new_id,
                    moved=len(moving),
                    catch_up=catch_up,
                    handoff_deletes=len(handoff),
                    load=load.as_dict(),
                )
            finally:
                # Idempotent: already removed on the success path.
                source_pipe.unsubscribe_mutations(backlog.append)

    @staticmethod
    def _apply_backlog(
        new_pipe: IngestPipeline,
        records: List[WALRecord],
        moving_ids: Set[int],
    ) -> int:
        """Catch the new shard up on records touching moving files.

        Records for files outside the moving set (including files inserted
        *during* the backfill, which the owner map keeps on the source
        shard) are dropped; duplicates are skipped by the applied-seq
        watermark inside ``apply_replicated``.
        """
        applied = 0
        for record in records:
            if record.file is None or record.file.file_id not in moving_ids:
                continue
            if new_pipe.apply_replicated(record) is not None:
                applied += 1
        return applied

    @staticmethod
    def _build_summary(
        router: ShardRouter, new_id: int, new_pipe: IngestPipeline
    ) -> ShardSummary:
        """The new shard's router summary, covering snapshot + catch-up."""
        summary = ShardSummary(
            new_id, bits=SUMMARY_BLOOM_BITS, hashes=SUMMARY_BLOOM_HASHES
        )
        files = new_pipe.materialized_files()
        if files:
            rows = log_transform(
                attribute_matrix(files, router.schema), router.schema
            )
            for row, file in zip(rows, files):
                summary.observe_row(row, file.filename)
        return summary

    # ------------------------------------------------------------------ background loop
    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`run_once` every ``interval_s`` on a daemon thread."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.run_once()

        self._thread = threading.Thread(
            target=loop, name="repro-reshard", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "evaluations": self.evaluations,
            "splits": self.splits,
            "rebalances": self.rebalances,
            "skipped": self.skipped,
            "running": self._thread is not None and self._thread.is_alive(),
        }
        if self.last_outcome is not None:
            d["last_outcome"] = self.last_outcome.as_dict()
        return d

    def __repr__(self) -> str:
        return (
            f"ReshardController(shards={self.router.num_shards}, "
            f"splits={self.splits}, rebalances={self.rebalances}, "
            f"evaluations={self.evaluations})"
        )
