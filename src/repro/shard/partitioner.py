"""Corpus partitioning for horizontal sharding.

A shard partitioner splits one file population into ``N`` sub-corpora, each
of which becomes an independent SmartStore deployment, and afterwards routes
every *new* record to a shard.  Strategies:

* :class:`SemanticShardPartitioner` — the default.  The corpus is projected
  into the LSI semantic subspace (the same §3.1 machinery the in-store
  grouping uses) and split k-way:

  - ``strategy="slice"`` (default) cuts the *principal semantic component*
    into ``N`` contiguous quantile slices, weighted by file popularity
    (``access_count``) when the schema records it.  Slices are disjoint
    intervals of the dominant correlation direction, so shard bounding
    boxes barely overlap — a narrow range window or top-k neighbourhood
    intersects one or two shards — and popularity weighting splits the
    *hot* region across shards, balancing query load rather than raw file
    counts (the quantity that actually limits scatter-gather throughput).
  - ``strategy="kmeans"`` splits with balanced K-means over the full LSI
    subspace: file counts are near-equal and shards are round semantic
    clusters, at the price of overlapping bounding boxes.

* :class:`HashShardPartitioner` — the fallback when no semantic structure
  is wanted (or the corpus is too degenerate to fit LSI): stable modulo
  hashing of the (MD5-derived, process-independent) file id.  Placement is
  uniform but carries no locality, so the router must contact every shard
  for complex queries.

All strategies are deterministic: the same corpus, shard count and seed
always produce the same assignment, and :meth:`shard_for` is a pure
function of the record — the scatter-gather equivalence gates depend on
that.

:func:`corpus_index_bounds` computes the corpus-wide index-space bounds
that every shard must be built with (``SmartStore.build(...,
index_bounds=...)``) so distances and normalisation agree across shards.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lsi.kmeans import balanced_kmeans
from repro.lsi.model import LSIModel
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform

__all__ = [
    "corpus_index_bounds",
    "SemanticShardPartitioner",
    "HashShardPartitioner",
    "ShardPartitioner",
    "make_partitioner",
]

#: Attribute used to weight the slice quantiles (query load concentrates on
#: popular files — the workload generators anchor Zipf traffic on it).
POPULARITY_ATTRIBUTE = "access_count"


def corpus_index_bounds(
    files: Sequence[FileMetadata], schema: AttributeSchema = DEFAULT_SCHEMA
) -> Tuple[np.ndarray, np.ndarray]:
    """Corpus-wide per-attribute bounds of the index space.

    The index space is the log-transformed attribute space (wide-range
    attributes ``log1p``-ed); these are exactly the bounds an unsharded
    ``SmartStore.build`` over the same population would derive, which is
    why injecting them into every shard makes per-shard distances
    comparable with the unsharded baseline.
    """
    matrix = log_transform(attribute_matrix(files, schema), schema)
    return matrix.min(axis=0), matrix.max(axis=0)


class SemanticShardPartitioner:
    """LSI-space k-way split of a corpus into semantically coherent shards.

    Parameters
    ----------
    files:
        The build-time corpus; :attr:`labels` holds its shard assignment.
    num_shards:
        Requested shard count (capped at the corpus size).
    schema, rank, seed:
        Attribute schema, LSI rank and K-means seed — mirror the
        corresponding :class:`~repro.core.smartstore.SmartStoreConfig`
        knobs so a sharded deployment is parameterised consistently.
    strategy:
        ``"slice"`` (popularity-weighted quantile slices of the principal
        LSI component, the default) or ``"kmeans"`` (balanced K-means over
        the full LSI subspace) — see the module docstring for the
        trade-off.
    balance_fallback:
        When True (the default) a slice split whose weighted cuts leave
        one shard with more than ``2/num_shards`` of the corpus is redone
        as population-balanced quantile cuts.  Weighted cuts degrade that
        way when the popularity weights are near-uniform *and* the
        component has long runs of near-identical values (the CLI-default
        seed-42 corpus): every tied record lands on one side of a cut, so
        one shard swallows half the corpus and scatter throughput
        collapses to the single hot shard.  ``False`` preserves the
        legacy behaviour (the ``reshard-bench`` harness uses it to
        reproduce the degenerate build the live reshard must repair).
    """

    kind = "semantic"

    def __init__(
        self,
        files: Sequence[FileMetadata],
        num_shards: int,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        rank: int = 5,
        seed: Optional[int] = None,
        strategy: str = "slice",
        balance_fallback: bool = True,
    ) -> None:
        files = list(files)
        if not files:
            raise ValueError("cannot partition an empty corpus")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in ("slice", "kmeans"):
            raise ValueError(f"unknown strategy {strategy!r}; expected 'slice' or 'kmeans'")
        self.schema = schema
        self.strategy = strategy
        self.balance_fallback = balance_fallback
        self.num_shards = min(num_shards, len(files))
        # Fit knobs, kept so refit() can recut a live corpus consistently.
        self._rank = rank
        self._seed = seed

        matrix = log_transform(attribute_matrix(files, schema), schema)
        self._lower = matrix.min(axis=0)
        self._upper = matrix.max(axis=0)
        span = self._upper - self._lower
        self._span = np.where(span > 0, span, 1.0)
        normalised = (matrix - self._lower) / self._span
        self._center = normalised.mean(axis=0)

        rank = max(1, min(rank, schema.dimension, len(files)))
        self._lsi = LSIModel.fit_items(normalised - self._center, rank)
        sem = self._lsi.item_vectors()
        self._cuts: Optional[np.ndarray] = None
        # Slice-interval index -> shard id.  Identity on a fresh build;
        # split_slice() inserts new shard ids without renumbering existing
        # ones, so routed ownership and summaries survive a live reshard.
        self._slice_shards: Optional[List[int]] = None
        if self.num_shards == 1:
            labels = np.zeros(len(files), dtype=np.intp)
        elif strategy == "slice":
            labels = self._slice_labels(files, sem[:, 0])
        else:
            labels = balanced_kmeans(sem, self.num_shards, seed=seed).labels
        self._labels = np.asarray(labels, dtype=np.intp)
        # Shard centroids route post-build records under the kmeans
        # strategy (slice routing uses the cut values); an empty shard
        # falls back to the global mean so it never attracts anything.
        global_mean = sem.mean(axis=0)
        centroids = []
        for shard in range(self.num_shards):
            members = np.nonzero(self._labels == shard)[0]
            centroids.append(sem[members].mean(axis=0) if members.size else global_mean)
        self._centroids = np.vstack(centroids)

    def _slice_labels(self, files: Sequence[FileMetadata], c1: np.ndarray) -> np.ndarray:
        """Popularity-weighted quantile slices of the principal component.

        Cut values sit at the weighted quantiles of the component, so each
        slice carries roughly the same expected *query load*; records tying
        a cut value exactly always land on the lower slice (``side="left"``
        both here and in :meth:`shard_for`, keeping build assignment and
        post-build routing consistent).
        """
        n = self.num_shards
        m = len(files)
        weights = np.asarray(
            [float(f.attributes.get(POPULARITY_ATTRIBUTE, 1.0)) + 1.0 for f in files]
        )
        order = np.argsort(c1, kind="stable")
        cumulative = np.cumsum(weights[order])
        cumulative = cumulative / cumulative[-1]
        cut_positions = np.searchsorted(cumulative, np.arange(1, n) / n)
        cuts = c1[order[np.minimum(cut_positions, m - 1)]]
        labels = np.searchsorted(cuts, c1, side="left")
        counts = np.bincount(labels, minlength=n)
        skewed = self.balance_fallback and counts.max() * n > 2 * m
        if np.unique(labels).size < n or skewed:
            # Two failure modes of the value-based weighted cuts collapse
            # here.  (1) Degenerate component (long runs of identical
            # values): a cut lands inside a tied run and every tied record
            # falls on one side, leaving a shard empty.  (2) The same tie
            # mechanics silently hand one shard >2/n of the corpus while
            # the linear ``access_count`` weights understate how hard the
            # Zipf-anchored workloads actually hammer the hot region (the
            # seed-42 skew PR 8 diagnosed: 51% of the corpus and 49% of
            # busy time on one shard).  The fallback re-cuts by sorted
            # *position* (splitting tied runs), balancing the Zipf-by-rank
            # load the generators emit, under a hard population cap that
            # keeps every slice strictly under 2/n of the corpus.
            # Post-build routing still uses the (re-derived) cut values; a
            # boundary tie may then route to a neighbouring shard, which
            # is harmless — ownership of build-time records is tracked by
            # the router.
            boundaries = self._balanced_boundaries(files, order)
            chunk = np.searchsorted(boundaries, np.arange(m), side="left")
            labels = np.empty(m, dtype=np.intp)
            labels[order] = chunk
            cuts = c1[order[boundaries]]
        self._cuts = np.asarray(cuts, dtype=np.float64)
        self._slice_shards = list(range(n))
        return labels

    def _balanced_boundaries(self, files: Sequence[FileMetadata], order: np.ndarray) -> np.ndarray:
        """Greedy position boundaries balancing Zipf load under a size cap.

        Each slice extends along the sorted component until it has
        absorbed its 1/n share of the modelled query load — Zipf weight by
        ``access_count`` rank, the distribution the workload generators
        anchor traffic on; uniform when popularity is flat, which reduces
        to population-balanced quantiles — clamped so no slice (including
        the implicit last one) ever holds more than ``1.8/n`` of the
        corpus: comfortably below the 2/n degeneracy threshold the router
        monitors.  Returns the index (into ``order``) of the last member
        of each of the first ``n-1`` slices.
        """
        n = self.num_shards
        m = len(files)
        popularity = np.asarray(
            [float(f.attributes.get(POPULARITY_ATTRIBUTE, 0.0)) for f in files]
        )
        if popularity.max() > popularity.min():
            ranks = np.argsort(-popularity, kind="stable")
            weights = np.empty(m)
            weights[ranks] = 1.0 / np.arange(1, m + 1)
        else:
            weights = np.ones(m)
        prefix = np.cumsum(weights[order])
        total = prefix[-1]
        cap = max(1, int(np.ceil(1.8 * m / n)))
        boundaries = np.empty(n - 1, dtype=np.intp)
        start = 0
        for j in range(n - 1):
            # End position hitting this slice's cumulative load target...
            end = int(np.searchsorted(prefix, total * (j + 1) / n)) + 1
            # ...clamped so this slice keeps >=1 file and <=cap files, every
            # remaining slice keeps >=1 file, and the files left over for
            # the remaining slices still fit under their caps.
            remaining = n - 1 - j
            end = max(end, start + 1, m - remaining * cap)
            end = min(end, start + cap, m - remaining)
            boundaries[j] = end - 1
            start = end
        return boundaries

    @property
    def labels(self) -> np.ndarray:
        """Shard label per build-time corpus file (copy)."""
        return self._labels.copy()

    def assign(self, files: Sequence[FileMetadata]) -> np.ndarray:
        """Shard assignment of the build-time corpus.

        Callers must pass the same corpus the partitioner was fitted on;
        post-build records are routed one at a time via :meth:`shard_for`.
        """
        if len(files) != len(self._labels):
            raise ValueError(
                f"assign() expects the fitted corpus ({len(self._labels)} files), "
                f"got {len(files)}"
            )
        return self.labels

    def fold(self, file: FileMetadata) -> np.ndarray:
        """One record's coordinates in the partitioner's LSI subspace.

        ``scale=False`` gives the plain ``U_p^T q`` projection, which for a
        fitted item reproduces its ``item_vectors`` row exactly — the
        coordinates the cuts and shard centroids live in — so routing is
        geometrically consistent with the build-time split.
        """
        row = log_transform(attribute_matrix([file], self.schema), self.schema)[0]
        normalised = np.clip((row - self._lower) / self._span, 0.0, 1.0)
        return self._lsi.fold_in(normalised - self._center, scale=False)

    def shard_for(self, file: FileMetadata) -> int:
        """The shard a new record belongs to.

        Slice strategy: the slice whose component interval contains the
        record; kmeans strategy: nearest shard centroid.  Deterministic
        either way (ties resolve to the lowest shard id), so replaying the
        same mutation stream always routes identically.
        """
        vector = self.fold(file)
        if self._cuts is not None:
            interval = int(np.searchsorted(self._cuts, vector[0], side="left"))
            if self._slice_shards is not None:
                return self._slice_shards[interval]
            return interval
        distances = np.linalg.norm(self._centroids - vector, axis=1)
        return int(np.argmin(distances))

    # ------------------------------------------------------------------ live reshard
    def refit(self, files: Sequence[FileMetadata]) -> "SemanticShardPartitioner":
        """A fresh partitioner over the *live* corpus with this one's knobs.

        Recuts the principal component at fresh popularity-weighted
        quantiles for the current shard count — the planning step of a
        live rebalance.  The balanced fallback is always on for a refit
        (recutting into the degenerate legacy shape would be pointless),
        and slice intervals map to shard ids in order, matching the
        identity layout the router's shards are stored in.
        """
        return SemanticShardPartitioner(
            files,
            self.num_shards,
            self.schema,
            rank=self._rank,
            seed=self._seed,
            strategy=self.strategy,
            balance_fallback=True,
        )

    @property
    def supports_split(self) -> bool:
        """Whether :meth:`split_slice` can recut this partitioner live
        (slice strategy with fitted cuts; kmeans/hash cannot)."""
        return self._cuts is not None and self._slice_shards is not None

    def principal_value(self, file: FileMetadata) -> float:
        """One record's coordinate on the principal component — the axis
        the slice cuts live on (what a live split recuts against)."""
        return float(self.fold(file)[0])

    def split_slice(self, shard_id: int, cut: float) -> int:
        """Split ``shard_id``'s slice at ``cut``; returns the new shard id.

        The lower sub-interval (component value <= ``cut``, matching the
        ``side="left"`` tie rule everywhere else) keeps ``shard_id``; the
        upper one is assigned the next free shard id.  Existing shard ids
        never renumber — the interval->shard indirection absorbs the
        insertion — so router ownership maps, summaries and busy
        accounting stay valid across the recut.
        """
        if self._cuts is None or self._slice_shards is None:
            raise ValueError(
                "split_slice requires the fitted 'slice' strategy "
                f"(strategy={self.strategy!r}, cuts fitted: {self._cuts is not None})"
            )
        try:
            interval = self._slice_shards.index(shard_id)
        except ValueError:
            raise ValueError(f"shard {shard_id} owns no slice interval") from None
        lower = -np.inf if interval == 0 else float(self._cuts[interval - 1])
        upper = (
            np.inf
            if interval == len(self._cuts)
            else float(self._cuts[interval])
        )
        if not lower < cut < upper:
            raise ValueError(
                f"cut {cut!r} outside shard {shard_id}'s slice "
                f"({lower!r}, {upper!r}]"
            )
        new_id = self.num_shards
        self._cuts = np.insert(self._cuts, interval, cut)
        self._slice_shards.insert(interval + 1, new_id)
        self.num_shards += 1
        return new_id


class HashShardPartitioner:
    """Stable modulo-hash placement over the (MD5-derived) file id.

    No locality — the router cannot prune shards for complex queries — but
    no fitting step either, and the assignment survives any corpus change.
    """

    kind = "hash"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def assign(self, files: Sequence[FileMetadata]) -> np.ndarray:
        return np.asarray([self.shard_for(f) for f in files], dtype=np.intp)

    def shard_for(self, file: FileMetadata) -> int:
        return int(file.file_id % self.num_shards)


#: Either concrete partitioner; both expose ``shard_for`` and ``kind``.
ShardPartitioner = Union[SemanticShardPartitioner, HashShardPartitioner]


def make_partitioner(
    files: Sequence[FileMetadata],
    num_shards: int,
    *,
    kind: str = "semantic",
    schema: AttributeSchema = DEFAULT_SCHEMA,
    rank: int = 5,
    seed: Optional[int] = None,
    strategy: str = "slice",
    balance_fallback: bool = True,
) -> "ShardPartitioner":
    """Factory over the partitioner strategies (``semantic`` / ``hash``)."""
    if kind == "semantic":
        return SemanticShardPartitioner(
            files,
            num_shards,
            schema,
            rank=rank,
            seed=seed,
            strategy=strategy,
            balance_fallback=balance_fallback,
        )
    if kind == "hash":
        return HashShardPartitioner(num_shards)
    raise ValueError(f"unknown partitioner kind {kind!r}; expected 'semantic' or 'hash'")
