"""Corpus partitioning for horizontal sharding.

A shard partitioner splits one file population into ``N`` sub-corpora, each
of which becomes an independent SmartStore deployment, and afterwards routes
every *new* record to a shard.  Strategies:

* :class:`SemanticShardPartitioner` — the default.  The corpus is projected
  into the LSI semantic subspace (the same §3.1 machinery the in-store
  grouping uses) and split k-way:

  - ``strategy="slice"`` (default) cuts the *principal semantic component*
    into ``N`` contiguous quantile slices, weighted by file popularity
    (``access_count``) when the schema records it.  Slices are disjoint
    intervals of the dominant correlation direction, so shard bounding
    boxes barely overlap — a narrow range window or top-k neighbourhood
    intersects one or two shards — and popularity weighting splits the
    *hot* region across shards, balancing query load rather than raw file
    counts (the quantity that actually limits scatter-gather throughput).
  - ``strategy="kmeans"`` splits with balanced K-means over the full LSI
    subspace: file counts are near-equal and shards are round semantic
    clusters, at the price of overlapping bounding boxes.

* :class:`HashShardPartitioner` — the fallback when no semantic structure
  is wanted (or the corpus is too degenerate to fit LSI): stable modulo
  hashing of the (MD5-derived, process-independent) file id.  Placement is
  uniform but carries no locality, so the router must contact every shard
  for complex queries.

All strategies are deterministic: the same corpus, shard count and seed
always produce the same assignment, and :meth:`shard_for` is a pure
function of the record — the scatter-gather equivalence gates depend on
that.

:func:`corpus_index_bounds` computes the corpus-wide index-space bounds
that every shard must be built with (``SmartStore.build(...,
index_bounds=...)``) so distances and normalisation agree across shards.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.lsi.kmeans import balanced_kmeans
from repro.lsi.model import LSIModel
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform

__all__ = [
    "corpus_index_bounds",
    "SemanticShardPartitioner",
    "HashShardPartitioner",
    "ShardPartitioner",
    "make_partitioner",
]

#: Attribute used to weight the slice quantiles (query load concentrates on
#: popular files — the workload generators anchor Zipf traffic on it).
POPULARITY_ATTRIBUTE = "access_count"


def corpus_index_bounds(
    files: Sequence[FileMetadata], schema: AttributeSchema = DEFAULT_SCHEMA
) -> Tuple[np.ndarray, np.ndarray]:
    """Corpus-wide per-attribute bounds of the index space.

    The index space is the log-transformed attribute space (wide-range
    attributes ``log1p``-ed); these are exactly the bounds an unsharded
    ``SmartStore.build`` over the same population would derive, which is
    why injecting them into every shard makes per-shard distances
    comparable with the unsharded baseline.
    """
    matrix = log_transform(attribute_matrix(files, schema), schema)
    return matrix.min(axis=0), matrix.max(axis=0)


class SemanticShardPartitioner:
    """LSI-space k-way split of a corpus into semantically coherent shards.

    Parameters
    ----------
    files:
        The build-time corpus; :attr:`labels` holds its shard assignment.
    num_shards:
        Requested shard count (capped at the corpus size).
    schema, rank, seed:
        Attribute schema, LSI rank and K-means seed — mirror the
        corresponding :class:`~repro.core.smartstore.SmartStoreConfig`
        knobs so a sharded deployment is parameterised consistently.
    strategy:
        ``"slice"`` (popularity-weighted quantile slices of the principal
        LSI component, the default) or ``"kmeans"`` (balanced K-means over
        the full LSI subspace) — see the module docstring for the
        trade-off.
    """

    kind = "semantic"

    def __init__(
        self,
        files: Sequence[FileMetadata],
        num_shards: int,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        rank: int = 5,
        seed: Optional[int] = None,
        strategy: str = "slice",
    ) -> None:
        files = list(files)
        if not files:
            raise ValueError("cannot partition an empty corpus")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in ("slice", "kmeans"):
            raise ValueError(f"unknown strategy {strategy!r}; expected 'slice' or 'kmeans'")
        self.schema = schema
        self.strategy = strategy
        self.num_shards = min(num_shards, len(files))

        matrix = log_transform(attribute_matrix(files, schema), schema)
        self._lower = matrix.min(axis=0)
        self._upper = matrix.max(axis=0)
        span = self._upper - self._lower
        self._span = np.where(span > 0, span, 1.0)
        normalised = (matrix - self._lower) / self._span
        self._center = normalised.mean(axis=0)

        rank = max(1, min(rank, schema.dimension, len(files)))
        self._lsi = LSIModel.fit_items(normalised - self._center, rank)
        sem = self._lsi.item_vectors()
        self._cuts: Optional[np.ndarray] = None
        if self.num_shards == 1:
            labels = np.zeros(len(files), dtype=np.intp)
        elif strategy == "slice":
            labels = self._slice_labels(files, sem[:, 0])
        else:
            labels = balanced_kmeans(sem, self.num_shards, seed=seed).labels
        self._labels = np.asarray(labels, dtype=np.intp)
        # Shard centroids route post-build records under the kmeans
        # strategy (slice routing uses the cut values); an empty shard
        # falls back to the global mean so it never attracts anything.
        global_mean = sem.mean(axis=0)
        centroids = []
        for shard in range(self.num_shards):
            members = np.nonzero(self._labels == shard)[0]
            centroids.append(sem[members].mean(axis=0) if members.size else global_mean)
        self._centroids = np.vstack(centroids)

    def _slice_labels(self, files: Sequence[FileMetadata], c1: np.ndarray) -> np.ndarray:
        """Popularity-weighted quantile slices of the principal component.

        Cut values sit at the weighted quantiles of the component, so each
        slice carries roughly the same expected *query load*; records tying
        a cut value exactly always land on the lower slice (``side="left"``
        both here and in :meth:`shard_for`, keeping build assignment and
        post-build routing consistent).
        """
        n = self.num_shards
        weights = np.asarray(
            [float(f.attributes.get(POPULARITY_ATTRIBUTE, 1.0)) + 1.0 for f in files]
        )
        order = np.argsort(c1, kind="stable")
        cumulative = np.cumsum(weights[order])
        cumulative = cumulative / cumulative[-1]
        cut_positions = np.searchsorted(cumulative, np.arange(1, n) / n)
        cuts = c1[order[np.minimum(cut_positions, len(files) - 1)]]
        labels = np.searchsorted(cuts, c1, side="left")
        if np.unique(labels).size < n:
            # Degenerate component (long runs of identical values): fall
            # back to equal-count chunks so no shard is empty.  Post-build
            # routing still uses the (re-derived) cut values; a boundary tie
            # may then route to a neighbouring shard, which is harmless —
            # ownership of build-time records is tracked by the router.
            chunk = np.minimum(np.arange(len(files)) * n // len(files), n - 1)
            labels = np.empty(len(files), dtype=np.intp)
            labels[order] = chunk
            boundaries = [order[(chunk == j).nonzero()[0][-1]] for j in range(n - 1)]
            cuts = c1[boundaries]
        self._cuts = np.asarray(cuts, dtype=np.float64)
        return labels

    @property
    def labels(self) -> np.ndarray:
        """Shard label per build-time corpus file (copy)."""
        return self._labels.copy()

    def assign(self, files: Sequence[FileMetadata]) -> np.ndarray:
        """Shard assignment of the build-time corpus.

        Callers must pass the same corpus the partitioner was fitted on;
        post-build records are routed one at a time via :meth:`shard_for`.
        """
        if len(files) != len(self._labels):
            raise ValueError(
                f"assign() expects the fitted corpus ({len(self._labels)} files), "
                f"got {len(files)}"
            )
        return self.labels

    def fold(self, file: FileMetadata) -> np.ndarray:
        """One record's coordinates in the partitioner's LSI subspace.

        ``scale=False`` gives the plain ``U_p^T q`` projection, which for a
        fitted item reproduces its ``item_vectors`` row exactly — the
        coordinates the cuts and shard centroids live in — so routing is
        geometrically consistent with the build-time split.
        """
        row = log_transform(attribute_matrix([file], self.schema), self.schema)[0]
        normalised = np.clip((row - self._lower) / self._span, 0.0, 1.0)
        return self._lsi.fold_in(normalised - self._center, scale=False)

    def shard_for(self, file: FileMetadata) -> int:
        """The shard a new record belongs to.

        Slice strategy: the slice whose component interval contains the
        record; kmeans strategy: nearest shard centroid.  Deterministic
        either way (ties resolve to the lowest shard id), so replaying the
        same mutation stream always routes identically.
        """
        vector = self.fold(file)
        if self._cuts is not None:
            return int(np.searchsorted(self._cuts, vector[0], side="left"))
        distances = np.linalg.norm(self._centroids - vector, axis=1)
        return int(np.argmin(distances))


class HashShardPartitioner:
    """Stable modulo-hash placement over the (MD5-derived) file id.

    No locality — the router cannot prune shards for complex queries — but
    no fitting step either, and the assignment survives any corpus change.
    """

    kind = "hash"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards

    def assign(self, files: Sequence[FileMetadata]) -> np.ndarray:
        return np.asarray([self.shard_for(f) for f in files], dtype=np.intp)

    def shard_for(self, file: FileMetadata) -> int:
        return int(file.file_id % self.num_shards)


#: Either concrete partitioner; both expose ``shard_for`` and ``kind``.
ShardPartitioner = Union[SemanticShardPartitioner, HashShardPartitioner]


def make_partitioner(
    files: Sequence[FileMetadata],
    num_shards: int,
    *,
    kind: str = "semantic",
    schema: AttributeSchema = DEFAULT_SCHEMA,
    rank: int = 5,
    seed: Optional[int] = None,
    strategy: str = "slice",
) -> "ShardPartitioner":
    """Factory over the partitioner strategies (``semantic`` / ``hash``)."""
    if kind == "semantic":
        return SemanticShardPartitioner(
            files, num_shards, schema, rank=rank, seed=seed, strategy=strategy
        )
    if kind == "hash":
        return HashShardPartitioner(num_shards)
    raise ValueError(f"unknown partitioner kind {kind!r}; expected 'semantic' or 'hash'")
