"""Scatter-gather query routing across independent SmartStore shards.

A :class:`ShardRouter` owns ``N`` complete SmartStore deployments (each
with its own cluster, semantic R-tree, version chains and durable ingest
pipeline) and presents them as one logical store:

* **Queries** are executed scatter-gather on a thread pool and merged into
  a single :class:`~repro.core.queries.QueryResult` in the same canonical
  order a single store produces (file-id order for point/range,
  ``(distance, file_id)`` for top-k).
* **Shard summaries** prune the scatter set exactly: each shard advertises
  a filename Bloom filter and an index-space bounding box, both maintained
  across routed mutations (boxes only ever grow, Bloom filters only ever
  gain keys, so pruning stays conservative).  A point query contacts only
  shards whose filter may contain the filename (no false negatives ⇒ a
  pruned shard provably has no match); a range query skips shards whose
  box misses the window; a top-k query ranks shards by MINDIST to their
  boxes, scans the most correlated shard first, and ships that shard's
  k-th-best distance as a shared ``MaxD`` bound to the remaining shards —
  which then prune their own group scans against it (or are skipped
  outright when even their box cannot beat the bound).
* **Mutations** are routed by ownership (a known file's mutations go to
  the shard that holds it, so insert-then-delete nets out inside one
  shard's chain) or, for new records, by the
  :class:`~repro.shard.partitioner.SemanticShardPartitioner`; each shard
  drains its own staged mutations through its own compactor.

Exactness: every pruning rule only skips work that provably cannot change
the merged payload, and every shard is built with the *corpus-wide*
index-space bounds (``SmartStore.build(..., index_bounds=...)``), so with
an exhaustive ``search_breadth`` the merged results are
fingerprint-identical to an unsharded deployment over the union population
— the gate ``shard-bench`` and ``benchmarks/bench_shard_scaling.py``
assert.  (With the default bounded breadth each shard bounds its local
search scope exactly like a single store does, and recall behaves the same
way.)

The router deliberately quacks like both halves of the serving stack so
:class:`~repro.service.service.QueryService` runs over it unchanged:

* like a **SmartStore facade** — ``execute`` / ``point_query`` /
  ``range_query`` / ``topk_query``, an ``engine`` returning itself, a
  ``cluster`` shim for home-unit draws and aggregate metrics, a
  ``versioning`` composite whose ``change_clock`` is the *tuple of
  per-shard clocks* (the service's cache epochs therefore track every
  shard independently) and whose subscribers hear every shard's flushes;
* like an **IngestPipeline** — ``insert`` / ``delete`` / ``modify``
  returning :class:`~repro.ingest.pipeline.MutationReceipt`, a
  ``compactor`` driving all per-shard compactors, and ``stats()``.

All mutations must flow through the router: mutating a shard's store
directly would bypass the summaries and break pruning exactness.

With ``build_shard_router(..., replication=ReplicationConfig(...))`` every
shard is a :class:`~repro.replication.group.ReplicaGroup` instead of a bare
store: scatter-gather calls land on whichever healthy replica the group
picks (catch-up-on-read keeps answers identical), a primary crash promotes
the freshest replica mid-scatter without failing the client request, and
the router aggregates per-group failover/degraded-read counters for the
service telemetry (:meth:`ShardRouter.drain_replication_events`).

Shard backends
--------------
The router never assumes its shards are in-process objects — it programs
against a *shard backend* contract, so one router implementation serves
both execution modes:

* ``shard.engine`` with ``point_query`` / ``range_query`` / ``topk_query``
  (accepting ``home_unit``, cooperative ``deadline``, ``max_d_bound`` and,
  for replicated shards, ``consistency``), plus ``to_index_space`` /
  ``index_lower`` / ``index_upper`` on the first shard for summary
  geometry;
* ``shard.files`` / ``shard.schema`` / ``shard.config`` / ``shard.cluster``
  / ``shard.versioning`` for summaries, home-unit mapping and cache
  epochs;
* a paired *pipeline* with ``insert`` / ``delete`` / ``modify`` /
  ``compactor`` / ``overlay`` / ``close``.

:class:`~repro.core.smartstore.SmartStore` (+
:class:`~repro.ingest.pipeline.IngestPipeline`) and
:class:`~repro.replication.group.ReplicaGroup` satisfy it in-process
(threads execution mode); :class:`repro.server.worker.RemoteShard` — a
proxy speaking the wire protocol to a dedicated worker *process* —
satisfies it remotely (processes execution mode), which is how scan-heavy
scatter-gather escapes the GIL.  A backend whose worker has died raises
:class:`ShardUnavailableError`; the scatter converts that into an
*incomplete empty* per-shard result, so the merged payload comes back
``complete=False`` and the client's partial/fail policy decides what the
caller sees.
"""

from __future__ import annotations

import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # runtime import would cycle through repro.api.__init__
    from repro.api.options import Deadline

from repro.bloom.bloom import BloomFilter
from repro.cluster.metrics import Metrics
from repro.concurrency import ReadWriteLock
from repro.core.queries import QueryResult
from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.core.versioning import VersioningManager
from repro.ingest.compactor import CompactionPolicy
from repro.ingest.pipeline import IngestPipeline, MutationReceipt, recover_from_storage
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.obs import TraceContext, get_tracer
from repro.replication.group import (
    ReplicaGroup,
    ReplicationConfig,
    _build_replica_group,
)
from repro.storage import SegmentStore, StorageConfig, has_snapshot
from repro.shard.load import PartitionLoad
from repro.shard.partitioner import (
    ShardPartitioner,
    corpus_index_bounds,
    make_partitioner,
)
from repro.workloads.types import PointQuery, Query, RangeQuery, TopKQuery

__all__ = [
    "ShardSummary",
    "ShardRouter",
    "ShardUnavailableError",
    "build_shard_router",
]


class ShardUnavailableError(ConnectionError):
    """A shard backend cannot be reached (its worker process died or its
    transport failed).  Raised by remote backends; the router's scatter
    turns it into an incomplete per-shard result rather than failing the
    whole request."""

    def __init__(
        self, shard_id: Union[int, str], message: Optional[str] = None
    ) -> None:
        if message is None:
            # Reconstructed from a wire error envelope: the rendered
            # message already carries the shard id prefix.
            super().__init__(str(shard_id))
            self.shard_id = -1
        else:
            super().__init__(f"shard {shard_id}: {message}")
            self.shard_id = int(shard_id)

#: Geometry of the router-level per-shard filename Bloom filters.  Sized for
#: corpora of tens of thousands of filenames per shard at a negligible
#: false-positive rate (a false positive only costs one extra shard probe —
#: it can never change an answer).
SUMMARY_BLOOM_BITS = 1 << 17
SUMMARY_BLOOM_HASHES = 5


class ShardSummary:
    """What the router knows about one shard without contacting it.

    ``lower``/``upper`` bound every record the shard has ever held in index
    space (they never shrink — deletions keep the box conservative), and
    the Bloom filter covers every filename ever inserted.  Both are updated
    by the router on every routed mutation, so staged-but-uncompacted
    records are covered too.
    """

    def __init__(self, shard_id: int, *, bits: int, hashes: int) -> None:
        self.shard_id = shard_id
        self.bloom = BloomFilter(bits, hashes)
        self.lower: Optional[np.ndarray] = None
        self.upper: Optional[np.ndarray] = None

    def observe_row(self, row: np.ndarray, filename: str) -> None:
        """Fold one record (index-space coordinates) into the summary."""
        self.bloom.add(filename)
        if self.lower is None:
            self.lower = np.array(row, dtype=np.float64)
            self.upper = np.array(row, dtype=np.float64)
        else:
            np.minimum(self.lower, row, out=self.lower)
            np.maximum(self.upper, row, out=self.upper)

    def may_contain_filename(self, filename: str) -> bool:
        return self.bloom.contains(filename)

    def intersects_window(
        self, attr_idx: Sequence[int], lower: np.ndarray, upper: np.ndarray
    ) -> bool:
        """Box-overlap test restricted to the constrained attributes."""
        if self.lower is None:
            return False
        idx = list(attr_idx)
        return bool(
            np.all(self.lower[idx] <= upper) and np.all(lower <= self.upper[idx])
        )

    def mindist(
        self,
        attr_idx: Sequence[int],
        point: np.ndarray,
        norm_lower: np.ndarray,
        norm_upper: np.ndarray,
    ) -> float:
        """MINDIST from a query point to the shard box, in normalised space.

        Same geometry as
        :meth:`~repro.core.semantic_rtree.SemanticNode.min_distance_subrange`
        — including the clip to ``[0, 1]`` that actual distance
        computations apply — so the value is directly comparable with
        per-group MINDISTs, top-k distances and the shipped MaxD bound
        even for query points outside the corpus bounds.
        """
        if self.lower is None:
            return float("inf")
        idx = list(attr_idx)
        span = np.where(norm_upper - norm_lower > 0, norm_upper - norm_lower, 1.0)
        box_lo = np.clip((self.lower[idx] - norm_lower) / span, 0.0, 1.0)
        box_hi = np.clip((self.upper[idx] - norm_lower) / span, 0.0, 1.0)
        q = np.clip((np.asarray(point, dtype=np.float64) - norm_lower) / span, 0.0, 1.0)
        delta = np.maximum(np.maximum(box_lo - q, 0.0), np.maximum(q - box_hi, 0.0))
        return float(np.sqrt(np.sum(delta**2)))


class _CompositeVersioning:
    """The union view of every shard's versioning manager.

    ``change_clock`` is the tuple of per-shard clocks: the service snapshots
    it as the cache epoch, so a mutation on *any* shard makes in-flight
    results stale — per-shard cache epochs without teaching the cache about
    shards.  A topology change (live shard split) grows the tuple's arity,
    which can never compare equal to any pre-split epoch: every stale
    snapshot reads as a global flush by construction.

    Subscribers are registered on every shard *and remembered*, so each
    shard's mutations flush the service cache exactly as a single store's
    would — including shards installed after the subscription
    (:meth:`attach` rewires every remembered listener onto the new
    shard's manager; without that memory a split-off shard's mutations
    would silently never flush the cache).
    """

    def __init__(self, managers: Sequence[VersioningManager]) -> None:
        self._managers = list(managers)
        self._listeners: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    @property
    def change_clock(self) -> Tuple[int, ...]:
        return tuple(m.change_clock for m in self._managers)

    def subscribe(self, listener: Callable[[], None]) -> None:
        with self._lock:
            self._listeners.append(listener)
            managers = list(self._managers)
        for manager in managers:
            manager.subscribe(listener)

    def unsubscribe(self, listener: Callable[[], None]) -> None:
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)
            managers = list(self._managers)
        for manager in managers:
            manager.unsubscribe(listener)

    def attach(self, manager: VersioningManager) -> None:
        """Fold a new shard's manager into the composite (live reshard):
        the clock tuple grows and every remembered listener starts hearing
        the new shard's flushes."""
        with self._lock:
            self._managers.append(manager)
            listeners = list(self._listeners)
        for listener in listeners:
            manager.subscribe(listener)


class _RouterCluster:
    """Cluster shim: home-unit domain and aggregate metrics for the service.

    The service draws per-request home units from ``unit_ids()`` (the
    router maps them onto each shard's own unit range) and merges every
    result's counters into ``metrics``; per-shard clusters keep their own
    accounting for work their servers actually did.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router
        self.metrics = Metrics()

    @property
    def num_units(self) -> int:
        return max(s.cluster.num_units for s in self._router.shards)

    def unit_ids(self) -> List[int]:
        return list(range(self.num_units))

    def random_home_unit(self) -> int:
        return self._router.shards[0].cluster.random_home_unit() % self.num_units


class _RouterCompactor:
    """Drives every shard's compactor (the service's ``auto_compact`` hook)."""

    def __init__(self, router: "ShardRouter") -> None:
        self._router = router

    def run_once(self) -> int:
        return sum(p.compactor.run_once() for p in self._router.pipelines)

    def drain(self) -> int:
        return sum(p.compactor.drain() for p in self._router.pipelines)


class ShardRouter:
    """Scatter-gather execution over independent SmartStore shards.

    Use :func:`build_shard_router` to construct one from a corpus; direct
    instantiation takes already-built shards (all sharing one schema and
    identical corpus-wide index bounds) plus the partitioner that routes
    new records.
    """

    def __init__(
        self,
        shards: Sequence[SmartStore],
        partitioner: ShardPartitioner,
        *,
        pipelines: Optional[Sequence[IngestPipeline]] = None,
        max_workers: Optional[int] = None,
        summary_bloom_bits: int = SUMMARY_BLOOM_BITS,
        summary_bloom_hashes: int = SUMMARY_BLOOM_HASHES,
    ) -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("a ShardRouter needs at least one shard")
        self.partitioner = partitioner
        self.schema: AttributeSchema = self.shards[0].schema
        base = self.shards[0]
        for shard in self.shards[1:]:
            if shard.schema is not base.schema and shard.schema.names != base.schema.names:
                raise ValueError("all shards must share one attribute schema")
            if not (
                np.allclose(shard.index_lower, base.index_lower)
                and np.allclose(shard.index_upper, base.index_upper)
            ):
                raise ValueError(
                    "shards disagree on index-space bounds; build every shard "
                    "with index_bounds=corpus_index_bounds(corpus) or merged "
                    "top-k distances will not be comparable"
                )
        self.pipelines = (
            list(pipelines)
            if pipelines is not None
            else [
                s if isinstance(s, ReplicaGroup) else IngestPipeline(s)
                for s in self.shards
            ]
        )
        if len(self.pipelines) != len(self.shards):
            raise ValueError("one ingest pipeline per shard is required")

        self.versioning = _CompositeVersioning([s.versioning for s in self.shards])
        self.cluster = _RouterCluster(self)
        self.compactor = _RouterCompactor(self)
        self.config: SmartStoreConfig = base.config
        workers = max_workers if max_workers is not None else min(8, len(self.shards))
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-shard"
        )
        # file_id -> shard id, for ownership routing of deletes/modifies.
        # A delete keeps the entry: a later re-insert must land on the shard
        # whose chain stages the delete, so the pair nets out in order.
        self._owner: Dict[int, int] = {}
        self._summaries: List[ShardSummary] = []
        for sid, shard in enumerate(self.shards):
            summary = ShardSummary(
                sid, bits=summary_bloom_bits, hashes=summary_bloom_hashes
            )
            rows = log_transform(
                attribute_matrix(shard.files, self.schema), self.schema
            )
            for row, file in zip(rows, shard.files):
                summary.observe_row(row, file.filename)
                self._owner[file.file_id] = sid
            self._summaries.append(summary)
        self._mutation_lock = threading.Lock()
        self._shard_locks = [threading.Lock() for _ in self.shards]
        self._stats_lock = threading.Lock()
        # Topology gate: queries and routed mutations take the read side
        # (many in parallel, as before); installing a split-off shard takes
        # the write side, so the shard/pipeline/summary/lock lists never
        # change shape under an in-flight scatter.  Lock order is topology
        # -> _mutation_lock -> _shard_locks[i]; the flip itself touches
        # only pipeline-level locks below the write side.
        self._topology = ReadWriteLock()
        self.reshards = 0
        self.queries: Dict[str, int] = {"point": 0, "range": 0, "topk": 0}
        self.shards_contacted = 0
        self.shards_pruned = 0
        self.shard_calls_failed = 0
        self.mutations_routed = 0
        # Simulated busy time each shard has accumulated answering its part
        # of the scatter-gather work.  Shards are independent deployments,
        # so the *busiest* shard bounds the cluster's sustainable query
        # rate: throughput = queries / max(shard_busy_seconds) — the
        # quantity the scaling benchmark gates on.
        self.shard_busy_seconds: List[float] = [0.0] * len(self.shards)
        self._replication_events_seen: Dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Shut the scatter pool down and close every shard pipeline."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        for pipeline in self.pipelines:
            pipeline.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def engine(self) -> "ShardRouter":
        """The router is its own engine (duck-typed for the query service)."""
        return self

    def default_pipeline(self) -> "ShardRouter":
        """The router is its own write path (see :class:`SmartStore` hook)."""
        return self

    # ------------------------------------------------------------------ helpers
    def _index_row(self, file: FileMetadata) -> np.ndarray:
        return log_transform(attribute_matrix([file], self.schema), self.schema)[0]

    def _shard_home(self, shard_id: int, home_unit: Optional[int]) -> Optional[int]:
        if home_unit is None:
            return None
        units = self.shards[shard_id].cluster.unit_ids()
        return units[home_unit % len(units)]

    def _count(self, kind: str, contacted: int) -> None:
        with self._stats_lock:
            self.queries[kind] += 1
            self.shards_contacted += contacted
            self.shards_pruned += len(self.shards) - contacted

    def _shard_call(
        self,
        shard_id: int,
        method: str,
        query: Query,
        home_unit: Optional[int],
        *,
        deadline: Optional[Deadline] = None,
        consistency: Optional[str] = None,
        max_staleness: int = 0,
        trace_ctx: Optional[TraceContext] = None,
        **kwargs: object,
    ) -> QueryResult:
        """One shard's part of a scatter: execute and account its busy time.

        The cooperative ``deadline`` is forwarded to every shard engine
        (each checks it between its own group scans); the consistency
        preference only applies to replicated shards — a bare store is
        trivially at primary consistency, so the kwarg is stripped for it.
        ``trace_ctx`` is passed explicitly because scatters run on pool
        threads, which do not inherit the caller's thread-local context;
        the span below re-establishes it so replica / worker / WAL spans
        underneath parent correctly.
        """
        if deadline is not None:
            kwargs["deadline"] = deadline
        if consistency is not None and isinstance(self.shards[shard_id], ReplicaGroup):
            kwargs["consistency"] = consistency
            kwargs["max_staleness"] = max_staleness
        with get_tracer().span(
            "shard.scan", trace_ctx, shard=shard_id, method=method
        ) as scan_span:
            try:
                result: QueryResult = getattr(self.shards[shard_id].engine, method)(
                    query, home_unit=self._shard_home(shard_id, home_unit), **kwargs
                )
            except ShardUnavailableError:
                # The backend's worker is gone: this shard contributes an
                # *incomplete empty* result, so the merged payload is marked
                # complete=False and the caller's partial/fail policy applies —
                # a dead worker must degrade a scatter, never hang or crash it.
                with self._stats_lock:
                    self.shard_calls_failed += 1
                scan_span.tag(unavailable=True)
                return QueryResult(
                    files=[],
                    metrics=Metrics(),
                    latency=0.0,
                    groups_visited=0,
                    hops=0,
                    found=False,
                    distances=[],
                    complete=False,
                )
        with self._stats_lock:
            self.shard_busy_seconds[shard_id] += result.latency
        return result

    def _expired_result(self, metrics: Metrics) -> QueryResult:
        """Partial empty result for a request whose deadline expired before
        any shard could be contacted."""
        return QueryResult(
            files=[],
            metrics=metrics,
            latency=metrics.latency(self.config.cost_model),
            groups_visited=0,
            hops=0,
            found=False,
            distances=[],
            complete=False,
        )

    def busy_makespan(self) -> float:
        """Simulated busy time of the busiest shard (the capacity bound)."""
        with self._stats_lock:
            return max(self.shard_busy_seconds)

    def reset_busy(self) -> None:
        with self._stats_lock:
            self.shard_busy_seconds = [0.0] * len(self.shards)

    def _scatter(
        self, shard_ids: Sequence[int], call: Callable[[int], QueryResult]
    ) -> List[QueryResult]:
        """Run ``call`` for every shard id, in parallel when it pays off.

        Results come back in ``shard_ids`` order so every merge below is
        deterministic regardless of thread scheduling.
        """
        if len(shard_ids) <= 1:
            return [call(sid) for sid in shard_ids]
        futures = [(sid, self._pool.submit(call, sid)) for sid in shard_ids]
        return [future.result() for _, future in futures]

    def _merge_by_id(
        self,
        results: Sequence[QueryResult],
        router_metrics: Metrics,
        *,
        groups_floor: int = 0,
    ) -> QueryResult:
        """Merge point/range scatter results into canonical file-id order.

        Shards hold disjoint id sets by construction, so the union *is* the
        answer; the dict-merge is defensive.  Latency models the parallel
        fan-out: the router's own probe cost plus the slowest shard.
        """
        overhead = router_metrics.latency(self.config.cost_model)
        merged: Dict[int, FileMetadata] = {}
        groups_visited = groups_floor
        shard_latency = 0.0
        complete = True
        for result in results:
            for file in result.files:
                merged.setdefault(file.file_id, file)
            router_metrics.merge(result.metrics)
            groups_visited += result.groups_visited
            shard_latency = max(shard_latency, result.latency)
            complete = complete and result.complete
        files = sorted(merged.values(), key=lambda f: f.file_id)
        groups_visited = max(1, groups_visited)
        return QueryResult(
            files=files,
            metrics=router_metrics,
            # Parallel fan-out: the router's own probe cost plus the slowest
            # contacted shard (the merged metrics still account all work).
            latency=overhead + shard_latency,
            groups_visited=groups_visited,
            hops=max(0, groups_visited - 1),
            found=bool(files),
            distances=[],
            complete=complete,
        )

    # ------------------------------------------------------------------ queries
    def point_query(
        self,
        query: PointQuery,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        consistency: Optional[str] = None,
        max_staleness: int = 0,
    ) -> QueryResult:
        """Filename point query over the shards the Bloom summaries admit."""
        with self._topology.read_locked():
            return self._point_query_locked(
                query,
                home_unit=home_unit,
                deadline=deadline,
                consistency=consistency,
                max_staleness=max_staleness,
            )

    def _point_query_locked(
        self,
        query: PointQuery,
        *,
        home_unit: Optional[int],
        deadline: Optional[Deadline],
        consistency: Optional[str],
        max_staleness: int,
    ) -> QueryResult:
        # Captured on the submitting thread: scatter pool threads do not
        # inherit thread-local trace context.
        trace_ctx = get_tracer().current()
        metrics = Metrics()
        metrics.record_bloom_probe(len(self.shards))
        if deadline is not None and deadline.expired():
            self._count("point", 0)
            return self._expired_result(metrics)
        targets = [
            s.shard_id
            for s in self._summaries
            if s.may_contain_filename(query.filename)
        ]
        self._count("point", len(targets))
        results = self._scatter(
            targets,
            lambda sid: self._shard_call(
                sid, "point_query", query, home_unit,
                deadline=deadline, consistency=consistency, max_staleness=max_staleness,
                trace_ctx=trace_ctx,
            ),
        )
        return self._merge_by_id(results, metrics)

    def range_query(
        self,
        query: RangeQuery,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        consistency: Optional[str] = None,
        max_staleness: int = 0,
    ) -> QueryResult:
        """Range query over the shards whose boxes intersect the window."""
        with self._topology.read_locked():
            return self._range_query_locked(
                query,
                home_unit=home_unit,
                deadline=deadline,
                consistency=consistency,
                max_staleness=max_staleness,
            )

    def _range_query_locked(
        self,
        query: RangeQuery,
        *,
        home_unit: Optional[int],
        deadline: Optional[Deadline],
        consistency: Optional[str],
        max_staleness: int,
    ) -> QueryResult:
        trace_ctx = get_tracer().current()
        metrics = Metrics()
        metrics.record_index_access(len(self.shards))
        if deadline is not None and deadline.expired():
            self._count("range", 0)
            return self._expired_result(metrics)
        engine = self.shards[0].engine
        attr_idx = list(self.schema.indices(query.attributes))
        lower = engine.to_index_space(attr_idx, query.lower)
        upper = engine.to_index_space(attr_idx, query.upper)
        targets = [
            s.shard_id
            for s in self._summaries
            if s.intersects_window(attr_idx, lower, upper)
        ]
        self._count("range", len(targets))
        results = self._scatter(
            targets,
            lambda sid: self._shard_call(
                sid, "range_query", query, home_unit,
                deadline=deadline, consistency=consistency, max_staleness=max_staleness,
                trace_ctx=trace_ctx,
            ),
        )
        return self._merge_by_id(results, metrics)

    def topk_query(
        self,
        query: TopKQuery,
        *,
        home_unit: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        consistency: Optional[str] = None,
        max_staleness: int = 0,
    ) -> QueryResult:
        """Global top-k: primary shard first, MaxD shipped to the rest.

        Shards are ranked by MINDIST to their boxes; the closest (primary)
        shard is searched unbounded and, when it returns a full ``k``, its
        k-th-best distance becomes the shared ``MaxD`` bound: shards whose
        boxes cannot beat it are skipped outright, the rest prune their own
        group scans against it.  The k-way merge orders the pooled
        candidates by ``(distance, file_id)`` — the same canonical order a
        single store produces — and truncates to ``k``.
        """
        with self._topology.read_locked():
            return self._topk_query_locked(
                query,
                home_unit=home_unit,
                deadline=deadline,
                consistency=consistency,
                max_staleness=max_staleness,
            )

    def _topk_query_locked(
        self,
        query: TopKQuery,
        *,
        home_unit: Optional[int],
        deadline: Optional[Deadline],
        consistency: Optional[str],
        max_staleness: int,
    ) -> QueryResult:
        trace_ctx = get_tracer().current()
        metrics = Metrics()
        metrics.record_index_access(len(self.shards))
        if deadline is not None and deadline.expired():
            self._count("topk", 0)
            return self._expired_result(metrics)
        engine = self.shards[0].engine
        attr_idx = list(self.schema.indices(query.attributes))
        index_point = engine.to_index_space(attr_idx, query.values)
        norm_lo = engine.index_lower[attr_idx]
        norm_hi = engine.index_upper[attr_idx]

        mindists = [
            summary.mindist(attr_idx, index_point, norm_lo, norm_hi)
            for summary in self._summaries
        ]
        order = sorted(range(len(self.shards)), key=lambda sid: (mindists[sid], sid))
        primary = order[0]
        primary_result = self._shard_call(
            primary, "topk_query", query, home_unit,
            deadline=deadline, consistency=consistency, max_staleness=max_staleness,
            trace_ctx=trace_ctx,
        )
        bound: Optional[float] = None
        if len(primary_result.distances) >= query.k:
            bound = primary_result.distances[query.k - 1]
        rest = [
            sid
            for sid in order[1:]
            if bound is None or mindists[sid] <= bound
        ]
        truncated = False
        if deadline is not None and deadline.expired() and rest:
            # The budget ran out between the primary scan and the bounded
            # fan-out: serve what the primary gathered, marked partial.
            rest, truncated = [], True
        self._count("topk", 1 + len(rest))
        rest_results = self._scatter(
            rest,
            lambda sid: self._shard_call(
                sid, "topk_query", query, home_unit, max_d_bound=bound,
                deadline=deadline, consistency=consistency, max_staleness=max_staleness,
                trace_ctx=trace_ctx,
            ),
        )

        overhead = metrics.latency(self.config.cost_model)
        best: Dict[int, Tuple[float, FileMetadata]] = {}
        groups_visited = 0
        rest_latency = 0.0
        complete = not truncated
        for result in [primary_result, *rest_results]:
            complete = complete and result.complete
            for dist, file in zip(result.distances, result.files):
                kept = best.get(file.file_id)
                if kept is None or dist < kept[0]:
                    best[file.file_id] = (dist, file)
            metrics.merge(result.metrics)
            groups_visited += result.groups_visited
            if result is not primary_result:
                rest_latency = max(rest_latency, result.latency)
        top = sorted(best.values(), key=lambda pair: (pair[0], pair[1].file_id))[
            : query.k
        ]
        files = [f for _, f in top]
        distances = [d for d, _ in top]
        groups_visited = max(1, groups_visited)
        return QueryResult(
            files=files,
            metrics=metrics,
            # Two-phase schedule: the primary scan completes before the
            # bounded fan-out starts, so the phases add; the fan-out itself
            # is parallel, so only its slowest shard counts.
            latency=overhead + primary_result.latency + rest_latency,
            groups_visited=groups_visited,
            hops=max(0, groups_visited - 1),
            found=bool(files),
            distances=distances,
            complete=complete,
        )

    def execute(self, query: Query) -> QueryResult:
        """Facade-style dispatch; merges counters into the router aggregate."""
        if isinstance(query, PointQuery):
            result = self.point_query(query)
        elif isinstance(query, RangeQuery):
            result = self.range_query(query)
        elif isinstance(query, TopKQuery):
            result = self.topk_query(query)
        else:
            raise TypeError(f"unsupported query type {type(query)!r}")
        self.cluster.metrics.merge(result.metrics)
        return result

    # ------------------------------------------------------------------ mutations
    def _route_mutation(self, kind: str, file: FileMetadata) -> MutationReceipt:
        # The topology read side pins the shard/pipeline lists for the
        # whole route-stage-account sequence: a live split can neither
        # renumber the owner map nor swap the summary list mid-mutation.
        with self._topology.read_locked():
            return self._route_mutation_locked(kind, file)

    def _route_mutation_locked(self, kind: str, file: FileMetadata) -> MutationReceipt:
        # Routing (owner map lookup) holds the router-wide lock only
        # briefly; the pipeline call — which may fsync a WAL — holds just
        # its shard's lock, so writers to different shards proceed in
        # parallel.  Mutations of one file always resolve to one shard
        # (ownership, or the deterministic partitioner), so per-file
        # ordering degenerates to per-shard ordering.
        with self._mutation_lock:
            shard_id = self._owner.get(file.file_id)
            if shard_id is None:
                shard_id = int(self.partitioner.shard_for(file)) % len(self.shards)
        with self._shard_locks[shard_id]:
            receipt: MutationReceipt = getattr(self.pipelines[shard_id], kind)(file)
            if receipt.known and kind != "delete":
                # The summary box/filter must cover the staged record
                # *before* any later query could miss it (deletes never
                # shrink either structure — conservative by design).
                self._summaries[shard_id].observe_row(
                    self._index_row(file), file.filename
                )
        with self._mutation_lock:
            self.mutations_routed += 1
            if receipt.known:
                self._owner[file.file_id] = shard_id
        return receipt

    def insert(self, file: FileMetadata) -> MutationReceipt:
        """Insert one record on its semantic shard (immediately queryable)."""
        return self._route_mutation("insert", file)

    def delete(self, file: FileMetadata) -> MutationReceipt:
        """Delete one record on the shard that owns it."""
        return self._route_mutation("delete", file)

    def modify(self, file: FileMetadata) -> MutationReceipt:
        """Replace one record's attribute values on the shard that owns it."""
        return self._route_mutation("modify", file)

    def owner_of(self, file_id: int) -> Optional[int]:
        """The shard currently responsible for ``file_id`` (None = unknown)."""
        with self._mutation_lock:
            return self._owner.get(file_id)

    def dead_shards(self) -> List[int]:
        """Shard ids whose backend is known to be unreachable.

        In-process backends are always alive; remote backends flip their
        ``alive`` flag the first time a call fails, which is what response
        attribution reports for partial results.
        """
        return [
            sid
            for sid, shard in enumerate(self.shards)
            if not getattr(shard, "alive", True)
        ]

    # ------------------------------------------------------------------ topology
    def load_report(self) -> PartitionLoad:
        """Snapshot the live partition-load picture for elasticity decisions.

        Populations come from each pipeline's materialized file set (base
        population plus staged net effect — what the shard actually owns
        right now), busy seconds from the scatter accounting.  The
        :class:`~repro.shard.reshard.ReshardController` feeds this to
        :class:`~repro.shard.load.PartitionLoad.degenerate` to decide when
        a split is warranted.
        """
        with self._topology.read_locked():
            populations = [len(p.materialized_files()) for p in self.pipelines]
            with self._stats_lock:
                busy = list(self.shard_busy_seconds)
        return PartitionLoad(
            shards=len(populations), populations=populations, busy_seconds=busy
        )

    def _install_shard_locked(
        self,
        store: SmartStore,
        pipeline: IngestPipeline,
        summary: ShardSummary,
        moving_ids: Sequence[int],
    ) -> int:
        """Flip a fully backfilled shard into the topology.

        The caller — the reshard controller — MUST hold the topology
        *write* side (``self._topology.write_locked()``): the flip spans
        several steps (final backlog drain, partitioner recut, this
        install, handoff deletes) that must all land inside one exclusive
        section, so the controller owns the lock and this method only does
        the list surgery.  With the write side held, the append across the
        five parallel per-shard lists plus the owner-map rewrite is one
        atomic transition as far as queries and routed mutations are
        concerned.  ``versioning.attach`` grows the cache-epoch tuple's
        arity, which no pre-split epoch can compare equal to: every cached
        result goes stale at the flip, by construction.
        """
        new_id = len(self.shards)
        if summary.shard_id != new_id:
            raise ValueError(
                f"summary built for shard {summary.shard_id}, "
                f"installing as {new_id}"
            )
        self.shards.append(store)
        self.pipelines.append(pipeline)
        self._summaries.append(summary)
        self._shard_locks.append(threading.Lock())
        with self._stats_lock:
            self.shard_busy_seconds.append(0.0)
        with self._mutation_lock:
            for fid in moving_ids:
                self._owner[fid] = new_id
            self.reshards += 1
        self.versioning.attach(store.versioning)
        return new_id

    # ------------------------------------------------------------------ storage
    def checkpoint(self) -> List[Dict[str, object]]:
        """Publish a segment snapshot on every storage-backed shard.

        The shard list is snapshotted under the topology read gate, but
        every publish — segment writes and their fsyncs — runs *outside*
        it (INVARIANTS §12: no segment fsync under the topology lock);
        each shard's publish serialises on its own pipeline lock, and a
        shard split concurrent with the walk simply joins the next
        checkpoint round.  Returns the per-shard manifests.
        """
        with self._topology.read_locked():
            pipelines = list(self.pipelines)
        manifests: List[Dict[str, object]] = []
        for pipeline in pipelines:
            if isinstance(pipeline, ReplicaGroup):
                if any(
                    getattr(m.pipeline, "storage", None) is not None
                    for m in pipeline.members
                ):
                    manifests.append(pipeline.checkpoint())
            elif getattr(pipeline, "storage", None) is not None:
                manifests.append(pipeline.checkpoint())
        if not manifests:
            raise ValueError(
                "checkpoint() needs segment stores attached to the shards "
                "(DeploymentSpec.storage)"
            )
        return manifests

    # ------------------------------------------------------------------ replication
    def replica_groups(self) -> List[ReplicaGroup]:
        """The shards that are replica groups (empty for an unreplicated router)."""
        return [s for s in self.shards if isinstance(s, ReplicaGroup)]

    @property
    def replicated(self) -> bool:
        return bool(self.replica_groups())

    def anti_entropy(self) -> Dict[str, int]:
        """Run one anti-entropy pass over every replica group."""
        checked = repaired = 0
        for group in self.replica_groups():
            outcome = group.anti_entropy()
            checked += outcome["checked"]
            repaired += outcome["repaired"]
        return {"checked": checked, "repaired": repaired}

    def drain_replication_events(self) -> Dict[str, int]:
        """Failover/degraded-read/retry counts since the last drain.

        The query service polls this after engine executions so its
        telemetry accounts replication events without the router having to
        know about the service.  Returns an empty dict for an unreplicated
        router.
        """
        groups = self.replica_groups()
        if not groups:
            return {}
        totals = {
            "failovers": sum(g.failovers for g in groups),
            "degraded_reads": sum(g.degraded_reads for g in groups),
            "replica_retries": sum(g.read_retries for g in groups),
        }
        with self._stats_lock:
            seen = self._replication_events_seen
            delta = {k: v - seen.get(k, 0) for k, v in totals.items()}
            self._replication_events_seen = totals
        return delta

    # ------------------------------------------------------------------ introspection
    def stats(self) -> Dict[str, object]:
        with self._stats_lock:
            routed = dict(self.queries)
            contacted, pruned = self.shards_contacted, self.shards_pruned
        d: Dict[str, object] = {
            "shards": len(self.shards),
            "partitioner": getattr(self.partitioner, "kind", "custom"),
            "files_per_shard": [len(s.files) for s in self.shards],
            "queries_routed": routed,
            "shards_contacted": contacted,
            "shards_pruned": pruned,
            "shard_calls_failed": self.shard_calls_failed,
            "dead_shards": self.dead_shards(),
            "mutations_routed": self.mutations_routed,
            "reshards": self.reshards,
            "shard_busy_seconds": list(self.shard_busy_seconds),
            "staged_per_shard": [len(p.overlay) for p in self.pipelines],
            "compactions": sum(
                p.compactor.stats.group_compactions for p in self.pipelines
            ),
        }
        # Process-mode backends (RemoteShard) expose their worker's own
        # stats document (busy time, cache epochs, requests served); ship
        # them so a remote client's stats() call sees worker internals.
        workers = []
        for sid, shard in enumerate(self.shards):
            worker_stats = getattr(shard, "worker_stats", None)
            if worker_stats is None:
                continue
            try:
                doc = worker_stats()
            except ShardUnavailableError:
                doc = {"alive": False}
            doc = dict(doc)
            doc["shard_id"] = sid
            workers.append(doc)
        if workers:
            d["workers"] = workers
        groups = self.replica_groups()
        if groups:
            d["replication"] = {
                "mode": groups[0].mode,
                "replicas_per_shard": groups[0].num_replicas,
                "failovers": sum(g.failovers for g in groups),
                "degraded_reads": sum(g.degraded_reads for g in groups),
                "read_retries": sum(g.read_retries for g in groups),
                "resyncs": sum(g.resyncs for g in groups),
                "max_observed_lag": max(g.max_observed_lag for g in groups),
                "groups": [g.stats() for g in groups],
            }
        return d

    def __repr__(self) -> str:
        return (
            f"ShardRouter(shards={len(self.shards)}, "
            f"files={sum(len(s.files) for s in self.shards)}, "
            f"partitioner={getattr(self.partitioner, 'kind', 'custom')!r})"
        )


def _build_shard_router(
    files: Sequence[FileMetadata],
    num_shards: int,
    config: Optional[SmartStoreConfig] = None,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    partitioner: str = "semantic",
    strategy: str = "slice",
    balance_fallback: bool = True,
    units_per_shard: Optional[int] = None,
    wal_dir: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
    policy: Optional[CompactionPolicy] = None,
    max_workers: Optional[int] = None,
    replication: Optional[ReplicationConfig] = None,
    storage: Optional[StorageConfig] = None,
) -> ShardRouter:
    """Split a corpus into ``num_shards`` SmartStore deployments + a router.

    ``config.num_units`` is interpreted as the *total* storage-unit budget:
    each shard receives ``num_units // num_shards`` units (at least one)
    unless ``units_per_shard`` overrides it, so a 4-shard deployment is
    compared against a single store of the same total size.

    ``partitioner`` picks the corpus split (``"semantic"`` / ``"hash"``);
    ``strategy`` refines the semantic split (``"slice"`` / ``"kmeans"``,
    see :class:`~repro.shard.partitioner.SemanticShardPartitioner`).

    ``wal_dir`` makes every shard's ingest pipeline durable with its own
    write-ahead log (``shard-<i>.wal``); omitted, shards stage in memory
    only.  ``policy`` is the per-shard
    :class:`~repro.ingest.compactor.CompactionPolicy`.

    ``replication`` turns every shard into a
    :class:`~repro.replication.group.ReplicaGroup` of
    ``replication.replicas + 1`` identically-built deployments: writes go
    WAL-first to each group's primary and ship to its replicas, reads
    scatter across healthy replicas, and a primary crash promotes the
    freshest replica without failing client requests.

    ``storage`` (a :class:`~repro.storage.StorageConfig` with a root)
    gives every shard its own segment-store root (``<root>/shard-<i>``,
    and ``<root>/shard-<i>/r<j>`` per replica when replicated): shard
    checkpoints publish mmap-able snapshots there, and when the roots
    already hold published snapshots the whole router cold-starts from
    them — per-shard manifest + mmap'd segments + WAL tail — instead of
    re-partitioning and rebuilding ``files``.
    """
    config = config if config is not None else SmartStoreConfig()
    if storage is not None and storage.root:
        restored = _restore_shard_router(
            storage,
            config,
            schema,
            partitioner=partitioner,
            strategy=strategy,
            balance_fallback=balance_fallback,
            wal_dir=wal_dir,
            fsync_every=fsync_every,
            policy=policy,
            max_workers=max_workers,
            replication=replication,
        )
        if restored is not None:
            return restored
    files = list(files)
    if not files:
        raise ValueError("cannot shard an empty corpus")

    def shard_storage(sid: int) -> Optional[StorageConfig]:
        if storage is None or not storage.root:
            return None
        return StorageConfig(
            root=str(Path(storage.root) / f"shard-{sid}"),
            resident_segments=storage.resident_segments,
            snapshot_policy=storage.snapshot_policy,
        )
    part = make_partitioner(
        files,
        num_shards,
        kind=partitioner,
        schema=schema,
        rank=config.lsi_rank,
        seed=config.seed,
        strategy=strategy,
        balance_fallback=balance_fallback,
    )
    labels = part.assign(files)
    effective = getattr(part, "num_shards", num_shards)
    shard_files: List[List[FileMetadata]] = [[] for _ in range(effective)]
    for file, label in zip(files, labels):
        shard_files[int(label)].append(file)
    for sid, members in enumerate(shard_files):
        if not members:
            raise ValueError(
                f"shard {sid} received no files ({len(files)} files over "
                f"{effective} shards); lower num_shards or use the semantic "
                f"partitioner, which balances shard sizes"
            )

    bounds = corpus_index_bounds(files, schema)
    units = (
        units_per_shard
        if units_per_shard is not None
        else max(1, config.num_units // effective)
    )
    shard_config = replace(config, num_units=units)

    def shard_wal(name: str) -> Optional[WriteAheadLog]:
        if wal_dir is None:
            return None
        wal_path = Path(wal_dir)
        wal_path.mkdir(parents=True, exist_ok=True)
        return WriteAheadLog(wal_path / name, fsync_every=fsync_every)

    if replication is not None:
        # Every shard becomes a replica group: replication.replicas + 1
        # identical builds over the shard's members.  When durable, the
        # primary logs to shard-<i>.wal and each replica archives the
        # shipped segments in its own shard-<i>.wal.r<j> — so a promoted
        # primary keeps writing WAL-first on its own "disk".  With
        # storage, each member owns a segment root under shard-<i>/.
        groups: List[ReplicaGroup] = []
        for sid, members in enumerate(shard_files):
            wal_path = None
            if wal_dir is not None:
                base = Path(wal_dir)
                base.mkdir(parents=True, exist_ok=True)
                wal_path = base / f"shard-{sid}.wal"
            groups.append(
                _build_replica_group(
                    members,
                    shard_config,
                    schema,
                    replication=replication,
                    index_bounds=bounds,
                    wal_path=wal_path,
                    fsync_every=fsync_every,
                    policy=policy,
                    storage=shard_storage(sid),
                )
            )
        return ShardRouter(groups, part, pipelines=groups, max_workers=max_workers)

    stores = [
        SmartStore.build(members, shard_config, schema, index_bounds=bounds)
        for members in shard_files
    ]
    pipelines = []
    for sid, store in enumerate(stores):
        pipeline = IngestPipeline(store, shard_wal(f"shard-{sid}.wal"), policy=policy)
        scfg = shard_storage(sid)
        if scfg is not None:
            pipeline.attach_storage(
                SegmentStore(
                    scfg.root,  # type: ignore[arg-type]  # root checked above
                    resident_segments=scfg.resident_segments,
                )
            )
        pipelines.append(pipeline)
    return ShardRouter(stores, part, pipelines=pipelines, max_workers=max_workers)


def _restore_shard_router(
    storage: StorageConfig,
    config: SmartStoreConfig,
    schema: AttributeSchema,
    *,
    partitioner: str,
    strategy: str,
    balance_fallback: bool,
    wal_dir: Optional[Union[str, Path]],
    fsync_every: int,
    policy: Optional[CompactionPolicy],
    max_workers: Optional[int],
    replication: Optional[ReplicationConfig],
) -> Optional[ShardRouter]:
    """Cold-start a router from per-shard snapshot roots, or ``None``.

    Requires a contiguous ``shard-0 .. shard-N`` set of roots that all
    hold published manifests (a partially-checkpointed root falls back to
    the fresh build).  Each shard restores O(its WAL tail) — manifest +
    mmap'd segments + tail replay; the partitioner is re-fit over the
    restored union so new inserts keep routing semantically.  (Router
    summaries decode each shard's population either way.)
    """
    root = Path(storage.root)  # type: ignore[arg-type]  # caller checked root
    roots: List[Tuple[int, Path]] = []
    for path in root.glob("shard-*"):
        if not path.is_dir():
            continue
        try:
            sid = int(path.name.split("-", 1)[1])
        except ValueError:
            continue
        roots.append((sid, path))
    if not roots:
        return None
    roots.sort()
    if [sid for sid, _ in roots] != list(range(len(roots))):
        return None
    if not all(has_snapshot(path) for _, path in roots):
        return None
    shards: List[object] = []
    pipelines: List[object] = []
    for sid, shard_root in roots:
        wal_path = None
        if wal_dir is not None:
            base = Path(wal_dir)
            base.mkdir(parents=True, exist_ok=True)
            wal_path = base / f"shard-{sid}.wal"
        shard_cfg = StorageConfig(
            root=str(shard_root),
            resident_segments=storage.resident_segments,
            snapshot_policy=storage.snapshot_policy,
        )
        if replication is not None:
            group = _build_replica_group(
                [],
                config,
                schema,
                replication=replication,
                wal_path=wal_path,
                fsync_every=fsync_every,
                policy=policy,
                storage=shard_cfg,
            )
            shards.append(group)
            pipelines.append(group)
        else:
            pipeline, _report = recover_from_storage(
                shard_root,
                wal_path=wal_path,
                fsync_every=fsync_every,
                policy=policy,
                resident_segments=storage.resident_segments,
            )
            shards.append(pipeline.store)
            pipelines.append(pipeline)
    all_files: List[FileMetadata] = []
    for shard in shards:
        all_files.extend(shard.files)  # type: ignore[attr-defined]
    part = make_partitioner(
        all_files,
        len(shards),
        kind=partitioner,
        schema=schema,
        rank=config.lsi_rank,
        seed=config.seed,
        strategy=strategy,
        balance_fallback=balance_fallback,
    )
    return ShardRouter(shards, part, pipelines=pipelines, max_workers=max_workers)  # type: ignore[arg-type]


def build_shard_router(*args: object, **kwargs: object) -> ShardRouter:
    """Deprecated entry point: build a sharded deployment directly.

    Prefer the unified client front door — ``repro.api.connect`` with a
    :class:`~repro.api.spec.DeploymentSpec` of topology ``"sharded"`` (or
    ``"sharded_replicated"``) — which returns a
    :class:`~repro.api.client.Client` with request options and a uniform
    response envelope.  This wrapper keeps every legacy call-site working
    unchanged; it forwards verbatim.
    """
    warnings.warn(
        "build_shard_router is deprecated; use repro.api.connect with a "
        "DeploymentSpec(topology='sharded') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_shard_router(*args, **kwargs)
