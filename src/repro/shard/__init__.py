"""Horizontal sharding: many SmartStore deployments behind one router.

SmartStore decentralises metadata *within* one deployment; this package
scales *across* deployments, the way the paper's "heavy traffic" setting
demands:

``repro.shard.partitioner``
    :class:`SemanticShardPartitioner` (LSI-space k-way split of the corpus,
    balanced and semantically coherent) and :class:`HashShardPartitioner`
    (stable file-id modulo fallback), plus :func:`corpus_index_bounds`, the
    corpus-wide normalisation bounds every shard must be built with.
``repro.shard.router``
    :class:`ShardRouter` — scatter-gather point/range/top-k execution over
    the shards with exact summary-based pruning (per-shard filename Bloom
    filters + index-space bounding boxes, a shared MaxD threshold shipped
    between shards for top-k), per-shard ingest pipelines (one WAL, overlay
    and compactor each) routed by ownership/partitioner, and full
    duck-compatibility with :class:`~repro.service.service.QueryService`.

``repro.shard.load``
    :class:`PartitionLoad` — the shared partition-skew model (population
    share, busy utilization, the degeneracy verdict) used identically by
    the live router, the reshard controller and the scaling benchmarks.
``repro.shard.reshard``
    :class:`ReshardController` — online elasticity: detects a degenerate
    partition from the router's live load report and repairs it without
    stopping the deployment.  The primary repair is a **rebalance**
    (refit the partitioner at fresh popularity-weighted quantiles,
    migrate misplaced files as WAL-logged delete+insert pairs, repack
    every store over its drained population); when the fresh cuts
    already match the placement it falls back to **splitting** the hot
    shard — backfilling the new shard through the replication mutation
    feed while the old owner keeps serving, then flipping ownership
    atomically under the router's topology write lock.  Either way the
    composite cache epoch grows arity (a global flush by construction)
    and paginated cursors survive by placement independence.

The correctness contract — sharded scatter-gather answers are
fingerprint-identical to an unsharded deployment over the union population
— is asserted by ``repro shard-bench`` and
``benchmarks/bench_shard_scaling.py``; the elasticity contract — a reshard
storm under mixed traffic loses no request and changes no answer, and the
rebalanced topology beats the degenerate one — by ``repro reshard-bench``
and ``benchmarks/bench_reshard.py``.

For availability, ``build_shard_router(...,
replication=ReplicationConfig(...))`` runs every shard as a
:class:`~repro.replication.group.ReplicaGroup` (1 primary + N replicas
with WAL-segment shipping and live failover); ``repro replica-bench``
asserts the same fingerprints survive killing every primary mid-workload.
"""

from repro.shard.load import PartitionLoad
from repro.shard.partitioner import (
    HashShardPartitioner,
    SemanticShardPartitioner,
    corpus_index_bounds,
    make_partitioner,
)
from repro.shard.reshard import ReshardController, ReshardOutcome, ReshardPolicy
from repro.shard.router import ShardRouter, ShardSummary, build_shard_router

__all__ = [
    "HashShardPartitioner",
    "PartitionLoad",
    "ReshardController",
    "ReshardOutcome",
    "ReshardPolicy",
    "SemanticShardPartitioner",
    "ShardRouter",
    "ShardSummary",
    "build_shard_router",
    "corpus_index_bounds",
    "make_partitioner",
]
