"""Horizontal sharding: many SmartStore deployments behind one router.

SmartStore decentralises metadata *within* one deployment; this package
scales *across* deployments, the way the paper's "heavy traffic" setting
demands:

``repro.shard.partitioner``
    :class:`SemanticShardPartitioner` (LSI-space k-way split of the corpus,
    balanced and semantically coherent) and :class:`HashShardPartitioner`
    (stable file-id modulo fallback), plus :func:`corpus_index_bounds`, the
    corpus-wide normalisation bounds every shard must be built with.
``repro.shard.router``
    :class:`ShardRouter` — scatter-gather point/range/top-k execution over
    the shards with exact summary-based pruning (per-shard filename Bloom
    filters + index-space bounding boxes, a shared MaxD threshold shipped
    between shards for top-k), per-shard ingest pipelines (one WAL, overlay
    and compactor each) routed by ownership/partitioner, and full
    duck-compatibility with :class:`~repro.service.service.QueryService`.

The correctness contract — sharded scatter-gather answers are
fingerprint-identical to an unsharded deployment over the union population
— is asserted by ``repro shard-bench`` and
``benchmarks/bench_shard_scaling.py``.

For availability, ``build_shard_router(...,
replication=ReplicationConfig(...))`` runs every shard as a
:class:`~repro.replication.group.ReplicaGroup` (1 primary + N replicas
with WAL-segment shipping and live failover); ``repro replica-bench``
asserts the same fingerprints survive killing every primary mid-workload.
"""

from repro.shard.partitioner import (
    HashShardPartitioner,
    SemanticShardPartitioner,
    corpus_index_bounds,
    make_partitioner,
)
from repro.shard.router import ShardRouter, ShardSummary, build_shard_router

__all__ = [
    "HashShardPartitioner",
    "SemanticShardPartitioner",
    "ShardRouter",
    "ShardSummary",
    "build_shard_router",
    "corpus_index_bounds",
    "make_partitioner",
]
