"""Reshard-storm equivalence + throughput harness behind ``repro reshard-bench``.

PR 8's scaling bench could *diagnose* the degenerate seed-42 partition
(51% of the corpus on one shard, 0.99x "speedup"); this harness proves the
:class:`~repro.shard.reshard.ReshardController` *repairs* it live, the
same way ``replica-bench`` proves failover is invisible:

1. an **unsharded baseline** answers the mixed workload through the usual
   three phases (pre-mutation, mutations in flight, drained), producing
   reference fingerprints for the first cycle;
2. a **deliberately degenerate router** (the legacy weighted cuts,
   ``balance_fallback=False``) runs the identical cycle — every
   fingerprint must match, and its measured utilization/speedup document
   the bug being repaired;
3. a **reshard storm**: reader threads hammer the router with the full
   query mix while the main thread interleaves a second mutation stream
   with *unforced* controller passes — :meth:`ReshardController.run_once`
   fires on the real degeneracy verdict (the busy accounting the first
   cycle left behind), recuts, migrates and repacks under live
   concurrent traffic, then sits out its cooldown instead of flapping
   on the thin post-reset busy sample.  Gates: **zero failed requests**
   and at least one reshard actually performed;
4. a **second cycle** against the baseline brought to the identical
   population: every fingerprint must *still* match (placement changed,
   answers did not), and the rebalanced topology must clear the
   utilization and scatter-speedup floors the degenerate build failed
   (CLI defaults: > 0.55 effective utilization and > 1.3x vs the
   unsharded baseline, against the bug's 0.51 / ~1.0x).

Throughput is the same simulated busy-time currency every other bench
uses: a cluster of independent shards sustains ``queries /
busy-time-of-the-busiest-shard``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.shard.benchmarking import PHASES, _run_phases, _workload
from repro.shard.load import PartitionLoad
from repro.shard.reshard import ReshardController, ReshardPolicy
from repro.shard.router import ShardRouter, _build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = [
    "ReshardCycleRow",
    "ReshardStormStats",
    "ReshardBenchReport",
    "run_reshard_bench",
]


@dataclass
class ReshardCycleRow:
    """Measurements for one full three-phase cycle of the router."""

    cycle: str
    shards: int
    identical: bool
    busy_makespan: float
    scatter_qps: float
    speedup: float
    populations: List[int] = field(default_factory=list)
    shard_busy: List[float] = field(default_factory=list)

    @property
    def load(self) -> PartitionLoad:
        return PartitionLoad(
            shards=self.shards,
            populations=list(self.populations),
            busy_seconds=list(self.shard_busy),
        )

    @property
    def utilization(self) -> float:
        return self.load.busy_utilization

    @property
    def degenerate(self) -> bool:
        return self.load.degenerate

    def as_table_row(self) -> List[str]:
        return [
            self.cycle,
            f"{self.shards}",
            f"{self.busy_makespan * 1e3:.2f}",
            f"{self.scatter_qps:.0f}",
            f"{self.speedup:.2f}x",
            f"{self.utilization:.2f}" + ("!" if self.degenerate else ""),
            "yes" if self.identical else "NO",
        ]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "shards": self.shards,
            "identical": self.identical,
            "busy_makespan": self.busy_makespan,
            "scatter_qps": self.scatter_qps,
            "speedup": self.speedup,
            "utilization": self.utilization,
            "degenerate": self.degenerate,
            "populations": list(self.populations),
            "shard_busy": list(self.shard_busy),
        }


@dataclass
class ReshardStormStats:
    """What happened while the controller resharded under live traffic."""

    requests: int = 0
    failed_requests: int = 0
    writes: int = 0
    actions: int = 0
    splits: int = 0
    rebalances: int = 0
    moved: int = 0
    wall_seconds: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "failed_requests": self.failed_requests,
            "writes": self.writes,
            "actions": self.actions,
            "splits": self.splits,
            "rebalances": self.rebalances,
            "moved": self.moved,
            "wall_seconds": self.wall_seconds,
        }


@dataclass
class ReshardBenchReport:
    """Everything the CLI / benchmark needs to print and gate on."""

    rows: List[ReshardCycleRow]
    storm: ReshardStormStats
    gates: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def row(self, cycle: str) -> Optional[ReshardCycleRow]:
        return next((r for r in self.rows if r.cycle == cycle), None)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows": [r.as_dict() for r in self.rows],
            "storm": self.storm.as_dict(),
            "gates": dict(self.gates),
            "passed": self.passed,
        }


def _mutation_stream(
    corpus: Sequence[FileMetadata],
    schema: AttributeSchema,
    n_mutations: int,
    seed: int,
) -> List[Tuple[str, FileMetadata]]:
    """The shard-bench mutation mix (insert-heavy, a third deletes, a
    sixth modifies) generated over ``corpus`` — pass the *live* corpus so
    deletes and modifies always target existing files."""
    generator = QueryWorkloadGenerator(list(corpus), schema, seed=seed)
    n_del = n_mutations // 3
    n_mod = n_mutations // 6
    return generator.mutation_stream(n_mutations - n_del - n_mod, n_del, n_mod)


def _storm(
    router: ShardRouter,
    controller: ReshardController,
    queries: Sequence[Any],
    mutations: Sequence[Tuple[str, FileMetadata]],
    *,
    readers: int,
    rounds: int,
) -> ReshardStormStats:
    """Mixed read/write traffic with controller passes interleaved.

    Reader threads loop the query mix (each starting at a different
    offset) until the storm ends; the main thread alternates mutation
    chunks with unforced ``run_once()`` — the controller acts on the
    real degeneracy verdict, then cools down rather than re-judging the
    fresh placement on a thin busy sample (forcing a pass on a balanced
    partition would *manufacture* churn, and a forced fallback split
    through the Zipf-hot head measurably hurts).  Reader results
    are *not* fingerprint-checked here — they race live migrations by
    design — but every single request must complete; the equivalence
    gate is the full second cycle that follows the storm.
    """
    stats = ReshardStormStats()
    stop = threading.Event()
    counts = [0] * max(0, readers)
    errors: List[BaseException] = []

    def read_loop(idx: int) -> None:
        position = idx
        while not stop.is_set():
            query = queries[position % len(queries)]
            position += 1
            try:
                router.execute(query)
            except BaseException as exc:  # any failure fails the gate
                errors.append(exc)
                return
            counts[idx] += 1

    threads = [
        threading.Thread(target=read_loop, args=(i,), daemon=True)
        for i in range(max(0, readers))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    try:
        rounds = max(1, rounds)
        mutations = list(mutations)
        chunk = max(1, -(-len(mutations) // rounds)) if mutations else 0
        for round_index in range(rounds):
            batch = (
                mutations[round_index * chunk : (round_index + 1) * chunk]
                if chunk
                else []
            )
            for kind, file in batch:
                getattr(router, kind)(file)
                stats.writes += 1
            outcome = controller.run_once()
            if outcome.performed:
                stats.actions += 1
                stats.moved += outcome.moved
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30.0)
    stats.wall_seconds = time.perf_counter() - started
    stats.requests = sum(counts)
    stats.failed_requests = len(errors)
    stats.splits = controller.splits
    stats.rebalances = controller.rebalances
    return stats


def run_reshard_bench(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    num_shards: int = 4,
    *,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    queries_per_type: int = 8,
    n_mutations: int = 45,
    workload_seed: int = 13,
    storm_readers: int = 4,
    storm_rounds: int = 2,
    min_utilization: float = 0.55,
    min_speedup: float = 1.3,
    policy: Optional[ReshardPolicy] = None,
    max_workers: Optional[int] = None,
) -> ReshardBenchReport:
    """Run the degenerate cycle, the reshard storm, and the repaired cycle.

    The router is built with the *legacy* weighted cuts
    (``balance_fallback=False``) so the degenerate partition the
    controller must repair is reproduced on purpose — on the CLI-default
    seed-42/16-unit corpus that build measures ~0.51 utilization and a
    ~1.0x "speedup".
    """
    files = list(files)
    points, complex_mix = _workload(files, schema, queries_per_type, workload_seed)
    n_complex = len(complex_mix) * len(PHASES)
    mutations_1 = _mutation_stream(files, schema, n_mutations, workload_seed + 1)

    baseline = SmartStore.build(files, config, schema)
    baseline_pipe = IngestPipeline(baseline)
    reference_1, _, _, base_busy_1 = _run_phases(
        baseline, baseline_pipe, points, complex_mix, mutations_1
    )

    router = _build_shard_router(
        files,
        num_shards,
        config,
        schema,
        max_workers=max_workers,
        balance_fallback=False,
    )
    controller = ReshardController(router, policy)
    report = ReshardBenchReport(rows=[], storm=ReshardStormStats())
    try:
        # ---- cycle 1: the degenerate build, fingerprint-gated
        prints_1, _, _, busy_1 = _run_phases(
            router, router, points, complex_mix, mutations_1
        )
        identical_1 = True
        for phase in PHASES:
            ok = prints_1[phase] == reference_1[phase]
            report.gates[f"degenerate cycle: {phase} identical"] = ok
            identical_1 = identical_1 and ok
        makespan_1 = max(busy_1)
        report.rows.append(
            ReshardCycleRow(
                cycle="degenerate",
                shards=router.num_shards,
                identical=identical_1,
                busy_makespan=makespan_1,
                scatter_qps=n_complex / makespan_1 if makespan_1 > 0 else 0.0,
                speedup=(base_busy_1[0] / makespan_1) if makespan_1 > 0 else 0.0,
                populations=[
                    len(pipe.materialized_files()) for pipe in router.pipelines
                ],
                shard_busy=list(busy_1),
            )
        )

        # ---- the storm: live resharding under mixed read/write traffic
        live = baseline_pipe.materialized_files()
        storm_mutations = _mutation_stream(
            live, schema, n_mutations, workload_seed + 2
        )
        report.storm = _storm(
            router,
            controller,
            list(points) + list(complex_mix),
            storm_mutations,
            readers=storm_readers,
            rounds=storm_rounds,
        )
        report.gates["storm: zero failed requests"] = (
            report.storm.failed_requests == 0
        )
        report.gates["storm: reshard performed"] = report.storm.actions >= 1
        # Bring the baseline to the identical population (storm writes
        # replay in order; reader traffic and reshards changed nothing).
        for kind, file in storm_mutations:
            getattr(baseline_pipe, kind)(file)
        baseline_pipe.compactor.drain()
        router.compactor.drain()

        # ---- cycle 2: the repaired topology, fingerprint- and perf-gated.
        # The storm's stream already mutated both sides to the identical
        # population; the cycle probes that state with an empty mutation
        # list so the measurement isolates the topology repair.
        reference_2, _, _, base_busy_2 = _run_phases(
            baseline, baseline_pipe, points, complex_mix, []
        )
        prints_2, _, _, busy_2 = _run_phases(
            router, router, points, complex_mix, []
        )
        identical_2 = True
        for phase in PHASES:
            ok = prints_2[phase] == reference_2[phase]
            report.gates[f"rebalanced cycle: {phase} identical"] = ok
            identical_2 = identical_2 and ok
        makespan_2 = max(busy_2)
        row_2 = ReshardCycleRow(
            cycle="rebalanced",
            shards=router.num_shards,
            identical=identical_2,
            busy_makespan=makespan_2,
            scatter_qps=n_complex / makespan_2 if makespan_2 > 0 else 0.0,
            speedup=(base_busy_2[0] / makespan_2) if makespan_2 > 0 else 0.0,
            populations=[
                len(pipe.materialized_files()) for pipe in router.pipelines
            ],
            shard_busy=list(busy_2),
        )
        report.rows.append(row_2)
        report.gates[
            f"rebalanced: utilization > {min_utilization:.2f}"
        ] = row_2.utilization > min_utilization
        report.gates[
            f"rebalanced: speedup > {min_speedup:.1f}x"
        ] = row_2.speedup > min_speedup
    finally:
        controller.stop()
        router.close()
    return report
