"""Shared shard-scaling harness: equivalence gates + throughput ablation.

Used by the ``shard-bench`` CLI subcommand, the CI shard-path smoke job and
``benchmarks/bench_shard_scaling.py`` so all three run exactly the same
loop:

1. an **unsharded baseline** (one SmartStore with a volatile ingest
   pipeline) answers a mixed point/range/top-k workload in three phases —
   before any mutation, with a mutation stream *staged but uncompacted*
   (in flight), and after a full drain — producing the reference result
   fingerprints;
2. for every requested shard count a :class:`~repro.shard.router.ShardRouter`
   runs the identical workload and mutation stream through the identical
   phases; every single query's fingerprint must match the baseline's
   (**scatter-gather equivalence gate**);
3. throughput of the range/top-k mix is recorded per shard count.  The
   headline quantity is **scatter-gather throughput**: shards are
   independent deployments, so the cluster sustains
   ``queries / busy-time-of-the-busiest-shard`` — the same simulated-cost
   currency every latency figure in this repository uses (a single python
   process cannot exhibit the wall-clock parallelism of N machines, but
   the cost model accounts each shard's work exactly).  Per-query wall
   clock is reported alongside.  The speedup gate compares the largest
   shard count against the single-shard deployment of the same total size.

The deployments use an exhaustive ``search_breadth`` so that the bounded
search scope of the paper's default configuration cannot masquerade as a
sharding bug — the comparison is exact, not statistical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.service.cache import result_fingerprint
from repro.shard.load import PartitionLoad
from repro.shard.router import _build_shard_router
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = ["ShardScalingRow", "ShardScalingReport", "run_shard_scaling"]

#: The three workload phases every deployment is probed in.
PHASES = ("pre-mutation", "mutations in flight", "drained")


@dataclass
class ShardScalingRow:
    """Measurements for one shard count."""

    shards: int
    build_seconds: float
    complex_seconds: float      # wall clock of the range/top-k mix (3 phases)
    busy_makespan: float        # simulated busy time of the busiest shard
    scatter_qps: float          # complex queries / busy_makespan
    mutations_per_second: float
    shards_contacted: int
    shards_pruned: int
    identical: bool
    shard_populations: List[int] = field(default_factory=list)
    shard_busy: List[float] = field(default_factory=list)

    @property
    def load(self) -> PartitionLoad:
        """This row's measurements as the shared partition-load model.

        The degeneracy verdict lives in :class:`~repro.shard.load
        .PartitionLoad` (shared with the router's ``load_report()`` and
        the reshard controller) so the bench, the live router and the
        elasticity loop can never disagree about what "too skewed" means.
        """
        return PartitionLoad(
            shards=self.shards,
            populations=list(self.shard_populations),
            busy_seconds=list(self.shard_busy),
        )

    @property
    def population_share(self) -> float:
        """Largest shard's fraction of the corpus (1/shards = balanced)."""
        return self.load.population_share

    @property
    def busy_share(self) -> float:
        """Busiest shard's fraction of total simulated busy time."""
        return self.load.busy_share

    @property
    def busy_utilization(self) -> float:
        """Effective parallelism as a fraction of the shard count
        (see :attr:`PartitionLoad.busy_utilization`)."""
        return self.load.busy_utilization

    @property
    def degenerate(self) -> bool:
        """Delegates to :attr:`PartitionLoad.degenerate` — the one shared
        definition of "too skewed for this row's throughput to mean
        anything"."""
        return self.load.degenerate

    def as_table_row(self, speedup: Optional[float] = None) -> List[str]:
        return [
            f"{self.shards}",
            f"{self.build_seconds:.2f}",
            f"{self.complex_seconds:.3f}",
            f"{self.busy_makespan * 1e3:.2f}",
            f"{self.scatter_qps:.0f}",
            "-" if speedup is None else f"{speedup:.2f}x",
            f"{self.mutations_per_second:.0f}",
            f"{self.shards_pruned}/{self.shards_contacted + self.shards_pruned}",
            f"{self.busy_share:.0%}" + ("!" if self.degenerate else ""),
            "yes" if self.identical else "NO",
        ]


@dataclass
class ShardScalingReport:
    """Everything the CLI / benchmark needs to print and gate on."""

    rows: List[ShardScalingRow]
    gates: Dict[str, bool] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """All equivalence gates hold (throughput is reported, not gated here)."""
        return all(self.gates.values())

    def speedup_of(self, shards: int) -> Optional[float]:
        """Scatter throughput of ``shards`` relative to the single-shard row."""
        base = next((r for r in self.rows if r.shards == 1), None)
        row = next((r for r in self.rows if r.shards == shards), None)
        if base is None or row is None or base.scatter_qps <= 0:
            return None
        return row.scatter_qps / base.scatter_qps

    @property
    def best_speedup(self) -> Optional[float]:
        return self.speedup_of(max(r.shards for r in self.rows)) if self.rows else None


def _workload(
    files: Sequence[FileMetadata],
    schema: AttributeSchema,
    queries_per_type: int,
    seed: int,
) -> Tuple[List[Any], List[Any]]:
    """(point queries, range/top-k mix) over the corpus."""
    generator = QueryWorkloadGenerator(files, schema, seed=seed)
    points = generator.point_queries(queries_per_type, existing_fraction=0.8)
    complex_mix = generator.mixed_complex_queries(
        queries_per_type, queries_per_type, k=8, distribution="zipf"
    )
    return points, complex_mix


def _run_phases(
    target: Any,
    mutator: Any,
    points: Sequence[Any],
    complex_mix: Sequence[Any],
    mutations: Sequence[Tuple[str, FileMetadata]],
) -> Tuple[Dict[str, List[str]], float, float, List[float]]:
    """Drive one deployment through the three phases.

    ``target`` answers ``execute(query)``; ``mutator`` quacks like an
    ingest pipeline (``insert``/``delete``/``modify`` + ``compactor``).
    Returns per-phase fingerprints, the range/top-k and mutation wall
    clocks, and the per-shard simulated busy time of the range/top-k
    segment (``[total]`` for an unsharded target).
    """
    fingerprints: Dict[str, List[str]] = {}
    complex_wall = 0.0
    mutation_wall = 0.0
    tracks_busy = hasattr(target, "shard_busy_seconds")
    complex_busy = [0.0] * (len(target.shards) if tracks_busy else 1)

    def probe(phase: str) -> None:
        nonlocal complex_wall
        prints: List[str] = []
        for query in points:
            prints.append(result_fingerprint(target.execute(query)))
        before: List[float] = list(target.shard_busy_seconds) if tracks_busy else []
        started = time.perf_counter()
        for query in complex_mix:
            result = target.execute(query)
            prints.append(result_fingerprint(result))
            if not tracks_busy:
                complex_busy[0] += result.latency
        complex_wall += time.perf_counter() - started
        if tracks_busy:
            for sid, busy in enumerate(target.shard_busy_seconds):
                complex_busy[sid] += busy - before[sid]
        fingerprints[phase] = prints

    probe(PHASES[0])
    started = time.perf_counter()
    for kind, file in mutations:
        getattr(mutator, kind)(file)
    mutation_wall = time.perf_counter() - started
    probe(PHASES[1])
    mutator.compactor.drain()
    probe(PHASES[2])
    return fingerprints, complex_wall, mutation_wall, complex_busy


def run_shard_scaling(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    shard_counts: Sequence[int],
    *,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    queries_per_type: int = 8,
    n_mutations: int = 60,
    partitioner: str = "semantic",
    workload_seed: int = 13,
    max_workers: Optional[int] = None,
) -> ShardScalingReport:
    """Run the scatter-gather equivalence + scaling ablation.

    ``config.num_units`` is the total storage-unit budget; every shard
    count splits the same budget (a 4-shard router fields 4 stores of
    ``num_units/4`` units each), so throughput differences come from
    routing and locality, not from extra hardware.
    """
    files = list(files)
    points, complex_mix = _workload(files, schema, queries_per_type, workload_seed)
    generator = QueryWorkloadGenerator(files, schema, seed=workload_seed + 1)
    n_del = n_mutations // 3
    n_mod = n_mutations // 6
    mutations = generator.mutation_stream(n_mutations - n_del - n_mod, n_del, n_mod)

    baseline = SmartStore.build(files, config, schema)
    baseline_pipeline = IngestPipeline(baseline)
    reference, _, _, _ = _run_phases(
        baseline, baseline_pipeline, points, complex_mix, mutations
    )

    report = ShardScalingReport(rows=[])
    for count in shard_counts:
        started = time.perf_counter()
        router = _build_shard_router(
            files,
            count,
            config,
            schema,
            partitioner=partitioner,
            max_workers=max_workers,
        )
        build_seconds = time.perf_counter() - started
        try:
            fingerprints, complex_wall, mutation_wall, busy = _run_phases(
                router, router, points, complex_mix, mutations
            )
            identical = True
            for phase in PHASES:
                ok = fingerprints[phase] == reference[phase]
                report.gates[f"{count} shard(s): {phase} identical"] = ok
                identical = identical and ok
            stats = router.stats()
            makespan = max(busy)
            n_complex = len(complex_mix) * len(PHASES)
            # Build-time population per shard: how evenly the partitioner
            # split the corpus (post-mutation drift is second-order for a
            # 60-op stream and doesn't change the degeneracy verdict).
            labels = router.partitioner.assign(files)
            populations = [int((labels == sid).sum()) for sid in range(count)]
            report.rows.append(
                ShardScalingRow(
                    shards=count,
                    build_seconds=build_seconds,
                    complex_seconds=complex_wall,
                    busy_makespan=makespan,
                    scatter_qps=n_complex / makespan if makespan > 0 else 0.0,
                    mutations_per_second=len(mutations) / mutation_wall
                    if mutation_wall > 0
                    else 0.0,
                    shards_contacted=int(stats["shards_contacted"]),
                    shards_pruned=int(stats["shards_pruned"]),
                    identical=identical,
                    shard_populations=populations,
                    shard_busy=list(busy),
                )
            )
        finally:
            router.close()
    return report
