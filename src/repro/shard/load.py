"""Partition-load accounting shared by the router, the reshard controller
and the scaling benchmarks.

:class:`PartitionLoad` is the degeneracy verdict PR 8 shipped inside the
bench-only ``ShardScalingRow`` promoted to first-class shared code: the
router snapshots one from its live per-shard population/busy accounting
(:meth:`~repro.shard.router.ShardRouter.load_report`), the
:class:`~repro.shard.reshard.ReshardController` decides *when to split*
from it, and the bench rows delegate their ``degenerate`` property to it —
one definition of "this partition is too skewed to mean anything", used
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["PartitionLoad", "DEGENERATE_UTILIZATION"]

#: A partition whose effective cluster utilization is at or below this
#: fraction of the shard count is degenerate: scatter throughput measures
#: the one hot shard, not N machines.
DEGENERATE_UTILIZATION = 0.55


@dataclass(frozen=True)
class PartitionLoad:
    """One snapshot of how load and population spread across the shards.

    ``populations`` is the live per-shard record count; ``busy_seconds``
    the simulated busy time each shard accumulated answering its part of
    the scatter-gather work (the scatter-throughput denominator is the
    busiest shard).  Either list may be all zeros when nothing has been
    measured yet — the properties degrade gracefully.
    """

    shards: int
    populations: List[int] = field(default_factory=list)
    busy_seconds: List[float] = field(default_factory=list)

    @property
    def population_share(self) -> float:
        """Largest shard's fraction of the corpus (1/shards = balanced)."""
        total = sum(self.populations)
        return max(self.populations) / total if total else 0.0

    @property
    def busy_share(self) -> float:
        """Busiest shard's fraction of total simulated busy time."""
        total = sum(self.busy_seconds)
        return max(self.busy_seconds) / total if total > 0 else 0.0

    @property
    def busy_utilization(self) -> float:
        """Effective parallelism as a fraction of the shard count.

        ``sum(busy) / max(busy)`` is how many shards' worth of capacity the
        workload actually exercised (the scatter-throughput denominator is
        the busiest shard); dividing by ``shards`` normalises it to 1.0 =
        perfectly level.
        """
        peak = max(self.busy_seconds) if self.busy_seconds else 0.0
        if peak <= 0 or self.shards <= 0:
            return 0.0
        return sum(self.busy_seconds) / peak / self.shards

    @property
    def population_cap(self) -> float:
        """The degeneracy threshold on one shard's population share."""
        return min(0.9, 2.0 / self.shards) if self.shards > 0 else 1.0

    @property
    def degenerate(self) -> bool:
        """The partition is too skewed for its throughput to mean
        anything: the cluster ran at barely half capacity (or worse), so
        scatter throughput measures the one hot shard, not N machines.
        Happens when the corpus is too small or too clustered for the
        shard count — e.g. the CLI-default seed-42, 16-unit corpus split 4
        ways with the legacy weighted cuts concentrated 51% of the corpus
        and 49% of busy time on one shard and measured a 0.99x "speedup".
        """
        if self.shards <= 1:
            return False
        if self.populations and min(self.populations) == 0:
            return True
        if self.busy_seconds and max(self.busy_seconds) > 0:
            if self.busy_utilization <= DEGENERATE_UTILIZATION:
                return True
        return self.population_share >= self.population_cap

    def hottest_shard(self) -> Optional[int]:
        """The shard a rebalance should split first, picked by whichever
        degeneracy criterion is firing: the most populated shard when the
        population share trips the cap (a structural imbalance no amount
        of traffic redistributes), otherwise the busiest shard, otherwise
        the most populated."""
        if self.populations and self.population_share >= self.population_cap:
            return max(
                range(len(self.populations)), key=lambda s: self.populations[s]
            )
        if self.busy_seconds and max(self.busy_seconds) > 0:
            return max(
                range(len(self.busy_seconds)), key=lambda s: self.busy_seconds[s]
            )
        if self.populations:
            return max(
                range(len(self.populations)), key=lambda s: self.populations[s]
            )
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "shards": self.shards,
            "populations": list(self.populations),
            "busy_seconds": list(self.busy_seconds),
            "population_share": self.population_share,
            "busy_share": self.busy_share,
            "busy_utilization": self.busy_utilization,
            "degenerate": self.degenerate,
        }
