"""Tabular experiment results: CSV and Markdown writers/readers.

The benchmark harness prints its tables through
:func:`repro.eval.reporting.format_table`; this module provides the durable
counterpart — a small :class:`ResultTable` value object plus CSV/Markdown
serialisation — so sweeps can be post-processed (plotted, diffed against the
paper's numbers) without scraping pytest output.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

__all__ = ["ResultTable", "write_csv", "read_csv", "write_markdown"]

PathLike = Union[str, Path]


@dataclass
class ResultTable:
    """A named table of experiment results.

    Attributes
    ----------
    name:
        Identifier of the experiment (e.g. ``"table4_query_latency_msn"``).
    columns:
        Column headers.
    rows:
        Row values; every row must have exactly ``len(columns)`` cells.
        Cells may be numbers or strings.
    metadata:
        Free-form annotations (trace name, TIF, seed, ...), stored as
        ``# key: value`` comment lines in the CSV serialisation.
    """

    name: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError("a result table needs at least one column")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row {row!r} has {len(row)} cells but the table has "
                    f"{len(self.columns)} columns"
                )

    def add_row(self, *cells: object) -> None:
        """Append one row (cell count must match the columns)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[object]:
        """Values of one column, by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def write_csv(table: ResultTable, path: PathLike) -> None:
    """Write a :class:`ResultTable` as CSV (metadata as ``#`` comments)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as fh:
        for key, value in sorted(table.metadata.items()):
            fh.write(f"# {key}: {value}\n")
        fh.write(f"# table: {table.name}\n")
        writer = csv.writer(fh)
        writer.writerow(table.columns)
        for row in table.rows:
            writer.writerow(row)


def _coerce(cell: str) -> object:
    """Best-effort numeric coercion when reading CSV back."""
    try:
        value = float(cell)
    except ValueError:
        return cell
    if value.is_integer() and "." not in cell and "e" not in cell.lower():
        return int(value)
    return value


def read_csv(path: PathLike) -> ResultTable:
    """Read a CSV written by :func:`write_csv` back into a :class:`ResultTable`."""
    path = Path(path)
    metadata: Dict[str, object] = {}
    name = path.stem
    data_lines: List[str] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            if line.startswith("#"):
                body = line[1:].strip()
                if ":" in body:
                    key, value = body.split(":", 1)
                    key, value = key.strip(), value.strip()
                    if key == "table":
                        name = value
                    else:
                        metadata[key] = _coerce(value)
                continue
            if line.strip():
                data_lines.append(line)
    if not data_lines:
        raise ValueError(f"{path} contains no tabular data")
    reader = csv.reader(data_lines)
    header = next(reader)
    rows = [[_coerce(cell) for cell in row] for row in reader]
    return ResultTable(name=name, columns=list(header), rows=rows, metadata=metadata)


def write_markdown(table: ResultTable, path: PathLike) -> None:
    """Write a :class:`ResultTable` as a GitHub-flavoured Markdown table."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    widths = [
        max(len(str(c)), *(len(str(row[i])) for row in table.rows)) if table.rows else len(str(c))
        for i, c in enumerate(table.columns)
    ]

    def fmt_row(cells: Sequence[object]) -> str:
        return "| " + " | ".join(str(c).ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = [f"### {table.name}", ""]
    lines.extend(f"*{k}*: {v}  " for k, v in sorted(table.metadata.items()))
    if table.metadata:
        lines.append("")
    lines.append(fmt_row(table.columns))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in table.rows)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
