"""Deployment snapshots: the physical layout of a built SmartStore.

A snapshot records *where everything ended up* after a build — which files
each storage unit holds, the shape of the semantic R-tree, which servers
host which index units, and the configuration that produced it.  It exists
for inspection, debugging and regression comparison (two builds from the
same inputs should produce the same layout), not as a replacement for
rebuilding: the in-memory structures (LSI model, Bloom filters) are cheap to
reconstruct from the file population with :meth:`SmartStore.build`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.persistence.jsonl import schema_from_dict, schema_to_dict

__all__ = [
    "DeploymentSnapshot",
    "snapshot_deployment",
    "save_snapshot",
    "load_snapshot",
    "config_to_dict",
    "config_from_dict",
]

PathLike = Union[str, Path]

SNAPSHOT_FORMAT = "repro.snapshot"
SNAPSHOT_VERSION = 1


@dataclass
class DeploymentSnapshot:
    """A serialisable description of a built deployment.

    Attributes
    ----------
    config:
        The :class:`~repro.core.smartstore.SmartStoreConfig` fields that
        shaped the build (cost-model constants are flattened in).
    schema:
        The attribute schema, as produced by
        :func:`~repro.persistence.jsonl.schema_to_dict`.
    placement:
        ``unit_id -> sorted list of file ids`` stored on that unit.
    tree_nodes:
        One entry per semantic R-tree node: id, level, parent, children,
        hosting server, replica hosts, file count and MBR bounds.
    stats:
        The deployment's :meth:`SmartStore.stats` output at snapshot time.
    """

    config: Dict[str, object]
    schema: Dict[str, object]
    placement: Dict[int, List[int]]
    tree_nodes: List[Dict[str, object]]
    stats: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ derived views
    @property
    def num_units(self) -> int:
        return len(self.placement)

    @property
    def num_files(self) -> int:
        return sum(len(v) for v in self.placement.values())

    def unit_of_file(self, file_id: int) -> Optional[int]:
        """The storage unit holding ``file_id`` (linear scan; for tests/tools)."""
        for unit_id, ids in self.placement.items():
            if file_id in ids:
                return unit_id
        return None

    def node_by_id(self, node_id: int) -> Optional[Dict[str, object]]:
        for node in self.tree_nodes:
            if node["node_id"] == node_id:
                return node
        return None

    def same_layout_as(self, other: "DeploymentSnapshot") -> bool:
        """True when both snapshots place every file on the same unit and
        build an identical tree topology (ignoring runtime stats)."""
        if self.placement != other.placement:
            return False
        def topo(nodes: Sequence[Dict[str, object]]):
            return sorted(
                (n["node_id"], n["level"], n["parent"], tuple(sorted(n["children"])))
                for n in nodes
            )
        return topo(self.tree_nodes) == topo(other.tree_nodes)

    # ------------------------------------------------------------------ (de)serialisation
    def to_dict(self) -> Dict[str, object]:
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "config": self.config,
            "schema": self.schema,
            "placement": {str(k): v for k, v in self.placement.items()},
            "tree_nodes": self.tree_nodes,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DeploymentSnapshot":
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                f"not a deployment snapshot (format={payload.get('format')!r})"
            )
        return cls(
            config=dict(payload["config"]),  # type: ignore[arg-type]
            schema=dict(payload["schema"]),  # type: ignore[arg-type]
            placement={int(k): list(v) for k, v in dict(payload["placement"]).items()},  # type: ignore[arg-type]
            tree_nodes=list(payload["tree_nodes"]),  # type: ignore[arg-type]
            stats=dict(payload.get("stats", {})),  # type: ignore[arg-type]
        )

    def restore_schema(self):
        """Rebuild the :class:`~repro.metadata.attributes.AttributeSchema`."""
        return schema_from_dict(self.schema)


def config_to_dict(config: SmartStoreConfig) -> Dict[str, object]:
    """Serialise the JSON-safe fields of a build configuration.

    Cost-model constants and explicit threshold tuples are intentionally
    excluded (they default deterministically); everything a rebuild needs
    to reproduce the same deployment from the same population is kept.
    """
    payload: Dict[str, object] = {
        "num_units": config.num_units,
        "lsi_rank": config.lsi_rank,
        "max_fanout": config.max_fanout,
        "bloom_bits": config.bloom_bits,
        "bloom_hashes": config.bloom_hashes,
        "mode": config.mode,
        "versioning_enabled": config.versioning_enabled,
        "version_ratio": config.version_ratio,
        "lazy_update_threshold": config.lazy_update_threshold,
        "autoconfig_threshold": config.autoconfig_threshold,
        "admission_threshold": config.admission_threshold,
        "search_breadth": config.search_breadth,
        "seed": config.seed,
    }
    if config.thresholds is not None:
        payload["thresholds"] = list(config.thresholds)
    return payload


def config_from_dict(payload: Dict[str, object]) -> SmartStoreConfig:
    """Rebuild a :class:`SmartStoreConfig` from :func:`config_to_dict` output.

    Unknown keys are ignored so older artefacts survive config growth.
    """
    kwargs: Dict[str, object] = {
        key: payload[key]
        for key in (
            "num_units",
            "lsi_rank",
            "max_fanout",
            "bloom_bits",
            "bloom_hashes",
            "mode",
            "versioning_enabled",
            "version_ratio",
            "lazy_update_threshold",
            "autoconfig_threshold",
            "admission_threshold",
            "search_breadth",
            "seed",
        )
        if key in payload
    }
    if payload.get("thresholds") is not None:
        kwargs["thresholds"] = tuple(payload["thresholds"])  # type: ignore[arg-type]
    return SmartStoreConfig(**kwargs)  # type: ignore[arg-type]


def snapshot_deployment(store: SmartStore) -> DeploymentSnapshot:
    """Capture the layout of a built deployment."""
    config = config_to_dict(store.config)
    placement = {
        unit_id: sorted(f.file_id for f in store.cluster.server(unit_id).files)
        for unit_id in store.cluster.unit_ids()
    }
    tree_nodes: List[Dict[str, object]] = []
    for node in store.tree.nodes:
        tree_nodes.append(
            {
                "node_id": node.node_id,
                "level": node.level,
                "unit_id": node.unit_id,
                "parent": node.parent.node_id if node.parent is not None else None,
                "children": [c.node_id for c in node.children],
                "hosted_on": node.hosted_on,
                "replica_hosts": list(node.replica_hosts),
                "file_count": node.file_count,
                "mbr_lower": list(map(float, node.mbr.lower)) if node.mbr is not None else None,
                "mbr_upper": list(map(float, node.mbr.upper)) if node.mbr is not None else None,
            }
        )
    return DeploymentSnapshot(
        config=config,
        schema=schema_to_dict(store.schema),
        placement=placement,
        tree_nodes=tree_nodes,
        stats={k: v for k, v in store.stats().items()},
    )


def save_snapshot(snapshot: DeploymentSnapshot, path: PathLike) -> None:
    """Write a snapshot as (pretty-printed) JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(snapshot.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: PathLike) -> DeploymentSnapshot:
    """Load a snapshot written by :func:`save_snapshot`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        return DeploymentSnapshot.from_dict(json.load(fh))
