"""JSON-Lines serialisation of file populations, traces and schemas.

Format
------
Every file starts with a single header object identifying what follows::

    {"format": "repro.files", "version": 1, "count": 1250}
    {"path": "/msn/proj000/...", "file_id": 123, "attributes": {...}, "extra": {...}}
    ...

    {"format": "repro.trace", "version": 1, "name": "msn", "user_accounts": 32, ...}
    {"kind": "file", ...}          # the explicit file population, if any
    {"kind": "record", ...}        # the I/O records, in timestamp order

The header makes the files self-describing and lets the loaders fail fast on
the wrong artefact instead of mis-parsing it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.metadata.attributes import AttributeSchema, AttributeSpec
from repro.metadata.file_metadata import FileMetadata
from repro.traces.base import Trace, TraceRecord

__all__ = [
    "save_files",
    "load_files",
    "save_trace",
    "load_trace",
    "schema_to_dict",
    "schema_from_dict",
    "file_to_dict",
    "file_from_dict",
]

PathLike = Union[str, Path]

FILES_FORMAT = "repro.files"
TRACE_FORMAT = "repro.trace"
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------- schema
def schema_to_dict(schema: AttributeSchema) -> Dict[str, object]:
    """Serialise an attribute schema to a plain dictionary."""
    return {
        "attributes": [
            {"name": s.name, "kind": s.kind, "log_scale": s.log_scale, "unit": s.unit}
            for s in schema
        ]
    }


def schema_from_dict(payload: Dict[str, object]) -> AttributeSchema:
    """Rebuild an attribute schema from :func:`schema_to_dict` output."""
    specs = [
        AttributeSpec(
            name=str(item["name"]),
            kind=str(item.get("kind", "physical")),
            log_scale=bool(item.get("log_scale", False)),
            unit=str(item.get("unit", "")),
        )
        for item in payload["attributes"]  # type: ignore[index]
    ]
    return AttributeSchema(tuple(specs))


# ---------------------------------------------------------------------------- file metadata
def file_to_dict(file: FileMetadata) -> Dict[str, object]:
    """Serialise one metadata record."""
    return {
        "path": file.path,
        "file_id": file.file_id,
        "attributes": dict(file.attributes),
        "extra": dict(file.extra),
    }


def file_from_dict(payload: Dict[str, object]) -> FileMetadata:
    """Rebuild one metadata record."""
    return FileMetadata(
        path=str(payload["path"]),
        attributes={str(k): float(v) for k, v in dict(payload["attributes"]).items()},  # type: ignore[arg-type]
        file_id=int(payload["file_id"]) if payload.get("file_id") is not None else None,
        extra=dict(payload.get("extra", {})),  # type: ignore[arg-type]
    )


def save_files(files: Sequence[FileMetadata], path: PathLike) -> int:
    """Write a file population as JSON-Lines; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        header = {"format": FILES_FORMAT, "version": FORMAT_VERSION, "count": len(files)}
        fh.write(json.dumps(header) + "\n")
        for f in files:
            fh.write(json.dumps(file_to_dict(f)) + "\n")
    return len(files)


def load_files(path: PathLike) -> List[FileMetadata]:
    """Load a file population written by :func:`save_files`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("format") != FILES_FORMAT:
            raise ValueError(
                f"{path} is not a file-population artefact (format={header.get('format')!r})"
            )
        files = [file_from_dict(json.loads(line)) for line in fh if line.strip()]
    expected = header.get("count")
    if expected is not None and expected != len(files):
        raise ValueError(f"{path} declares {expected} records but contains {len(files)}")
    return files


# ---------------------------------------------------------------------------- traces
def _record_to_dict(record: TraceRecord) -> Dict[str, object]:
    return {
        "kind": "record",
        "timestamp": record.timestamp,
        "op": record.op,
        "path": record.path,
        "bytes": record.bytes,
        "user_id": record.user_id,
        "process_id": record.process_id,
    }


def _record_from_dict(payload: Dict[str, object]) -> TraceRecord:
    return TraceRecord(
        timestamp=float(payload["timestamp"]),
        op=str(payload["op"]),
        path=str(payload["path"]),
        bytes=float(payload.get("bytes", 0.0)),
        user_id=int(payload.get("user_id", 0)),
        process_id=int(payload.get("process_id", 0)),
    )


def save_trace(trace: Trace, path: PathLike) -> int:
    """Write a trace (file population + record stream); returns #lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "format": TRACE_FORMAT,
            "version": FORMAT_VERSION,
            "name": trace.name,
            "user_accounts": trace.user_accounts,
            "num_files": len(trace.files),
            "num_records": len(trace.records),
        }
        fh.write(json.dumps(header) + "\n")
        for f in trace.files:
            payload = file_to_dict(f)
            payload["kind"] = "file"
            fh.write(json.dumps(payload) + "\n")
            lines += 1
        for r in trace.records:
            fh.write(json.dumps(_record_to_dict(r)) + "\n")
            lines += 1
    return lines


def load_trace(path: PathLike) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path} is empty")
        header = json.loads(header_line)
        if header.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"{path} is not a trace artefact (format={header.get('format')!r})"
            )
        files: List[FileMetadata] = []
        records: List[TraceRecord] = []
        for line in fh:
            if not line.strip():
                continue
            payload = json.loads(line)
            if payload.get("kind") == "file":
                files.append(file_from_dict(payload))
            else:
                records.append(_record_from_dict(payload))
    return Trace(
        name=str(header.get("name", path.stem)),
        records=records,
        files=files,
        user_accounts=int(header.get("user_accounts", 0)),
    )
