"""Persistence: saving and loading populations, traces, schemas and results.

The reproduction is driven by synthetic traces, but real deployments (and
real experiments) need their inputs and outputs on disk: a trace generated
once should be replayable bit-for-bit, a deployment's layout should be
inspectable after the fact, and benchmark outputs should land somewhere a
plotting script can read.  Everything here uses plain JSON / JSON-Lines /
CSV so the artefacts remain readable without this package.

``repro.persistence.jsonl``
    File populations and traces as JSON-Lines (one record per line, with a
    single header line identifying the payload type).
``repro.persistence.snapshot``
    Deployment snapshots: the semantic R-tree layout, the file→unit
    placement and the build configuration of a :class:`~repro.core.smartstore.SmartStore`.
``repro.persistence.results``
    Tabular experiment results as CSV and Markdown.
"""

from repro.persistence.jsonl import (
    load_files,
    load_trace,
    save_files,
    save_trace,
    schema_from_dict,
    schema_to_dict,
)
from repro.persistence.results import ResultTable, read_csv, write_csv, write_markdown
from repro.persistence.snapshot import (
    DeploymentSnapshot,
    config_from_dict,
    config_to_dict,
    load_snapshot,
    save_snapshot,
    snapshot_deployment,
)

__all__ = [
    "save_files",
    "load_files",
    "save_trace",
    "load_trace",
    "schema_to_dict",
    "schema_from_dict",
    "DeploymentSnapshot",
    "snapshot_deployment",
    "save_snapshot",
    "load_snapshot",
    "config_to_dict",
    "config_from_dict",
    "ResultTable",
    "write_csv",
    "read_csv",
    "write_markdown",
]
