"""A from-scratch K-D tree over multi-dimensional points.

The tree is built once (bulk load, median split on the axis of largest
spread) and then queried; this matches how Spyglass uses K-D trees — each
namespace partition's index is rebuilt on its update schedule rather than
mutated in place.  Two query primitives are provided:

* :meth:`KDTree.range_search` — every point inside an axis-aligned box;
* :meth:`KDTree.knn` — the ``k`` nearest points to a query point
  (Euclidean), found by branch-and-bound with the splitting-plane distance
  as the pruning bound.

Like the other index substrates, the tree reports how many nodes each query
touched through an optional ``access_counter`` callback so the cost model
can charge it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["KDTree"]


class _Node:
    """One K-D tree node (leaf nodes hold point indices, internal nodes split)."""

    __slots__ = ("axis", "threshold", "left", "right", "indices")

    def __init__(self) -> None:
        self.axis: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.indices: Optional[np.ndarray] = None  # set only for leaves

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None


class KDTree:
    """A static K-D tree over an ``(n, d)`` point matrix.

    Parameters
    ----------
    points:
        The point matrix.  Payload association is by row index: queries
        return row indices into this matrix.
    leaf_size:
        Maximum number of points a leaf holds before it is split.
    access_counter:
        Optional callback invoked once per node visited during a query
        (used by the baselines to charge index accesses).
    """

    def __init__(
        self,
        points: np.ndarray,
        *,
        leaf_size: int = 16,
        access_counter: Optional[Callable[[int], None]] = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty (n, d) array, got shape {points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.leaf_size = leaf_size
        self.access_counter = access_counter
        self._node_count = 0
        self.root = self._build(np.arange(len(points)))

    # ------------------------------------------------------------------ construction
    def _build(self, indices: np.ndarray) -> _Node:
        node = _Node()
        self._node_count += 1
        if len(indices) <= self.leaf_size:
            node.indices = indices
            return node
        subset = self.points[indices]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        axis = int(np.argmax(spreads))
        if spreads[axis] == 0.0:
            # All points identical along every axis: cannot split further.
            node.indices = indices
            return node
        values = subset[:, axis]
        threshold = float(np.median(values))
        left_mask = values <= threshold
        # A degenerate median (all values on one side) falls back to a halving split.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(values, kind="stable")
            half = len(order) // 2
            left_mask = np.zeros(len(values), dtype=bool)
            left_mask[order[:half]] = True
            threshold = float(values[order[half - 1]])
        node.axis = axis
        node.threshold = threshold
        node.left = self._build(indices[left_mask])
        node.right = self._build(indices[~left_mask])
        return node

    # ------------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.points)

    @property
    def dimension(self) -> int:
        return self.points.shape[1]

    @property
    def node_count(self) -> int:
        return self._node_count

    def height(self) -> int:
        """Longest root-to-leaf path (a single-leaf tree has height 1)."""
        def depth(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + max(depth(node.left), depth(node.right))
        return depth(self.root)

    def _touch(self, count: int = 1) -> None:
        if self.access_counter is not None:
            self.access_counter(count)

    # ------------------------------------------------------------------ range search
    def range_search(self, lower: Sequence[float], upper: Sequence[float]) -> List[int]:
        """Row indices of every point inside the axis-aligned box."""
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        if lower.shape != (self.dimension,) or upper.shape != (self.dimension,):
            raise ValueError(
                f"bounds must have dimension {self.dimension}, got {lower.shape} and {upper.shape}"
            )
        if np.any(lower > upper):
            raise ValueError("every lower bound must not exceed its upper bound")
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            self._touch()
            if node.is_leaf:
                pts = self.points[node.indices]
                inside = np.all((pts >= lower) & (pts <= upper), axis=1)
                out.extend(int(i) for i in node.indices[inside])
                continue
            if lower[node.axis] <= node.threshold:
                stack.append(node.left)
            # ">=" (not ">"): the fallback halving split can leave points equal
            # to the threshold on the right side, so the boundary must descend
            # both ways to stay exact.
            if upper[node.axis] >= node.threshold:
                stack.append(node.right)
        return out

    # ------------------------------------------------------------------ k nearest neighbours
    def knn(self, query: Sequence[float], k: int) -> List[Tuple[int, float]]:
        """The ``k`` nearest points to ``query`` as ``(row index, distance)`` pairs.

        Results are sorted by ascending distance; fewer than ``k`` pairs are
        returned only when the tree holds fewer points.
        """
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dimension,):
            raise ValueError(f"query must have dimension {self.dimension}, got {query.shape}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")

        # Max-heap of (-distance, index) keeping the best k seen so far.
        best: List[Tuple[float, int]] = []

        def consider(indices: np.ndarray) -> None:
            pts = self.points[indices]
            dists = np.sqrt(((pts - query[None, :]) ** 2).sum(axis=1))
            for idx, dist in zip(indices, dists):
                if len(best) < k:
                    heapq.heappush(best, (-float(dist), int(idx)))
                elif dist < -best[0][0]:
                    heapq.heapreplace(best, (-float(dist), int(idx)))

        def visit(node: _Node) -> None:
            self._touch()
            if node.is_leaf:
                consider(node.indices)
                return
            diff = query[node.axis] - node.threshold
            near, far = (node.left, node.right) if diff <= 0 else (node.right, node.left)
            visit(near)
            # The far side can only help if the splitting plane is closer than
            # the current k-th best distance (or we have fewer than k yet).
            worst = -best[0][0] if len(best) == k else np.inf
            if abs(diff) <= worst:
                visit(far)

        visit(self.root)
        return sorted(((idx, -neg) for neg, idx in best), key=lambda pair: pair[1])

    def __repr__(self) -> str:
        return (
            f"KDTree(points={len(self.points)}, dim={self.dimension}, "
            f"nodes={self._node_count}, leaf_size={self.leaf_size})"
        )
