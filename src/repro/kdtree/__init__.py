"""K-D tree substrate.

Spyglass (§6.2), the closest related system, maps the namespace hierarchy
into multi-dimensional K-D trees partitioned by namespace subtree.  To make
that comparison concrete the reproduction carries its own K-D tree — a
median-split, axis-cycling implementation with box range search and
branch-and-bound k-NN, mirroring the capabilities the
:mod:`repro.rtree` substrate offers for the R-tree side.
"""

from repro.kdtree.kdtree import KDTree

__all__ = ["KDTree"]
