"""repro-lint: a project-specific static-analysis engine.

The repo's hot paths rest on a handful of cross-cutting invariants
(WAL-append-before-stage, cooperative deadline propagation, typed error
envelopes, span coverage, no blocking I/O under fine-grained locks) that
generic linters cannot see.  This engine parses every file under
``src/repro/`` once, hands the ASTs to a registry of project rules
(:mod:`repro.analysis.rules`), and reports :class:`Finding`\\ s.

Two escape hatches keep the lint honest without blocking development:

* **Suppression comments** — ``# repro-lint: disable=<rule>[,<rule>...]``
  on the finding's line (or the line directly above it) waives that
  finding.  Every suppression in committed code carries a one-line
  justification; the comment is the audit trail.
* **Ratchet baseline** — a committed JSON file
  (``src/repro/analysis/baseline.json``) records fingerprints of
  accepted pre-existing findings.  The lint gate fails only on findings
  *beyond* the baseline, so the count can ratchet down but never
  silently up.  Fingerprints are ``(rule, path, symbol)`` — line-number
  insensitive, so unrelated edits don't churn the baseline.

See ``docs/INVARIANTS.md`` for the invariant each rule guards.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # circular at runtime: rules.base imports this module
    from repro.analysis.rules.base import Rule

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

Fingerprint = Tuple[str, str, str]


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source line.

    ``symbol`` is the qualified name of the innermost enclosing function
    or class (``IngestPipeline.checkpoint``); together with ``rule`` and
    ``path`` it forms the line-insensitive baseline fingerprint.
    """

    rule: str
    path: str
    line: int
    symbol: str
    message: str

    @property
    def fingerprint(self) -> Fingerprint:
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        where = f" (in {self.symbol})" if self.symbol else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{where}"


class FileContext:
    """One parsed source file plus the lookup tables rules need."""

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        # Innermost-scope lookup: (start, end, qualname) per def/class.
        self._scopes: List[Tuple[int, int, str]] = []
        self._collect_scopes(self.tree, ())

    def _collect_scopes(self, node: ast.AST, stack: Tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = stack + (child.name,)
                end = getattr(child, "end_lineno", None) or child.lineno
                self._scopes.append((child.lineno, end, ".".join(qual)))
                self._collect_scopes(child, qual)
            else:
                self._collect_scopes(child, stack)

    def symbol_at(self, line: int) -> str:
        """Qualified name of the innermost def/class containing ``line``."""
        best = ""
        best_start = -1
        for start, end, qual in self._scopes:
            if start <= line <= end and start > best_start:
                best = qual
                best_start = start
        return best

    def suppressed_at(self, line: int) -> FrozenSet[str]:
        """Rules waived on ``line`` (or the line directly above it)."""
        names: List[str] = []
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                match = _SUPPRESS_RE.search(self.lines[lineno - 1])
                if match:
                    names.extend(
                        part.strip()
                        for part in match.group(1).split(",")
                        if part.strip()
                    )
        return frozenset(names)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            symbol=self.symbol_at(line),
            message=message,
        )


class Project:
    """Every parsed file under the lint root, for cross-file rules."""

    def __init__(self, root: Path, files: Sequence[FileContext]) -> None:
        self.root = root
        self.files = list(files)
        self._by_relpath = {ctx.relpath: ctx for ctx in self.files}

    def file(self, relpath: str) -> Optional[FileContext]:
        return self._by_relpath.get(relpath)


@dataclass
class LintReport:
    """Outcome of one lint run, before baseline application."""

    findings: List[Finding]
    suppressed: List[Finding]
    files_checked: int
    rule_names: List[str]

    def new_findings(self, baseline: Dict[Fingerprint, int]) -> List[Finding]:
        """Findings beyond the baseline's per-fingerprint allowance."""
        seen: Dict[Fingerprint, int] = {}
        fresh: List[Finding] = []
        for finding in sorted(self.findings, key=lambda f: (f.path, f.line)):
            count = seen.get(finding.fingerprint, 0)
            seen[finding.fingerprint] = count + 1
            if count >= baseline.get(finding.fingerprint, 0):
                fresh.append(finding)
        return fresh


def iter_source_files(root: Path) -> List[Path]:
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def load_project(root: Path) -> Project:
    root = root.resolve()
    return Project(root, [FileContext(root, p) for p in iter_source_files(root)])


def run_lint(
    root: Path, rules: Optional[Sequence["Rule"]] = None
) -> LintReport:
    """Parse everything under ``root`` and run every registered rule."""
    from repro.analysis.rules import build_rules

    active = list(rules) if rules is not None else build_rules()
    project = load_project(root)
    for rule in active:
        rule.prepare(project)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for ctx in project.files:
        for rule in active:
            for finding in rule.check(ctx, project):
                if finding.rule in ctx.suppressed_at(finding.line):
                    suppressed.append(finding)
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    suppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    return LintReport(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(project.files),
        rule_names=[rule.name for rule in active],
    )


# ------------------------------------------------------------------ baseline


def load_baseline(path: Path) -> Dict[Fingerprint, int]:
    """Read the ratchet baseline; missing file means an empty baseline."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    counts: Dict[Fingerprint, int] = {}
    for entry in payload.get("findings", []):
        key: Fingerprint = (entry["rule"], entry["path"], entry["symbol"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    counts: Dict[Fingerprint, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    entries = [
        {"rule": rule, "path": rel, "symbol": symbol, "count": count}
        for (rule, rel, symbol), count in sorted(counts.items())
    ]
    payload = {"version": 1, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
