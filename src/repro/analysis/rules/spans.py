"""span-coverage: the hot-path stage catalog must stay traced.

PR 7's distributed tracing is only as good as its coverage: a stage that
silently loses its span disappears from every trace tree and from the
slow-query log's attribution.  This rule pins the catalog of stages that
*must* open a ``Tracer`` span — server op handlers, the scatter/worker
call sites, the replica read path, the WAL fsync — and fails when one of
them no longer contains a ``.span(`` call.

A catalog entry whose function has been renamed or removed is itself a
finding: the catalog is part of the invariant and must move with the
code.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import FUNCTION_NODES, Rule, call_name

# (relpath, qualified function name) pairs that must open a span.
_TARGETS: Tuple[Tuple[str, str], ...] = (
    ("server/server.py", "StoreServer._execute"),
    ("server/server.py", "StoreServer._mutate"),
    ("server/worker.py", "_WorkerState._shard_query"),
    ("server/worker.py", "_WorkerState._shard_mutate"),
    ("shard/router.py", "ShardRouter._shard_call"),
    ("shard/reshard.py", "ReshardController._rebalance_locked"),
    ("shard/reshard.py", "ReshardController._split_locked"),
    ("replication/group.py", "ReplicaGroup.read"),
    ("service/service.py", "QueryService._execute_on_engine"),
    ("ingest/pipeline.py", "IngestPipeline._apply"),
    ("ingest/wal.py", "WriteAheadLog.sync"),
    ("storage/store.py", "SegmentStore.fault_in"),
    ("storage/store.py", "SegmentStore._evict_locked"),
    ("storage/store.py", "SegmentStore.publish_snapshot"),
    ("replication/group.py", "ReplicaGroup._resync_snapshot"),
)


def _opens_span(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and call_name(node) == "span":
            return True
    return False


class SpanCoverageRule(Rule):
    name = "span-coverage"
    summary = "catalogued hot-path stages must open a Tracer span"

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        wanted = {qual for path, qual in _TARGETS if path == ctx.relpath}
        if not wanted:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, FUNCTION_NODES):
                continue
            qual = ctx.symbol_at(node.lineno)
            if qual not in wanted:
                continue
            wanted.discard(qual)
            if not _opens_span(node):
                yield ctx.finding(
                    self.name,
                    node,
                    f"'{qual}' is a catalogued traced stage but opens no "
                    "Tracer span",
                )
        for missing in sorted(wanted):
            yield ctx.finding(
                self.name,
                ctx.tree,
                f"catalogued traced stage '{missing}' not found in "
                f"{ctx.relpath}; update the span-coverage catalog",
            )
