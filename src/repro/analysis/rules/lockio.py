"""lock-discipline: no blocking I/O while holding a hot fine-grained lock.

The service dispatcher, shard router, socket server and ingest pipeline
all serialise hot paths on small critical sections.  Blocking inside one
(``fsync``, socket send/recv, ``subprocess``, ``sleep``, wire-frame I/O)
stalls every thread queued on that lock — the exact convoy the
per-request latency budget assumes cannot happen.

The rule flags blocking calls lexically inside ``with <lock>:`` blocks
in ``service/``, ``server/``, ``storage/``, ``shard/router.py``,
``shard/reshard.py`` and ``ingest/pipeline.py``.  A lock is anything whose terminal name contains
``lock`` (plus the server's ``_drained`` condition, which shares the
server lock).  Nested function bodies are skipped — they run later,
usually on another thread.  ``Condition.wait`` is fine (it releases the
lock); deliberate fsync-under-lock designs carry a justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule, body_calls, call_name, dotted_name

_SCOPED_DIRS = ("service/", "server/", "storage/")
_SCOPED_FILES = {"shard/router.py", "shard/reshard.py", "ingest/pipeline.py"}

# Condition variables that alias a lock without 'lock' in their name.
_EXTRA_LOCK_NAMES = {"_drained"}

_BLOCKING_ATTRS = {
    "fsync",
    "sendall",
    "recv",
    "recv_into",
    "accept",
    "connect",
    "sleep",
    "read_frame",
    "write_frame",
}


def _is_lock_expr(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return False
    return "lock" in name.lower() or name in _EXTRA_LOCK_NAMES


def _is_blocking(call: ast.Call) -> bool:
    name = call_name(call)
    if name in _BLOCKING_ATTRS:
        return True
    dotted = dotted_name(call.func)
    return dotted.startswith("subprocess.") or dotted.startswith("select.")


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    summary = "no blocking I/O inside with-lock blocks on hot paths"

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not (
            ctx.relpath.startswith(_SCOPED_DIRS) or ctx.relpath in _SCOPED_FILES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            held: List[str] = []
            for item in node.items:
                expr = item.context_expr
                # `with lock_factory() as x` / `with self._lock:` both count;
                # unwrap a call so `with self._lock.acquire_timeout():` works.
                target = expr.func if isinstance(expr, ast.Call) else expr
                if _is_lock_expr(target):
                    held.append(dotted_name(target) or "lock")
            if not held:
                continue
            for call in body_calls(node):
                if _is_blocking(call):
                    yield ctx.finding(
                        self.name,
                        call,
                        f"blocking call '{call_name(call)}' while holding "
                        f"{', '.join(held)}",
                    )
