"""no-wall-clock: deterministic paths must not read the wall clock or
global RNG.

Query evaluation, semantic partitioning and result fingerprints promise
byte-identical outputs for identical inputs — cursors resume against a
fingerprint, replicas compare digests, benches compare fingerprints
across topologies.  ``time.time()`` or an unseeded ``random`` call in
those paths breaks the contract invisibly (everything still "works",
digests just stop matching under load or across runs).

Scope: ``core/``, ``shard/partitioner.py``, ``api/cursor.py`` and
``service/cache.py`` (the fingerprint home).  ``time.monotonic`` /
``time.perf_counter`` remain fine — they measure, they don't timestamp.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule, dotted_name

_SCOPED_FILES = {"shard/partitioner.py", "api/cursor.py", "service/cache.py"}

_FORBIDDEN_EXACT = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

_FORBIDDEN_PREFIXES = ("random.", "np.random.", "numpy.random.")


class WallClockRule(Rule):
    name = "no-wall-clock"
    summary = (
        "no time.time()/random.* in deterministic fingerprint/partition "
        "paths"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not (
            ctx.relpath.startswith("core/") or ctx.relpath in _SCOPED_FILES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            # Seeded generator construction is the *fix* for this rule,
            # not a violation: default_rng(seed) / Random(seed) with an
            # explicit argument are deterministic.
            seeded_ctor = dotted.endswith((".default_rng", ".Random"))
            if seeded_ctor and (node.args or node.keywords):
                continue
            hit = dotted in _FORBIDDEN_EXACT or any(
                dotted.startswith(prefix) for prefix in _FORBIDDEN_PREFIXES
            )
            if hit:
                yield ctx.finding(
                    self.name,
                    node,
                    f"'{dotted}' is non-deterministic; this path promises "
                    "byte-identical outputs (use a seeded RNG or "
                    "time.monotonic for measurement)",
                )
