"""wal-first: durability logging must precede in-memory application.

The ingest pipeline's crash-safety story is WAL-append-*then*-stage: a
mutation acknowledged to a client exists on disk before the store's
in-memory state reflects it, so recovery can always replay forward.
Within ``ingest/`` and ``replication/``, any function body that both
appends to a WAL and stages/applies a mutation must append first.

Replay paths (``recover``) that stage without appending are exempt —
the rule only fires when both operations appear in one function and the
stage comes first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import (
    Rule,
    body_calls,
    call_name,
    functions,
    name_chain,
)

_STAGE_CALLS = {"stage_mutation", "apply_mutation"}
_SCOPES = ("ingest/", "replication/")


def _is_wal_append(call: ast.Call) -> bool:
    if call_name(call) != "append":
        return False
    func = call.func
    if not isinstance(func, ast.Attribute):
        return False
    # Receiver chain must mention the log ('self.wal.append', 'wal.append',
    # 'log.append') so plain list.append never trips the rule.
    receiver = name_chain(func.value)
    return any("wal" in part.lower() or part.lower() == "log" for part in receiver)


class WalFirstRule(Rule):
    name = "wal-first"
    summary = "in ingest/ and replication/, WAL append must precede staging"

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not ctx.relpath.startswith(_SCOPES):
            return
        for fn in functions(ctx.tree):
            first_stage: Optional[ast.Call] = None
            first_append: Optional[ast.Call] = None
            for call in body_calls(fn):
                if first_stage is None and call_name(call) in _STAGE_CALLS:
                    first_stage = call
                if first_append is None and _is_wal_append(call):
                    first_append = call
            if first_stage is None or first_append is None:
                continue
            if first_stage.lineno < first_append.lineno:
                yield ctx.finding(
                    self.name,
                    first_stage,
                    f"'{call_name(first_stage)}' precedes the WAL append at "
                    f"line {first_append.lineno}; durability logging must "
                    "come first",
                )
