"""Rule protocol and shared AST helpers for repro-lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple, Union

from repro.analysis.engine import FileContext, Finding, Project

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class Rule:
    """One invariant check.

    ``prepare`` runs once with the whole parsed project (for cross-file
    indices); ``check`` runs per file and yields findings.  ``name`` is
    the identifier used in suppression comments and the baseline.
    """

    name: str = ""
    summary: str = ""

    def prepare(self, project: Project) -> None:  # noqa: B027 - optional hook
        pass

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


def functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every (sync or async) function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            yield node


def param_names(fn: FunctionNode) -> List[str]:
    args = fn.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


def call_name(call: ast.Call) -> str:
    """Terminal name of a call target: ``self.wal.append(...)`` -> ``append``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(expr: ast.AST) -> str:
    """Best-effort dotted rendering: ``os.fsync`` -> ``"os.fsync"``.

    Returns ``""`` for anything dynamic (subscripts, calls, lambdas).
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def name_chain(expr: ast.AST) -> Tuple[str, ...]:
    """All identifiers along an attribute chain, outermost last."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node``'s subtree without descending into nested functions.

    Code inside a nested ``def``/``lambda`` runs later (often on another
    thread via an executor), so rules about "what happens inside this
    block" must not attribute it to the enclosing block.
    """
    for child in ast.iter_child_nodes(node):
        yield child
        if not isinstance(child, (*FUNCTION_NODES, ast.Lambda)):
            yield from walk_shallow(child)


def body_calls(node: ast.AST) -> Iterator[ast.Call]:
    """Calls syntactically inside ``node``, excluding nested functions."""
    for child in walk_shallow(node):
        if isinstance(child, ast.Call):
            yield child
