"""Rule registry for repro-lint.

Every shipped rule is listed here; ``build_rules()`` instantiates fresh
rule objects for one lint run (rules carry per-run indices built in
``prepare``).
"""

from __future__ import annotations

from typing import List, Type

from repro.analysis.rules.base import Rule
from repro.analysis.rules.deadline import DeadlinePropagationRule
from repro.analysis.rules.errenvelope import ErrorEnvelopeRule
from repro.analysis.rules.excepts import BareExceptRule, NoSwallowRule
from repro.analysis.rules.lockio import LockDisciplineRule
from repro.analysis.rules.spans import SpanCoverageRule
from repro.analysis.rules.walfirst import WalFirstRule
from repro.analysis.rules.wallclock import WallClockRule

ALL_RULES: List[Type[Rule]] = [
    DeadlinePropagationRule,
    WalFirstRule,
    LockDisciplineRule,
    ErrorEnvelopeRule,
    SpanCoverageRule,
    WallClockRule,
    BareExceptRule,
    NoSwallowRule,
]


def build_rules() -> List[Rule]:
    return [cls() for cls in ALL_RULES]


__all__ = [
    "ALL_RULES",
    "Rule",
    "build_rules",
    "BareExceptRule",
    "DeadlinePropagationRule",
    "ErrorEnvelopeRule",
    "LockDisciplineRule",
    "NoSwallowRule",
    "SpanCoverageRule",
    "WalFirstRule",
    "WallClockRule",
]
