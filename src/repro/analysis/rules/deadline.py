"""deadline-propagation: cooperative deadlines must not be dropped.

A request's :class:`~repro.api.options.Deadline` is plumbed by hand
through service -> engine -> router -> shard -> replica (PR 5).  Any
function that *accepts* a ``deadline`` and then calls another function
that also accepts one must forward it — a silent drop turns a bounded
request into an unbounded one, and nothing else in the stack notices.

Forwarding counts when the call passes a ``deadline=`` keyword, passes a
value *named* deadline positionally (``self._query(..., deadline, ...)``
or ``request.deadline``), or splats ``**kwargs`` (the established idiom
for riding options through generic engine facades).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import (
    Rule,
    body_calls,
    call_name,
    functions,
    param_names,
)

# Names too generic to index: a method of this name accepting ``deadline``
# somewhere must not force every unrelated call of that name to forward.
_GENERIC_NAMES = {"read", "write", "get", "put", "send", "run", "close"}


def _passes_deadline(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs splat rides the deadline through
            return True
        if kw.arg == "deadline":
            return True
        value = kw.value
        if isinstance(value, ast.Name) and value.id == "deadline":
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "deadline":
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == "deadline":
            return True
    return False


class DeadlinePropagationRule(Rule):
    name = "deadline-propagation"
    summary = (
        "functions accepting a deadline must forward it to every callee "
        "that accepts one"
    )

    def __init__(self) -> None:
        self._accepting: Dict[str, Set[str]] = {}

    def prepare(self, project: Project) -> None:
        self._accepting = {}
        for ctx in project.files:
            for fn in functions(ctx.tree):
                if fn.name in _GENERIC_NAMES:
                    continue
                if "deadline" in param_names(fn):
                    self._accepting.setdefault(fn.name, set()).add(ctx.relpath)

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        for fn in functions(ctx.tree):
            if "deadline" not in param_names(fn):
                continue
            for call in body_calls(fn):
                callee = call_name(call)
                if callee not in self._accepting:
                    continue
                if _passes_deadline(call):
                    continue
                yield ctx.finding(
                    self.name,
                    call,
                    f"call to deadline-accepting '{callee}' drops the "
                    "deadline this function received",
                )
