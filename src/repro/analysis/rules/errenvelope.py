"""error-envelope: every wire-crossing exception must decode to itself.

``server/protocol.py`` keeps a typed-error codec (``_KNOWN_ERRORS``): an
exception raised server-side is enveloped by class name and re-raised as
the *same* class on the client.  A class missing from the registry still
crosses the wire, but degrades to a generic ``RemoteError`` — client
code that catches the typed exception silently stops matching.

The rule derives both sets statically — the registry keys from the
``_KNOWN_ERRORS`` dict literal, and every ``raise Name(...)`` in
``server/`` — and flags raises outside the registry.  Client-side
transport exceptions (``ConnectionClosed``, ``RemoteError``) never enter
an envelope and are exempt, as are bare re-raises and ``raise ... from``
of dynamic expressions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule

_PROTOCOL = "server/protocol.py"
_REGISTRY = "_KNOWN_ERRORS"

# Raised only on the client side of the wire (transport failures); they
# are never encoded into an envelope, so registration is meaningless.
_TRANSPORT_LOCAL = {"ConnectionClosed", "RemoteError"}


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        func = exc.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    elif isinstance(exc, ast.Name):
        return exc.id
    return ""


class ErrorEnvelopeRule(Rule):
    name = "error-envelope"
    summary = (
        "exceptions raised in server/ must be registered in the "
        "protocol's typed-error codec"
    )

    def __init__(self) -> None:
        self._registered: Set[str] = set()

    def prepare(self, project: Project) -> None:
        self._registered = set()
        protocol = project.file(_PROTOCOL)
        if protocol is None:
            return
        for node in ast.walk(protocol.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if _REGISTRY not in targets or not isinstance(node.value, ast.Dict):
                continue
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    self._registered.add(key.value)

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not ctx.relpath.startswith("server/"):
            return
        if not self._registered:
            # Registry missing entirely: that is itself a finding, once.
            if ctx.relpath == _PROTOCOL:
                yield ctx.finding(
                    self.name,
                    ctx.tree,
                    f"could not locate the {_REGISTRY} dict literal in "
                    f"{_PROTOCOL}",
                )
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if not name or not (
                name.endswith("Error") or name.endswith("Exception")
                or name in {"KeyError", "ValueError", "TypeError"}
            ):
                continue
            if name in self._registered or name in _TRANSPORT_LOCAL:
                continue
            yield ctx.finding(
                self.name,
                node,
                f"'{name}' is raised in server/ but not registered in "
                f"protocol.{_REGISTRY}; clients would receive a generic "
                "RemoteError",
            )
