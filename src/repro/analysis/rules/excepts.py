"""no-bare-except / no-swallow: failures in long-lived loops must leave
a trace.

Worker processes, the dispatcher thread, replication pumps and the
server accept loop all run forever; an exception swallowed there is a
request that vanished with no metric, no span tag, no log line.  Two
rules:

* ``no-bare-except`` — a bare ``except:`` anywhere under ``src/repro``
  (it catches ``KeyboardInterrupt``/``SystemExit`` and masks shutdown).
* ``no-swallow`` — in the daemon-hosting packages, an
  ``except Exception``/``BaseException`` handler whose body is *only*
  ``pass``/``continue``/``...`` silently discards the failure.  Narrow
  handlers (``except OSError: pass`` on a close path) are deliberate and
  exempt; broad handlers that record something before moving on are
  fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Project
from repro.analysis.rules.base import Rule

_SWALLOW_SCOPES = ("server/", "service/", "replication/", "ingest/", "shard/")
_BROAD = {"Exception", "BaseException"}


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    node = handler.type
    if node is None:
        return
    elts = node.elts if isinstance(node, ast.Tuple) else [node]
    for elt in elts:
        if isinstance(elt, ast.Name):
            yield elt.id
        elif isinstance(elt, ast.Attribute):
            yield elt.attr


def _body_is_silent(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis placeholder
        return False
    return True


class BareExceptRule(Rule):
    name = "no-bare-except"
    summary = "no bare 'except:' anywhere (masks interrupts and shutdown)"

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.name,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "name the exceptions this path expects",
                )


class NoSwallowRule(Rule):
    name = "no-swallow"
    summary = (
        "broad except handlers in daemon packages must not silently "
        "discard the failure"
    )

    def check(self, ctx: FileContext, project: Project) -> Iterator[Finding]:
        if not ctx.relpath.startswith(_SWALLOW_SCOPES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not any(name in _BROAD for name in _handler_names(node)):
                continue
            if _body_is_silent(node):
                yield ctx.finding(
                    self.name,
                    node,
                    "broad exception silently swallowed; record it "
                    "(metric, span tag, log) or narrow the handler",
                )
