"""Runtime lock-order witness: deadlock cycles and blocking-under-lock.

Static rules can't see dynamic acquisition order, so this module ships
an opt-in instrumented lock.  :class:`OrderedLock` wraps a real
``threading.Lock``/``RLock`` and reports every acquire/release to a
:class:`LockOrderWitness`, which maintains

* the **acquisition-order graph**: a directed edge ``A -> B`` whenever a
  thread acquires ``B`` while holding ``A``.  A cycle in that graph is a
  potential deadlock — two threads interleaving the two orders will hang
  — reported even if the test run happened not to hit the interleaving.
* **blocking-under-lock findings**: with :meth:`LockOrderWitness.install`
  active, ``os.fsync`` and socket ``sendall``/``recv`` report through
  the witness; performing one while holding a lock that was not wrapped
  with ``allow_blocking=True`` is a finding (the convoy the
  lock-discipline static rule guards, caught dynamically).

Tests enable it two ways:

* explicitly — ``witness.wrap(threading.Lock(), "name")`` around the
  locks a scenario cares about;
* wholesale — the :func:`witness_locks` context manager patches the
  ``threading.Lock``/``RLock`` factories so every lock *created by repro
  code* during the window is witnessed, named by its creation site.
  Locks whose source line binds a name matching ``pipeline``/``_lock``
  RLock-style write-path coverage keep ``allow_blocking`` (the WAL-first
  design deliberately fsyncs under the coarse write locks); fine-grained
  plain Locks do not.

Re-entrant re-acquisition of a lock already held by the same thread adds
no edges (it cannot deadlock).  ``Condition`` wait is supported: the
wrapper exposes ``_release_save``/``_acquire_restore``/``_is_owned``
when the inner lock does.
"""

from __future__ import annotations

import itertools
import linecache
import os
import re
import socket
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "LockOrderFinding",
    "LockOrderWitness",
    "OrderedLock",
    "witness_locks",
]


def _canonical_cycle(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    """Rotation-independent key for a cycle ``(a, b, ..., a)``."""
    nodes = cycle[:-1]
    if not nodes:
        return cycle
    pivot = nodes.index(min(nodes))
    return nodes[pivot:] + nodes[:pivot]


@dataclass(frozen=True)
class LockOrderFinding:
    """One witnessed violation: a cycle or a blocking call under a lock."""

    kind: str  # "cycle" | "blocking-under-lock"
    detail: str
    chain: Tuple[str, ...]
    thread: str

    def render(self) -> str:
        links = " -> ".join(self.chain)
        return f"[{self.kind}] {self.detail} ({links}) [thread {self.thread}]"


class OrderedLock:
    """A witnessed wrapper around a ``threading.Lock``/``RLock``.

    Drop-in for ``with``-statement and ``acquire``/``release`` use;
    anything else (``locked``, timeouts) passes through to the inner
    lock.  ``allow_blocking=True`` marks a coarse write-path lock that
    is *expected* to be held across durable appends (fsync) — blocking
    findings are not raised for it, ordering edges still are.
    """

    def __init__(
        self,
        inner: Any,
        name: str,
        witness: "LockOrderWitness",
        *,
        allow_blocking: bool = False,
    ) -> None:
        self._inner = inner
        self.name = name
        self.allow_blocking = allow_blocking
        self._witness = witness
        # threading.Condition duck-probes these three attributes to
        # cooperate with RLocks; forward them (with bookkeeping) only
        # when the inner lock actually has them.
        if hasattr(inner, "_release_save"):

            def _release_save() -> Any:
                self._witness._note_release_all(self)
                return inner._release_save()

            def _acquire_restore(state: Any) -> None:
                inner._acquire_restore(state)
                self._witness._note_acquire(self)

            self._release_save = _release_save  # type: ignore[method-assign]
            self._acquire_restore = _acquire_restore  # type: ignore[method-assign]
        if hasattr(inner, "_is_owned"):
            self._is_owned = inner._is_owned  # type: ignore[method-assign]

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired: bool = self._inner.acquire(blocking, timeout)
        if acquired:
            self._witness._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._witness._note_release(self)
        self._inner.release()

    def __enter__(self) -> "OrderedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        locked: bool = self._inner.locked()
        return locked

    def __repr__(self) -> str:
        return f"OrderedLock({self.name!r})"


class LockOrderWitness:
    """Aggregates acquisition order across threads and detects trouble."""

    def __init__(self) -> None:
        self._graph: Dict[str, Set[str]] = {}
        self._edge_sites: Dict[Tuple[str, str], str] = {}
        self._findings: List[LockOrderFinding] = []
        self._reported_cycles: Set[Tuple[str, ...]] = set()
        self._mutex = threading.Lock()
        self._tls = threading.local()
        self._seq = itertools.count(1)
        self._installed: List[Callable[[], None]] = []

    # -------------------------------------------------------------- wrapping

    def wrap(
        self,
        inner: Any,
        name: Optional[str] = None,
        *,
        allow_blocking: bool = False,
    ) -> OrderedLock:
        if name is None:
            name = f"lock#{next(self._seq)}"
        return OrderedLock(inner, name, self, allow_blocking=allow_blocking)

    # ------------------------------------------------------------ accounting

    def _held(self) -> List[List[Any]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack  # list of [OrderedLock, count]

    def _note_acquire(self, lock: OrderedLock) -> None:
        stack = self._held()
        for entry in stack:
            if entry[0] is lock:
                entry[1] += 1  # re-entrant: no new ordering information
                return
        held_names = [entry[0].name for entry in stack]
        stack.append([lock, 1])
        if not held_names:
            return
        # Fast path: every edge already witnessed (racy read is fine —
        # the graph only grows, a miss just falls through to the mutex).
        if all(
            lock.name in self._graph.get(held, ()) for held in held_names
        ):
            return
        site: Optional[str] = None
        with self._mutex:
            for held in held_names:
                if held == lock.name:
                    continue
                edges = self._graph.setdefault(held, set())
                if lock.name not in edges:
                    if site is None:
                        site = _call_site()
                    edges.add(lock.name)
                    self._edge_sites[(held, lock.name)] = site
                    self._check_cycle(held, lock.name)

    def _note_release(self, lock: OrderedLock) -> None:
        stack = self._held()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                stack[index][1] -= 1
                if stack[index][1] <= 0:
                    del stack[index]
                return

    def _note_release_all(self, lock: OrderedLock) -> None:
        stack = self._held()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] is lock:
                del stack[index]
                return

    def _check_cycle(self, source: str, target: str) -> None:
        """The new edge source->target closes a cycle iff target reaches
        source; DFS over the (small) name graph."""
        path = self._find_path(target, source)
        if path is None:
            return
        cycle = tuple(path) + (target,)
        canonical = _canonical_cycle(cycle)
        if canonical in self._reported_cycles:
            return
        self._reported_cycles.add(canonical)
        sites = [
            self._edge_sites.get((cycle[i], cycle[i + 1]), "?")
            for i in range(len(cycle) - 1)
        ]
        self._findings.append(
            LockOrderFinding(
                kind="cycle",
                detail=(
                    "lock acquisition order forms a cycle (potential "
                    "deadlock); edges acquired at: " + "; ".join(sites)
                ),
                chain=cycle,
                thread=threading.current_thread().name,
            )
        )

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        seen: Set[str] = set()
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._graph.get(node, ()):
                stack.append((nxt, path + [nxt]))
        return None

    # -------------------------------------------------------- blocking hooks

    def _note_blocking(self, op: str) -> None:
        stack = self._held()
        strict = [entry[0].name for entry in stack if not entry[0].allow_blocking]
        if not strict:
            return
        self._findings.append(
            LockOrderFinding(
                kind="blocking-under-lock",
                detail=f"'{op}' while holding {', '.join(strict)} "
                f"at {_call_site()}",
                chain=tuple(strict),
                thread=threading.current_thread().name,
            )
        )

    def install(self) -> "LockOrderWitness":
        """Route ``os.fsync`` and socket send/recv through the witness."""
        if self._installed:
            return self
        witness = self

        original_fsync = os.fsync

        def fsync(fd: int) -> None:
            witness._note_blocking("os.fsync")
            original_fsync(fd)

        os.fsync = fsync  # type: ignore[assignment]
        self._installed.append(lambda: setattr(os, "fsync", original_fsync))

        original_sendall = socket.socket.sendall

        def sendall(sock: socket.socket, *args: Any, **kwargs: Any) -> None:
            witness._note_blocking("socket.sendall")
            original_sendall(sock, *args, **kwargs)

        socket.socket.sendall = sendall  # type: ignore[assignment, method-assign]
        self._installed.append(
            lambda: setattr(socket.socket, "sendall", original_sendall)
        )

        original_recv = socket.socket.recv

        def recv(sock: socket.socket, *args: Any, **kwargs: Any) -> bytes:
            witness._note_blocking("socket.recv")
            data: bytes = original_recv(sock, *args, **kwargs)
            return data

        socket.socket.recv = recv  # type: ignore[assignment, method-assign]
        self._installed.append(
            lambda: setattr(socket.socket, "recv", original_recv)
        )
        return self

    def uninstall(self) -> None:
        while self._installed:
            self._installed.pop()()

    # --------------------------------------------------------------- results

    @property
    def findings(self) -> List[LockOrderFinding]:
        return list(self._findings)

    def report(self) -> Dict[str, Any]:
        """Structured summary: the witnessed graph plus every finding."""
        with self._mutex:
            edges = sorted(
                (src, dst) for src, dsts in self._graph.items() for dst in dsts
            )
        return {
            "locks": sorted(
                {name for edge in edges for name in edge}
            ),
            "edges": [
                {
                    "from": src,
                    "to": dst,
                    "site": self._edge_sites.get((src, dst), "?"),
                }
                for src, dst in edges
            ],
            "findings": [
                {
                    "kind": f.kind,
                    "detail": f.detail,
                    "chain": list(f.chain),
                    "thread": f.thread,
                }
                for f in self._findings
            ],
        }

    def assert_clean(self) -> None:
        if not self._findings:
            return
        rendered = "\n".join(f.render() for f in self._findings)
        raise AssertionError(f"lock-order witness findings:\n{rendered}")


# ------------------------------------------------------------ factory patch

_REPRO_MARKER = os.sep + "repro" + os.sep
_THIS_FILE = os.path.abspath(__file__)
_BIND_RE = re.compile(r"(\w+)\s*(?::[^=]+)?=\s*threading\.R?Lock\(")

# Creation-site variable names that mark coarse write-path locks: the
# WAL-first design holds these across durable appends on purpose, so
# fsync under them is not a finding (ordering edges still are).
_ALLOW_BLOCKING_BINDINGS = re.compile(r"(pipeline|^lock$|^_lock$|wal)", re.I)


def _call_site() -> str:
    """First stack frame inside repro code (excluding this module)."""
    for frame in reversed(traceback.extract_stack()):
        filename = os.path.abspath(frame.filename)
        if filename == _THIS_FILE:
            continue
        if _REPRO_MARKER in filename:
            return f"{Path(filename).name}:{frame.lineno}"
    return "?"


def _creation_site() -> Optional[Tuple[str, int, str]]:
    """(short path, line, source line) of the repro frame creating a lock."""
    for frame in reversed(traceback.extract_stack()):
        filename = os.path.abspath(frame.filename)
        if filename == _THIS_FILE or _REPRO_MARKER not in filename:
            continue
        line = linecache.getline(filename, frame.lineno).strip()
        short = "/".join(Path(filename).parts[-2:])
        return (short, frame.lineno, line)
    return None


@contextmanager
def witness_locks(
    witness: Optional[LockOrderWitness] = None,
    *,
    install_blocking_hooks: bool = True,
) -> Iterator[LockOrderWitness]:
    """Witness every lock created by repro code inside the block.

    Patches the ``threading.Lock``/``RLock`` factories; locks created
    from non-repro frames (stdlib executors, futures) pass through
    unwrapped, so the overhead and the graph stay scoped to this
    codebase.  Lock names come from the creation site
    (``service/service.py:214:_pipeline_lock#1``), which also decides
    ``allow_blocking`` (see module docstring).
    """
    active = witness if witness is not None else LockOrderWitness()
    original_lock = threading.Lock
    original_rlock = threading.RLock
    counter = itertools.count(1)

    def _make(
        factory: Callable[[], Any], reentrant: bool
    ) -> Callable[[], Any]:
        def maker() -> Any:
            inner = factory()
            site = _creation_site()
            if site is None:
                return inner
            short, lineno, source = site
            match = _BIND_RE.search(source)
            binding = match.group(1) if match else ""
            name = f"{short}:{lineno}"
            if binding:
                name = f"{name}:{binding}"
            name = f"{name}#{next(counter)}"
            allow = reentrant and (
                not binding or bool(_ALLOW_BLOCKING_BINDINGS.search(binding))
            )
            return active.wrap(inner, name, allow_blocking=allow)

        return maker

    threading.Lock = _make(original_lock, False)  # type: ignore[assignment]
    threading.RLock = _make(original_rlock, True)  # type: ignore[assignment]
    if install_blocking_hooks:
        active.install()
    try:
        yield active
    finally:
        threading.Lock = original_lock  # type: ignore[assignment]
        threading.RLock = original_rlock  # type: ignore[assignment]
        if install_blocking_hooks:
            active.uninstall()
