"""Static analysis and runtime invariant checking for the repro stack.

* :mod:`repro.analysis.engine` — the repro-lint AST engine (rule
  registry, suppression comments, ratchet baseline).
* :mod:`repro.analysis.rules` — the shipped invariant rules.
* :mod:`repro.analysis.lockorder` — the opt-in runtime lock-order
  witness (deadlock-cycle and blocking-under-lock detection).
"""

from repro.analysis.engine import (
    Finding,
    LintReport,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.lockorder import (
    LockOrderFinding,
    LockOrderWitness,
    OrderedLock,
    witness_locks,
)
from repro.analysis.rules import ALL_RULES, build_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintReport",
    "LockOrderFinding",
    "LockOrderWitness",
    "OrderedLock",
    "build_rules",
    "load_baseline",
    "run_lint",
    "witness_locks",
    "write_baseline",
]
