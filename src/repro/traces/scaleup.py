"""Trace Intensifying Factor (TIF) scale-up (§5.1).

To emulate the I/O behaviour of next-generation storage systems — for which
no realistic traces exist — the paper scales existing traces both spatially
and temporally: the trace is turned into ``TIF`` sub-traces, a unique
sub-trace ID is added to all files (intentionally growing the working set),
the start time of every sub-trace is set to zero so they replay
concurrently, and the chronological order within each sub-trace is
faithfully preserved.  The combined trace keeps the same histogram of file
system calls as the original but presents a ``TIF``-times heavier workload.

Two entry points are provided:

* :func:`scale_up` materialises the intensified trace (use moderate TIF
  values for in-memory experiments);
* :func:`scaled_summary` computes the Table 1-3 style summary of the
  intensified workload analytically (every row of the paper's tables —
  requests, files, users, byte volumes and the quoted duration — scales
  linearly with TIF, the trace being scaled "both spatially and
  temporally"), which is how the benchmark reports the paper's
  original-scale numbers without materialising billions of records.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.metadata.file_metadata import FileMetadata
from repro.traces.base import Trace, TraceRecord, TraceSummary

__all__ = ["scale_up", "scaled_summary"]


def _tag_path(path: str, sub_trace: int) -> str:
    """Prefix a path with a unique sub-trace ID."""
    return f"/tif{sub_trace:04d}{path}"


def scale_up(trace: Trace, tif: int) -> Trace:
    """Materialise the TIF-intensified version of ``trace``.

    Each of the ``tif`` sub-traces is a copy of the original whose files
    carry a unique sub-trace ID prefix and whose records start at time zero.
    The chronological order inside every sub-trace is preserved; the merged
    record stream is globally time-ordered (concurrent replay).
    """
    if tif < 1:
        raise ValueError(f"TIF must be >= 1, got {tif}")
    if tif == 1:
        return trace

    base_start = trace.records[0].timestamp if trace.records else 0.0
    records: List[TraceRecord] = []
    files: List[FileMetadata] = []
    for sub in range(tif):
        for r in trace.records:
            records.append(
                TraceRecord(
                    timestamp=r.timestamp - base_start,
                    op=r.op,
                    path=_tag_path(r.path, sub),
                    bytes=r.bytes,
                    user_id=r.user_id + sub * 10_000,
                    process_id=r.process_id + sub * 100_000,
                )
            )
        for f in trace.file_metadata():
            files.append(
                FileMetadata(
                    path=_tag_path(f.path, sub),
                    attributes=dict(f.attributes),
                    extra={**f.extra, "sub_trace": sub},
                )
            )
    return Trace(
        name=f"{trace.name}-tif{tif}",
        records=records,
        files=files,
        user_accounts=trace.user_accounts * tif,
    )


def scaled_summary(summary: TraceSummary, tif: int) -> TraceSummary:
    """Analytic Table 1-3 style summary of a TIF-intensified workload.

    The paper scales its traces "both spatially and temporally": every row
    of Tables 1-3 — request counts, file counts, user counts, byte volumes
    and the quoted duration — is the original figure multiplied by TIF
    (e.g. MSN's 6-hour duration becomes 600 hours at TIF=100).
    """
    if tif < 1:
        raise ValueError(f"TIF must be >= 1, got {tif}")
    return TraceSummary(
        name=f"{summary.name} (TIF={tif})",
        total_requests=summary.total_requests * tif,
        total_reads=summary.total_reads * tif,
        total_writes=summary.total_writes * tif,
        read_bytes=summary.read_bytes * tif,
        write_bytes=summary.write_bytes * tif,
        total_files=summary.total_files * tif,
        active_files=summary.active_files * tif,
        active_users=summary.active_users * tif,
        user_accounts=summary.user_accounts * tif,
        duration_hours=summary.duration_hours * tif,
    )
