"""Synthetic trace generator.

Generates a file population plus an I/O record stream with the statistical
properties the evaluation relies on:

* files are organised into *projects* (semantic clusters): files of the same
  project share a directory prefix, have correlated sizes, clustered
  creation/modification times, a common owner and similar I/O behaviour —
  this is the multi-dimensional semantic correlation SmartStore exploits;
* file popularity is Zipf-skewed (a small fraction of files absorbs most
  requests, as Filecules and the network-FS measurement studies report);
* file sizes are log-normal, spanning several orders of magnitude;
* the request mix (read/write/stat/create fractions, per-request sizes,
  duration, user population) is configurable so the HP / MSN / EECS
  profiles in :mod:`repro.traces.hp` etc. can match the original summary
  columns of Tables 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.traces.base import Trace, TraceRecord
from repro.traces.distributions import clustered_timestamps, zipf_popularity

__all__ = ["SyntheticTraceConfig", "generate_trace"]


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of a synthetic trace.

    The defaults produce a small, laptop-friendly workload; the per-trace
    profiles (HP / MSN / EECS) override them to match the published
    summary statistics at a configurable down-scaling factor.
    """

    name: str = "synthetic"
    n_files: int = 2000
    n_requests: int = 10000
    n_users: int = 16
    user_accounts: int = 32
    n_projects: int = 20
    duration_hours: float = 6.0
    read_fraction: float = 0.55
    write_fraction: float = 0.25
    stat_fraction: float = 0.15
    create_fraction: float = 0.05
    mean_read_bytes: float = 128 * 1024
    mean_write_bytes: float = 96 * 1024
    median_file_size: float = 64 * 1024
    size_sigma: float = 1.8
    popularity_exponent: float = 0.9
    seed: Optional[int] = 42

    def __post_init__(self) -> None:
        if self.n_files < 1 or self.n_requests < 0:
            raise ValueError("n_files must be >= 1 and n_requests >= 0")
        if self.n_projects < 1 or self.n_projects > self.n_files:
            raise ValueError("n_projects must be in [1, n_files]")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        fractions = (
            self.read_fraction,
            self.write_fraction,
            self.stat_fraction,
            self.create_fraction,
        )
        if any(f < 0 for f in fractions):
            raise ValueError("operation fractions must be non-negative")
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError(f"operation fractions must sum to 1, got {sum(fractions)}")


def _generate_files(
    config: SyntheticTraceConfig,
    rng: np.random.Generator,
    schema: AttributeSchema,
) -> List[FileMetadata]:
    """Build the file population with per-project correlated attributes.

    Files of the same project form a tight cluster in the attribute space
    (this is the semantic correlation the paper observes in real systems and
    that SmartStore exploits): the bulk of the size / I/O-volume variance
    sits *between* projects — each project has its own characteristic file
    size, read/write ratio and activity level — while the within-project
    spread is comparatively small, and creation / modification times cluster
    around the project's working epoch.
    """
    n = config.n_files
    duration = config.duration_hours * 3600.0

    project = rng.integers(0, config.n_projects, size=n)
    # Per-project modifiers give each project its own "personality":
    # characteristic file size, I/O intensity, read/write ratios and owner.
    # The configured ``size_sigma`` describes the *global* spread, which is
    # therefore carried mostly by the between-project factor.
    between_sigma = max(config.size_sigma, 0.5)
    within_sigma = 0.45
    project_size_scale = rng.lognormal(mean=0.0, sigma=between_sigma, size=config.n_projects)
    project_activity = rng.lognormal(mean=0.0, sigma=1.0, size=config.n_projects)
    project_read_ratio = rng.lognormal(mean=0.0, sigma=0.8, size=config.n_projects)
    project_write_ratio = rng.lognormal(mean=-1.0, sigma=0.8, size=config.n_projects)
    project_owner = rng.integers(0, config.n_users, size=config.n_projects)

    sizes = (
        config.median_file_size
        * project_size_scale[project]
        * rng.lognormal(mean=0.0, sigma=within_sigma, size=n)
    )
    sizes = np.clip(sizes, 1.0, 16 * 1024**3)
    ctimes = clustered_timestamps(n, project, duration, cluster_spread=0.005, rng=rng)
    # Modifications happen shortly after creation; accesses after modification.
    mtimes = np.minimum(ctimes + rng.exponential(duration * 0.01, size=n), duration)
    atimes = np.minimum(mtimes + rng.exponential(duration * 0.01, size=n), duration)

    activity = project_activity[project]
    # Access counts are *cumulative* counters: a file created early in the
    # trace has had the whole duration to accumulate accesses, a file created
    # near the end almost none.  This age coupling is what makes the popular
    # files the long-established ones (Filecules: popularity concentrates in
    # a small, stable working set), and it is what Figure 10 relies on —
    # Zipf-anchored queries probe old, well-indexed files while freshly
    # created files are the ones a stale index has not absorbed yet.
    age_fraction = np.clip((duration - ctimes) / duration, 1.0 / n, 1.0)
    access_counts = np.maximum(
        1.0,
        activity
        * age_fraction
        * rng.lognormal(mean=np.log(8.0), sigma=within_sigma, size=n),
    )
    read_bytes = (
        sizes * project_read_ratio[project]
        * rng.lognormal(mean=0.0, sigma=within_sigma, size=n)
    )
    write_bytes = (
        sizes * project_write_ratio[project]
        * rng.lognormal(mean=0.0, sigma=within_sigma, size=n)
    )
    owners = project_owner[project].astype(float)

    files: List[FileMetadata] = []
    for i in range(n):
        path = f"/{config.name}/proj{project[i]:03d}/dir{int(i) % 37:02d}/file{i:07d}.dat"
        attrs = {
            "size": float(sizes[i]),
            "ctime": float(ctimes[i]),
            "mtime": float(mtimes[i]),
            "atime": float(atimes[i]),
            "read_bytes": float(read_bytes[i]),
            "write_bytes": float(write_bytes[i]),
            "access_count": float(access_counts[i]),
            "owner": float(owners[i]),
        }
        # Restrict to the schema in use (extra keys are harmless but wasteful).
        attrs = {k: v for k, v in attrs.items() if k in schema.names} or attrs
        files.append(
            FileMetadata(path=path, attributes=attrs, extra={"project": int(project[i])})
        )
    return files


def _generate_records(
    config: SyntheticTraceConfig,
    files: List[FileMetadata],
    rng: np.random.Generator,
) -> List[TraceRecord]:
    """Build the request stream over an existing file population."""
    m = config.n_requests
    if m == 0:
        return []
    n = len(files)
    duration = config.duration_hours * 3600.0

    popularity = zipf_popularity(n, config.popularity_exponent)
    file_idx = rng.choice(n, size=m, p=popularity)
    timestamps = np.sort(rng.uniform(0.0, duration, size=m))
    ops = rng.choice(
        ["read", "write", "stat", "create"],
        size=m,
        p=[
            config.read_fraction,
            config.write_fraction,
            config.stat_fraction,
            config.create_fraction,
        ],
    )
    read_sizes = rng.exponential(config.mean_read_bytes, size=m)
    write_sizes = rng.exponential(config.mean_write_bytes, size=m)
    users = rng.integers(0, config.n_users, size=m)
    processes = rng.integers(1000, 1000 + 4 * config.n_users, size=m)

    records: List[TraceRecord] = []
    for i in range(m):
        op = str(ops[i])
        if op == "read":
            nbytes = float(read_sizes[i])
        elif op in ("write", "create"):
            nbytes = float(write_sizes[i])
        else:
            nbytes = 0.0
        f = files[int(file_idx[i])]
        records.append(
            TraceRecord(
                timestamp=float(timestamps[i]),
                op=op,
                path=f.path,
                bytes=nbytes,
                user_id=int(users[i]),
                process_id=int(processes[i]),
            )
        )
    return records


def generate_trace(
    config: SyntheticTraceConfig,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Trace:
    """Generate a synthetic trace from ``config``.

    The returned :class:`~repro.traces.base.Trace` carries both the record
    stream and the explicit file population (so callers indexing the
    metadata do not need to reconstruct it by replay).
    """
    rng = np.random.default_rng(config.seed)
    files = _generate_files(config, rng, schema)
    records = _generate_records(config, files, rng)
    return Trace(
        name=config.name,
        records=records,
        files=files,
        user_accounts=max(config.user_accounts, config.n_users),
    )
