"""The HP trace profile (Table 1).

The HP trace is a research file-server workload (Riedel et al., FAST'02)
whose original summary, as quoted by the paper, is: 94.7 million requests,
32 active users out of 207 user accounts, 0.969 million active files out of
4 million total files.  Materialising 94.7 million records is neither
possible (the trace is not redistributable) nor necessary: the synthetic
profile reproduces the *ratios* (requests per file, active/total files,
active users/accounts, read-dominated mix) at a configurable down-scaling
factor, and :data:`HP_ORIGINAL_SUMMARY` carries the published totals so the
Table 1 benchmark can report original vs. TIF-scaled numbers exactly.
"""

from __future__ import annotations

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.traces.base import Trace, TraceSummary
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = ["HP_ORIGINAL_SUMMARY", "hp_config", "hp_trace"]

#: Published summary of the original (un-intensified) HP trace, Table 1.
HP_ORIGINAL_SUMMARY = TraceSummary(
    name="HP",
    total_requests=94_700_000,
    total_reads=52_000_000,          # read-dominated research workload
    total_writes=18_000_000,
    read_bytes=0.0,                  # byte volumes are not quoted for HP
    write_bytes=0.0,
    total_files=4_000_000,
    active_files=969_000,
    active_users=32,
    user_accounts=207,
    duration_hours=24.0 * 7,
)

#: TIF used for the HP trace in Table 1.
HP_TABLE_TIF = 80


def hp_config(scale: float = 1.0, seed: int = 17) -> SyntheticTraceConfig:
    """Synthetic HP profile at a laptop-friendly base size.

    ``scale = 1.0`` yields roughly 4,000 files and 20,000 requests, keeping
    the published ratios: ~24 requests per active file, ~24% of files
    active, 32/207 active users/accounts.  Increase ``scale`` for larger
    experiments.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return SyntheticTraceConfig(
        name="hp",
        n_files=max(200, int(4000 * scale)),
        n_requests=max(500, int(20000 * scale)),
        n_users=32,
        user_accounts=207,
        n_projects=max(8, int(40 * scale)),
        duration_hours=24.0,
        read_fraction=0.55,
        write_fraction=0.19,
        stat_fraction=0.22,
        create_fraction=0.04,
        mean_read_bytes=96 * 1024,
        mean_write_bytes=64 * 1024,
        median_file_size=32 * 1024,
        size_sigma=2.0,
        popularity_exponent=1.05,
        seed=seed,
    )


def hp_trace(
    scale: float = 1.0,
    seed: int = 17,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Trace:
    """Generate the synthetic HP trace."""
    return generate_trace(hp_config(scale, seed), schema)
