"""The EECS trace profile (Table 3).

The EECS trace is a passive NFS trace of e-mail and research workloads
(Ellard et al., FAST'03).  The original summary quoted by the paper: 0.46
million reads totalling 5.1 GB, 0.667 million writes totalling 9.1 GB, 4.44
million total operations — a *write-heavy* workload with small requests.
The synthetic profile keeps the write-heavy mix, the ~11 KB / ~14 KB mean
request sizes implied by the byte totals, and the high fraction of
non-data operations (stats / lookups dominate NFS traffic);
:data:`EECS_ORIGINAL_SUMMARY` carries the published totals for exact
Table 3 reporting.
"""

from __future__ import annotations

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.traces.base import Trace, TraceSummary
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = ["EECS_ORIGINAL_SUMMARY", "eecs_config", "eecs_trace"]

#: Published summary of the original (un-intensified) EECS trace, Table 3.
EECS_ORIGINAL_SUMMARY = TraceSummary(
    name="EECS",
    total_requests=4_440_000,
    total_reads=460_000,
    total_writes=667_000,
    read_bytes=5.1 * 1024**3,
    write_bytes=9.1 * 1024**3,
    total_files=800_000,
    active_files=800_000,
    active_users=128,
    user_accounts=256,
    duration_hours=24.0,
)

#: TIF used for the EECS trace in Table 3.
EECS_TABLE_TIF = 150


def eecs_config(scale: float = 1.0, seed: int = 41) -> SyntheticTraceConfig:
    """Synthetic EECS profile.

    ``scale = 1.0`` yields roughly 1,600 files and ~9,000 requests.  Data
    operations are a minority (reads ≈ 10%, writes ≈ 15% of all requests,
    matching 0.46M + 0.667M data ops out of 4.44M), writes outnumber reads,
    and mean request sizes follow the published byte totals
    (5.1 GB / 0.46M ≈ 11.6 KB reads, 9.1 GB / 0.667M ≈ 14.3 KB writes).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return SyntheticTraceConfig(
        name="eecs",
        n_files=max(200, int(1600 * scale)),
        n_requests=max(500, int(9000 * scale)),
        n_users=128,
        user_accounts=256,
        n_projects=max(8, int(20 * scale)),
        duration_hours=24.0,
        read_fraction=0.10,
        write_fraction=0.15,
        stat_fraction=0.72,
        create_fraction=0.03,
        mean_read_bytes=11.6 * 1024,
        mean_write_bytes=14.3 * 1024,
        median_file_size=16 * 1024,
        size_sigma=1.9,
        popularity_exponent=0.95,
        seed=seed,
    )


def eecs_trace(
    scale: float = 1.0,
    seed: int = 41,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Trace:
    """Generate the synthetic EECS trace."""
    return generate_trace(eecs_config(scale, seed), schema)
