"""Trace data model: records, traces and summary statistics.

A :class:`Trace` is a chronologically ordered sequence of
:class:`TraceRecord` I/O operations plus the population of files the
operations touch.  :class:`TraceSummary` carries the aggregate statistics
reported in Tables 1-3 of the paper (request counts, file counts, I/O
volumes, user counts, durations) so the scale-up benchmark can compare the
original and TIF-intensified workloads in the same terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata

__all__ = ["TraceRecord", "Trace", "TraceSummary", "build_file_metadata"]

#: Operations a trace record can carry.
VALID_OPS = ("create", "read", "write", "stat", "delete", "open")


@dataclass(frozen=True)
class TraceRecord:
    """One I/O operation in a trace.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the trace.
    op:
        One of ``create``, ``read``, ``write``, ``stat``, ``delete``,
        ``open``.
    path:
        Full pathname of the file the operation touches.
    bytes:
        Payload size for ``read``/``write`` operations (0 otherwise).
    user_id / process_id:
        Behavioural attributes used when deriving per-file metadata.
    """

    timestamp: float
    op: str
    path: str
    bytes: float = 0.0
    user_id: int = 0
    process_id: int = 0

    def __post_init__(self) -> None:
        if self.op not in VALID_OPS:
            raise ValueError(f"unknown trace operation {self.op!r}; expected one of {VALID_OPS}")
        if self.timestamp < 0:
            raise ValueError("timestamp must be non-negative")
        if self.bytes < 0:
            raise ValueError("bytes must be non-negative")


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of a trace, in the units of Tables 1-3.

    All counts are plain numbers (not millions); the reporting layer formats
    them the way the paper's tables do.
    """

    name: str
    total_requests: int
    total_reads: int
    total_writes: int
    read_bytes: float
    write_bytes: float
    total_files: int
    active_files: int
    active_users: int
    user_accounts: int
    duration_hours: float

    @property
    def total_io(self) -> int:
        """Reads plus writes (the MSN table's "total I/O" row)."""
        return self.total_reads + self.total_writes

    def as_dict(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "total_requests": self.total_requests,
            "total_reads": self.total_reads,
            "total_writes": self.total_writes,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "total_files": self.total_files,
            "active_files": self.active_files,
            "active_users": self.active_users,
            "user_accounts": self.user_accounts,
            "duration_hours": self.duration_hours,
        }


@dataclass
class Trace:
    """A workload trace: ordered records plus the file population.

    ``files`` may be empty on construction and derived lazily from the
    records with :meth:`file_metadata`.
    """

    name: str
    records: List[TraceRecord]
    files: List[FileMetadata] = field(default_factory=list)
    user_accounts: int = 0

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda r: r.timestamp)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ derived data
    def paths(self) -> List[str]:
        """Distinct paths appearing in the records, in first-appearance order."""
        seen: Dict[str, None] = {}
        for r in self.records:
            if r.path not in seen:
                seen[r.path] = None
        return list(seen.keys())

    def duration_seconds(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].timestamp - self.records[0].timestamp

    def file_metadata(self, schema: AttributeSchema = DEFAULT_SCHEMA) -> List[FileMetadata]:
        """File metadata derived from (or carried with) the trace.

        If the trace was generated with an explicit file population that
        population is returned; otherwise metadata is reconstructed by
        replaying the records (see :func:`build_file_metadata`).
        """
        if self.files:
            return self.files
        self.files = build_file_metadata(self.records, schema)
        return self.files

    def summary(self) -> TraceSummary:
        """Aggregate statistics in the shape of Tables 1-3."""
        reads = sum(1 for r in self.records if r.op == "read")
        writes = sum(1 for r in self.records if r.op == "write")
        read_bytes = float(sum(r.bytes for r in self.records if r.op == "read"))
        write_bytes = float(sum(r.bytes for r in self.records if r.op == "write"))
        active_paths = {r.path for r in self.records}
        total_files = max(len(self.files), len(active_paths))
        users = {r.user_id for r in self.records}
        return TraceSummary(
            name=self.name,
            total_requests=len(self.records),
            total_reads=reads,
            total_writes=writes,
            read_bytes=read_bytes,
            write_bytes=write_bytes,
            total_files=total_files,
            active_files=len(active_paths),
            active_users=len(users),
            user_accounts=max(self.user_accounts, len(users)),
            duration_hours=self.duration_seconds() / 3600.0,
        )


def build_file_metadata(
    records: Sequence[TraceRecord],
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> List[FileMetadata]:
    """Reconstruct per-file metadata by replaying trace records.

    The derivation rules mirror how a file system would maintain the
    attributes: creation time is the first appearance, modification time the
    last write, access time the last touch of any kind, read/write volumes
    and access counts accumulate, size is the largest write observed (or a
    nominal 4 KiB for files only ever read/statted), owner is the most
    recent user id.
    """
    state: Dict[str, Dict[str, float]] = {}
    for r in records:
        st = state.get(r.path)
        if st is None:
            st = {
                "size": 0.0,
                "ctime": r.timestamp,
                "mtime": r.timestamp,
                "atime": r.timestamp,
                "read_bytes": 0.0,
                "write_bytes": 0.0,
                "access_count": 0.0,
                "owner": float(r.user_id),
            }
            state[r.path] = st
        st["atime"] = r.timestamp
        st["access_count"] += 1.0
        st["owner"] = float(r.user_id)
        if r.op == "read":
            st["read_bytes"] += r.bytes
        elif r.op == "write":
            st["write_bytes"] += r.bytes
            st["mtime"] = r.timestamp
            st["size"] = max(st["size"], r.bytes)
        elif r.op == "create":
            st["ctime"] = min(st["ctime"], r.timestamp)
            st["mtime"] = r.timestamp
            st["size"] = max(st["size"], r.bytes)

    files: List[FileMetadata] = []
    for path, st in state.items():
        if st["size"] <= 0:
            st["size"] = 4096.0
        attrs = {name: st.get(name, 0.0) for name in schema.names}
        files.append(FileMetadata(path=path, attributes=attrs))
    return files
