"""Samplers for the skewed distributions file-system traces exhibit.

The evaluation leans on three empirical regularities the paper cites:
heavily skewed file popularity (a handful of files receive most requests),
log-normal file sizes spanning many orders of magnitude, and temporal
clustering of creation / modification times (files created by the same job
or project share timestamps).  The samplers here are vectorised numpy
implementations used by the synthetic trace generators and by the query
workload synthesiser (which draws query points from Uniform, Gauss and Zipf
distributions, §5.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "zipf_popularity",
    "sample_zipf_indices",
    "lognormal_sizes",
    "clustered_timestamps",
    "bounded_gauss",
]


def zipf_popularity(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probability vector over ranks ``0..n-1``.

    ``p_i ∝ 1 / (i + 1)^exponent``.  Unlike ``numpy.random.zipf`` this keeps
    the support bounded to exactly ``n`` items, which is what "file
    popularity over a fixed file population" needs.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def sample_zipf_indices(
    n: int,
    size: int,
    exponent: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw ``size`` item indices from a bounded Zipf distribution over ``n`` items."""
    rng = rng if rng is not None else np.random.default_rng()
    probs = zipf_popularity(n, exponent)
    return rng.choice(n, size=size, p=probs)


def lognormal_sizes(
    size: int,
    median_bytes: float = 64 * 1024,
    sigma: float = 2.0,
    max_bytes: float = 16 * 1024**3,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Log-normally distributed file sizes, clipped to ``[1, max_bytes]``.

    ``median_bytes`` is the distribution median (the log-normal ``mu`` is
    its natural log); ``sigma`` controls the spread across orders of
    magnitude.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    rng = rng if rng is not None else np.random.default_rng()
    raw = rng.lognormal(mean=np.log(median_bytes), sigma=sigma, size=size)
    return np.clip(raw, 1.0, max_bytes)


def clustered_timestamps(
    size: int,
    cluster_assignment: np.ndarray,
    duration_seconds: float,
    cluster_spread: float = 0.01,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Timestamps clustered per project/cluster within ``[0, duration]``.

    Each cluster receives a uniformly placed epoch; members scatter around
    it with a Gaussian whose standard deviation is ``cluster_spread *
    duration``.  This reproduces the "files of the same job share creation
    times" locality that makes time attributes semantically informative.
    """
    rng = rng if rng is not None else np.random.default_rng()
    cluster_assignment = np.asarray(cluster_assignment)
    if cluster_assignment.shape != (size,):
        raise ValueError(
            f"cluster_assignment must have shape ({size},), got {cluster_assignment.shape}"
        )
    if duration_seconds <= 0:
        raise ValueError("duration_seconds must be positive")
    n_clusters = int(cluster_assignment.max()) + 1 if size else 0
    epochs = rng.uniform(0.0, duration_seconds, size=max(n_clusters, 1))
    jitter = rng.normal(0.0, cluster_spread * duration_seconds, size=size)
    stamps = epochs[cluster_assignment] + jitter
    return np.clip(stamps, 0.0, duration_seconds)


def bounded_gauss(
    size: int,
    low: float,
    high: float,
    rng: Optional[np.random.Generator] = None,
    center_fraction: float = 0.5,
    spread_fraction: float = 0.15,
) -> np.ndarray:
    """Gaussian samples centred inside ``[low, high]`` and clipped to it.

    Used for the "Gauss" query-point distribution of §5.1.
    """
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    rng = rng if rng is not None else np.random.default_rng()
    center = low + center_fraction * (high - low)
    spread = max(spread_fraction * (high - low), 1e-12)
    return np.clip(rng.normal(center, spread, size=size), low, high)
