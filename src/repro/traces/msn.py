"""The MSN trace profile (Table 2).

The MSN trace characterises storage workloads of production Windows servers
(Kavalanekar et al., IISWC'08).  The original summary quoted by the paper:
1.25 million files, 3.30 million reads, 1.17 million writes, 4.47 million
total I/Os over 6 hours.  The synthetic profile keeps the read/write mix
(~74% reads among I/Os), the I/O-per-file density and the 6-hour duration at
a configurable down-scaling factor; :data:`MSN_ORIGINAL_SUMMARY` carries the
published totals for exact Table 2 reporting.
"""

from __future__ import annotations

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.traces.base import Trace, TraceSummary
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

__all__ = ["MSN_ORIGINAL_SUMMARY", "msn_config", "msn_trace"]

#: Published summary of the original (un-intensified) MSN trace, Table 2.
MSN_ORIGINAL_SUMMARY = TraceSummary(
    name="MSN",
    total_requests=4_470_000,
    total_reads=3_300_000,
    total_writes=1_170_000,
    read_bytes=0.0,
    write_bytes=0.0,
    total_files=1_250_000,
    active_files=1_250_000,
    active_users=64,
    user_accounts=64,
    duration_hours=6.0,
)

#: TIF used for the MSN trace in Table 2.
MSN_TABLE_TIF = 100


def msn_config(scale: float = 1.0, seed: int = 29) -> SyntheticTraceConfig:
    """Synthetic MSN profile.

    ``scale = 1.0`` yields roughly 2,500 files and ~9,000 requests with the
    published read/write mix (3.30M : 1.17M ≈ 0.74 : 0.26 of I/Os).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return SyntheticTraceConfig(
        name="msn",
        n_files=max(200, int(2500 * scale)),
        n_requests=max(500, int(9000 * scale)),
        n_users=64,
        user_accounts=64,
        n_projects=max(8, int(25 * scale)),
        duration_hours=6.0,
        # I/O dominated workload: reads+writes ≈ 96% of operations.
        read_fraction=0.71,
        write_fraction=0.25,
        stat_fraction=0.03,
        create_fraction=0.01,
        mean_read_bytes=24 * 1024,
        mean_write_bytes=28 * 1024,
        median_file_size=48 * 1024,
        size_sigma=1.7,
        popularity_exponent=1.0,
        seed=seed,
    )


def msn_trace(
    scale: float = 1.0,
    seed: int = 29,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> Trace:
    """Generate the synthetic MSN trace."""
    return generate_trace(msn_config(scale, seed), schema)
