"""Synthetic file-system traces and the TIF scale-up procedure.

The paper's evaluation replays three real-world traces — HP (a research
file-server workload), MSN (a production Windows-server storage workload)
and EECS (an NFS e-mail/research workload) — none of which is publicly
redistributable today.  This subpackage generates *synthetic* traces whose
summary statistics match the original columns of Tables 1-3 (request
counts, file counts, read/write volumes, user counts, durations) and whose
attribute distributions carry the properties the evaluation relies on:
Zipf-skewed file popularity, log-normal file sizes, temporally clustered
creation/modification times and strong multi-dimensional correlation within
"project" clusters of files.

The Trace Intensifying Factor (TIF) scale-up of §5.1 is implemented in
:mod:`repro.traces.scaleup`: the trace is replicated into TIF sub-traces,
every file of each sub-trace receives a unique sub-trace ID (growing the
working set), all sub-trace start times are set to zero so they replay
concurrently, and the chronological order within each sub-trace is
preserved.
"""

from repro.traces.base import TraceRecord, Trace, TraceSummary, build_file_metadata
from repro.traces.distributions import (
    zipf_popularity,
    sample_zipf_indices,
    lognormal_sizes,
    clustered_timestamps,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.traces.hp import hp_config, hp_trace, HP_ORIGINAL_SUMMARY
from repro.traces.msn import msn_config, msn_trace, MSN_ORIGINAL_SUMMARY
from repro.traces.eecs import eecs_config, eecs_trace, EECS_ORIGINAL_SUMMARY
from repro.traces.scaleup import scale_up, scaled_summary

__all__ = [
    "TraceRecord",
    "Trace",
    "TraceSummary",
    "build_file_metadata",
    "zipf_popularity",
    "sample_zipf_indices",
    "lognormal_sizes",
    "clustered_timestamps",
    "SyntheticTraceConfig",
    "generate_trace",
    "hp_config",
    "hp_trace",
    "HP_ORIGINAL_SUMMARY",
    "msn_config",
    "msn_trace",
    "MSN_ORIGINAL_SUMMARY",
    "eecs_config",
    "eecs_trace",
    "EECS_ORIGINAL_SUMMARY",
    "scale_up",
    "scaled_summary",
]
