"""The per-file metadata record used throughout the reproduction.

A :class:`FileMetadata` is deliberately lightweight: a file identifier, a
path/filename (used only by the filename point query path, which routes over
Bloom filters) and a dictionary of numeric attribute values keyed by the
names of an :class:`~repro.metadata.attributes.AttributeSchema`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA

__all__ = ["FileMetadata", "make_file_id"]


def make_file_id(path: str) -> int:
    """Derive a stable 63-bit integer file identifier from a path.

    The prototype described in the paper uses MD5 both for Bloom-filter
    hashing and to derive stable identifiers; we reuse the same primitive so
    identifiers are reproducible across runs and processes (Python's builtin
    ``hash`` is salted per process).
    """
    digest = hashlib.md5(path.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFFFFFFFFFFFFFF


@dataclass
class FileMetadata:
    """Metadata of one file.

    Parameters
    ----------
    path:
        Full pathname.  The trailing component is exposed as
        :attr:`filename` and indexed by the Bloom filters for point query.
    attributes:
        Mapping from attribute name to numeric value.  Every attribute of
        the schema in use must be present when the record is vectorised.
    file_id:
        Stable integer identifier; derived from the path if not given.
    extra:
        Free-form annotations (e.g. the sub-trace ID added by TIF scale-up,
        or a content fingerprint used by the de-duplication application).
        Never interpreted by the core system.
    """

    path: str
    attributes: Dict[str, float]
    file_id: Optional[int] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must be a non-empty string")
        if self.file_id is None:
            self.file_id = make_file_id(self.path)
        # Normalise attribute values to plain floats once, so that numpy
        # vectorisation downstream never needs to coerce object arrays.
        self.attributes = {k: float(v) for k, v in self.attributes.items()}

    # -- accessors ---------------------------------------------------------------
    @property
    def filename(self) -> str:
        """The final path component (what filename point queries look up)."""
        return self.path.rsplit("/", 1)[-1]

    @property
    def directory(self) -> str:
        """The directory part of the path (empty for top-level files)."""
        if "/" not in self.path:
            return ""
        return self.path.rsplit("/", 1)[0]

    def get(self, name: str, default: float = 0.0) -> float:
        """Value of attribute ``name`` or ``default`` when absent."""
        return self.attributes.get(name, default)

    def vector(self, schema: AttributeSchema = DEFAULT_SCHEMA) -> np.ndarray:
        """Attribute vector of this file in schema order (raw, un-normalised).

        Raises ``KeyError`` if an attribute required by the schema is
        missing from this record.
        """
        try:
            return np.array([self.attributes[n] for n in schema.names], dtype=np.float64)
        except KeyError as exc:  # re-raise with a more useful message
            raise KeyError(
                f"file {self.path!r} is missing attribute {exc.args[0]!r} "
                f"required by the schema"
            ) from None

    # -- mutation helpers ----------------------------------------------------------
    def with_updates(self, **attribute_updates: float) -> "FileMetadata":
        """Return a copy with some attribute values replaced.

        Behavioural attributes change over the lifetime of a file (read
        volume grows, access count increments); the versioning machinery
        records such updates as immutable deltas, hence the copy-on-write
        style here.
        """
        new_attrs = dict(self.attributes)
        for key, value in attribute_updates.items():
            new_attrs[key] = float(value)
        return replace(self, attributes=new_attrs, extra=dict(self.extra))

    def matches_ranges(
        self,
        names: Sequence[str],
        lower: Sequence[float],
        upper: Sequence[float],
    ) -> bool:
        """True when every named attribute lies within ``[lower, upper]``."""
        for name, lo, hi in zip(names, lower, upper):
            value = self.attributes.get(name)
            if value is None or value < lo or value > hi:
                return False
        return True

    def __hash__(self) -> int:
        return hash(self.file_id)


def files_by_id(files: Iterable[FileMetadata]) -> Dict[int, FileMetadata]:
    """Index a collection of metadata records by file id."""
    return {f.file_id: f for f in files}
