"""File-metadata model: attribute schema, metadata records and matrices.

SmartStore organises *file metadata* — not file contents — by the semantic
correlation of multi-dimensional attributes.  This subpackage defines:

* :class:`~repro.metadata.attributes.AttributeSchema` — the ordered set of
  numeric attributes a deployment indexes (file size, timestamps, I/O
  volumes, access counts, ...), together with normalisation hints.
* :class:`~repro.metadata.file_metadata.FileMetadata` — one file's metadata
  record (path, filename plus the attribute values).
* :mod:`~repro.metadata.matrix` — vectorised helpers that turn a collection
  of metadata records into the attribute–file matrices consumed by the LSI
  machinery and by the R-tree substrates.
"""

from repro.metadata.attributes import AttributeSchema, AttributeSpec, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata, make_file_id
from repro.metadata.matrix import (
    attribute_matrix,
    normalize_matrix,
    attribute_bounds,
    centroid,
)

__all__ = [
    "AttributeSchema",
    "AttributeSpec",
    "DEFAULT_SCHEMA",
    "FileMetadata",
    "make_file_id",
    "attribute_matrix",
    "normalize_matrix",
    "attribute_bounds",
    "centroid",
]
