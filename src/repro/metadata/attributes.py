"""Attribute schema for file metadata.

The paper exploits *multi-dimensional* metadata attributes, both physical
(file size, creation time, last modification time, ...) and behavioural
(amount of read/write traffic, access frequency, owning process).  A
:class:`AttributeSchema` fixes the ordered list of numeric attributes a
SmartStore deployment indexes; every attribute vector, MBR and LSI matrix in
this repository is expressed in the order the schema defines.

Schemas are deliberately small, immutable value objects so that they can be
shared freely between the core system, the baselines and the trace
generators without defensive copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Sequence, Tuple

__all__ = ["AttributeSpec", "AttributeSchema", "DEFAULT_SCHEMA"]


@dataclass(frozen=True)
class AttributeSpec:
    """Description of a single numeric metadata attribute.

    Parameters
    ----------
    name:
        Attribute identifier, e.g. ``"size"`` or ``"mtime"``.
    kind:
        ``"physical"`` for attributes that rarely change once the file is
        created (size, creation time) or ``"behavioural"`` for attributes
        driven by the access history (read volume, access count).  The
        distinction mirrors §2.3 of the paper and is used by the automatic
        configuration component when enumerating attribute subsets.
    log_scale:
        If true the attribute spans several orders of magnitude (file
        sizes, I/O volumes) and is log-transformed before normalisation so
        that the Euclidean geometry used by the grouping step is not
        dominated by a handful of huge files.
    unit:
        Human-readable unit, for reporting only.
    """

    name: str
    kind: str = "physical"
    log_scale: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("physical", "behavioural"):
            raise ValueError(
                f"attribute kind must be 'physical' or 'behavioural', got {self.kind!r}"
            )


@dataclass(frozen=True)
class AttributeSchema:
    """An ordered, immutable collection of :class:`AttributeSpec`.

    The schema defines dimension ``D`` of the attribute space.  Queries may
    address any subset ``d <= D`` of these attributes (see the automatic
    configuration machinery in :mod:`repro.core.autoconfig`).
    """

    specs: Tuple[AttributeSpec, ...]
    _index: Dict[str, int] = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        names = [s.name for s in self.specs]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate attribute names in schema: {names}")
        if not names:
            raise ValueError("schema must contain at least one attribute")
        object.__setattr__(self, "specs", tuple(self.specs))
        object.__setattr__(self, "_index", {n: i for i, n in enumerate(names)})

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self.specs)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    # -- accessors ----------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(s.name for s in self.specs)

    @property
    def dimension(self) -> int:
        """The number of attributes ``D``."""
        return len(self.specs)

    def index(self, name: str) -> int:
        """Return the position of ``name`` in the schema.

        Raises ``KeyError`` if the attribute is unknown.
        """
        return self._index[name]

    def spec(self, name: str) -> AttributeSpec:
        """Return the :class:`AttributeSpec` for ``name``."""
        return self.specs[self._index[name]]

    def indices(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Positions of several attributes, preserving the given order."""
        return tuple(self._index[n] for n in names)

    def physical_names(self) -> Tuple[str, ...]:
        """Names of the physical (slowly changing) attributes."""
        return tuple(s.name for s in self.specs if s.kind == "physical")

    def behavioural_names(self) -> Tuple[str, ...]:
        """Names of the behavioural (access-driven) attributes."""
        return tuple(s.name for s in self.specs if s.kind == "behavioural")

    def log_scale_mask(self) -> Tuple[bool, ...]:
        """Per-attribute flag telling whether log transformation applies."""
        return tuple(s.log_scale for s in self.specs)

    def subset(self, names: Sequence[str]) -> "AttributeSchema":
        """Return a new schema restricted to ``names`` (in the given order).

        Used by the automatic configuration component, which builds one
        semantic R-tree per "interesting" attribute subset (§2.4).
        """
        missing = [n for n in names if n not in self._index]
        if missing:
            raise KeyError(f"unknown attributes {missing}; schema has {list(self.names)}")
        return AttributeSchema(tuple(self.spec(n) for n in names))


#: The attribute schema used throughout the evaluation.  It mirrors the
#: attributes named in the paper: physical attributes (file size, creation
#: time, last modification time, last access time, owner) plus behavioural
#: attributes (cumulative read and write volume and access count).
DEFAULT_SCHEMA = AttributeSchema(
    (
        AttributeSpec("size", kind="physical", log_scale=True, unit="bytes"),
        AttributeSpec("ctime", kind="physical", unit="s"),
        AttributeSpec("mtime", kind="physical", unit="s"),
        AttributeSpec("atime", kind="behavioural", unit="s"),
        AttributeSpec("read_bytes", kind="behavioural", log_scale=True, unit="bytes"),
        AttributeSpec("write_bytes", kind="behavioural", log_scale=True, unit="bytes"),
        AttributeSpec("access_count", kind="behavioural", log_scale=True, unit="ops"),
        AttributeSpec("owner", kind="physical", unit="uid"),
    )
)
