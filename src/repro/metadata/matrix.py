"""Vectorised attribute-matrix helpers.

Every analytic component of the reproduction (LSI, grouping, MBR
construction, the R-tree baselines) consumes file metadata as dense numpy
matrices with one row per file and one column per schema attribute.  The
helpers here build those matrices once and keep all per-element work inside
numpy, following the optimisation guidance for scientific Python (vectorise,
avoid per-row Python loops, avoid unnecessary copies).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata

__all__ = [
    "attribute_matrix",
    "normalize_matrix",
    "attribute_bounds",
    "centroid",
    "log_transform",
]


def attribute_matrix(
    files: Sequence[FileMetadata],
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> np.ndarray:
    """Build the ``(n_files, D)`` raw attribute matrix for ``files``.

    The matrix is in schema order; missing attributes raise ``KeyError`` so
    that silent zero-filling never skews the semantic analysis.
    """
    n = len(files)
    d = schema.dimension
    out = np.empty((n, d), dtype=np.float64)
    names = schema.names
    for i, f in enumerate(files):
        attrs = f.attributes
        for j, name in enumerate(names):
            try:
                out[i, j] = attrs[name]
            except KeyError:
                raise KeyError(
                    f"file {f.path!r} is missing attribute {name!r} required by the schema"
                ) from None
    return out


def log_transform(
    matrix: np.ndarray,
    schema: AttributeSchema = DEFAULT_SCHEMA,
) -> np.ndarray:
    """Apply ``log1p`` to the columns the schema marks as ``log_scale``.

    Returns a new array; the input is never modified in place because the
    raw matrix is typically also needed for MBRs and range filtering.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != schema.dimension:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match schema dimension {schema.dimension}"
        )
    mask = np.array(schema.log_scale_mask(), dtype=bool)
    if not mask.any():
        return matrix.copy()
    out = matrix.copy()
    cols = out[:, mask]
    if np.any(cols < 0):
        raise ValueError("log-scaled attributes must be non-negative")
    out[:, mask] = np.log1p(cols)
    return out


def normalize_matrix(
    matrix: np.ndarray,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Min-max normalise each column of ``matrix`` into ``[0, 1]``.

    Parameters
    ----------
    matrix:
        ``(n, D)`` attribute matrix (typically already log-transformed).
    lower, upper:
        Optional per-column bounds.  When omitted they are computed from
        the data; passing explicit bounds lets callers normalise query
        points with exactly the same transform that was applied to the
        indexed files.

    Returns
    -------
    (normalised, lower, upper):
        The normalised matrix plus the bounds actually used.  Degenerate
        columns (``upper == lower``) map to 0.5 so they contribute no
        spurious distance.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if lower is None:
        lower = matrix.min(axis=0)
    else:
        lower = np.asarray(lower, dtype=np.float64)
    if upper is None:
        upper = matrix.max(axis=0)
    else:
        upper = np.asarray(upper, dtype=np.float64)

    span = upper - lower
    degenerate = span <= 0
    safe_span = np.where(degenerate, 1.0, span)
    normalised = (matrix - lower) / safe_span
    if degenerate.any():
        normalised[:, degenerate] = 0.5
    np.clip(normalised, 0.0, 1.0, out=normalised)
    return normalised, lower, upper


def attribute_bounds(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-column ``(min, max)`` of an attribute matrix.

    This is the Minimum Bounding Rectangle of the point set and is what
    index units advertise up the semantic R-tree.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        raise ValueError("cannot compute bounds of an empty matrix")
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    return matrix.min(axis=0), matrix.max(axis=0)


def centroid(matrix: np.ndarray) -> np.ndarray:
    """Geometric centroid (column means) of an attribute matrix.

    Each semantic R-tree node is summarised by the centroid of the metadata
    it covers (§3.1.1); grouping quality is measured as the summed squared
    distance to these centroids (§1.1).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.size == 0:
        raise ValueError("cannot compute the centroid of an empty matrix")
    if matrix.ndim == 1:
        return matrix.astype(np.float64, copy=True)
    return matrix.mean(axis=0)
