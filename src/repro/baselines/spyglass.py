"""A Spyglass-style baseline: namespace-partitioned K-D tree indexing.

Spyglass (Leung et al., FAST'09 — discussed in §6.2) attacks the same
problem as SmartStore but from the namespace side: it carves the directory
hierarchy into partitions, builds one multi-dimensional K-D tree per
partition, keeps the partition signatures (attribute bounds) in memory and
prunes partitions whose bounds cannot contain a query.  It is, however, a
*single-server* design — the paper's criticism is that it "focuses on the
indexing on a single server and cannot support distributed indexing on
multiple servers".

This baseline reproduces that design faithfully enough to compare against:

* the namespace is partitioned greedily along directory subtrees until each
  partition holds at most ``partition_size`` files (Spyglass's
  hierarchical partitioning);
* each partition gets a K-D tree over the (index-space) attributes, a
  filename map and an attribute-bounds signature;
* queries prune partitions by signature, then search the surviving
  partitions' K-D trees; everything is charged at memory speed (Spyglass's
  headline property is that its index fits in memory), but it all happens
  on one server, so there is no distribution and no multicast.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.kdtree.kdtree import KDTree
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.namespace.tree import DirectoryNode, DirectoryTree
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["SpyglassBaseline", "NamespacePartition"]


class NamespacePartition:
    """One namespace partition: a subtree's files plus their K-D tree index."""

    def __init__(
        self,
        partition_id: int,
        root_path: str,
        file_rows: np.ndarray,
        files: Sequence[FileMetadata],
        index_matrix: np.ndarray,
        access_counter,
    ) -> None:
        self.partition_id = partition_id
        self.root_path = root_path
        self.file_rows = file_rows                      # row indices into the global matrix
        self.files = list(files)
        self._points = index_matrix[file_rows]
        self.lower = self._points.min(axis=0)
        self.upper = self._points.max(axis=0)
        self.tree = KDTree(self._points, leaf_size=16, access_counter=access_counter)
        self.by_filename: Dict[str, List[int]] = {}
        for local, row in enumerate(file_rows):
            self.by_filename.setdefault(files[local].filename, []).append(local)

    def __len__(self) -> int:
        return len(self.files)

    def may_intersect(self, idx: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> bool:
        """Signature check: can this partition contain points in the box?"""
        return bool(
            np.all(upper >= self.lower[idx]) and np.all(lower <= self.upper[idx])
        )

    def min_distance(self, idx: np.ndarray, point: np.ndarray) -> float:
        """Lower bound on the distance from ``point`` to any file in the partition."""
        clipped = np.clip(point, self.lower[idx], self.upper[idx])
        return float(np.sqrt(((point - clipped) ** 2).sum()))


class SpyglassBaseline:
    """Single-server, namespace-partitioned K-D tree metadata index.

    Parameters
    ----------
    files:
        File population to index.
    schema:
        Attribute schema; queries may address any subset of it.
    partition_size:
        Target maximum number of files per namespace partition.
    cost_model:
        Hardware constants for latency accounting.
    """

    def __init__(
        self,
        files: Sequence[FileMetadata],
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        partition_size: int = 500,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not files:
            raise ValueError("cannot build the Spyglass baseline over an empty file population")
        if partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        self.files = list(files)
        self.schema = schema
        self.partition_size = partition_size
        self.cost_model = cost_model
        self.metrics = Metrics()  # lifetime counters
        self._pending: Optional[Metrics] = None

        raw = attribute_matrix(self.files, schema)
        self._index_matrix = log_transform(raw, schema)
        lower = self._index_matrix.min(axis=0)
        upper = self._index_matrix.max(axis=0)
        self._norm_span = np.where(upper > lower, upper - lower, 1.0)
        self._norm_lower = lower
        self._log_mask = np.array(schema.log_scale_mask(), dtype=bool)

        self._row_of = {f.file_id: i for i, f in enumerate(self.files)}
        self.partitions = self._partition_namespace()

    # ------------------------------------------------------------------ partitioning
    def _partition_namespace(self) -> List[NamespacePartition]:
        """Carve the namespace into subtrees of at most ``partition_size`` files.

        Greedy top-down walk: a directory whose subtree fits the budget (or
        that has no subdirectories) becomes one partition; larger
        directories recurse into their children, with the directory's own
        direct files forming a residual partition.
        """
        tree = DirectoryTree()
        tree.add_files(self.files)

        partitions: List[NamespacePartition] = []

        def counter(count: int = 1) -> None:
            if self._pending is not None:
                self._pending.record_index_access(count, on_disk=False)

        def emit(root_path: str, members: List[FileMetadata]) -> None:
            if not members:
                return
            rows = np.array([self._row_of[f.file_id] for f in members], dtype=np.int64)
            partitions.append(
                NamespacePartition(
                    partition_id=len(partitions),
                    root_path=root_path,
                    file_rows=rows,
                    files=members,
                    index_matrix=self._index_matrix,
                    access_counter=counter,
                )
            )

        def walk(node: DirectoryNode) -> None:
            subtree_size = node.subtree_file_count()
            if subtree_size == 0:
                return
            if subtree_size <= self.partition_size or not node.subdirs:
                emit(node.path, list(node.iter_files()))
                return
            emit(node.path, list(node.files.values()))
            for child in node.subdirs.values():
                walk(child)

        walk(tree.root)
        return partitions

    # ------------------------------------------------------------------ helpers
    def _new_metrics(self) -> Metrics:
        metrics = Metrics()
        metrics.record_message(2)  # client -> index server -> client
        metrics.record_unit_visit(0)
        self._pending = metrics
        return metrics

    def _finish(self, files: List[FileMetadata], metrics: Metrics,
                distances: Optional[List[float]] = None) -> QueryResult:
        self._pending = None
        self.metrics.merge(metrics)
        return QueryResult(
            files=files,
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=1,
            hops=0,
            found=bool(files),
            distances=list(distances) if distances else [],
        )

    def _query_window(self, query: RangeQuery) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        idx = np.array([self.schema.index(a) for a in query.attributes], dtype=np.int64)
        lower = np.array(query.lower, dtype=np.float64)
        upper = np.array(query.upper, dtype=np.float64)
        mask = self._log_mask[idx]
        lower[mask] = np.log1p(np.maximum(lower[mask], 0.0))
        upper[mask] = np.log1p(np.maximum(upper[mask], 0.0))
        return idx, lower, upper

    def _full_box(self, idx: np.ndarray, lower: np.ndarray, upper: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
        full_lower = self._index_matrix.min(axis=0) - 1.0
        full_upper = self._index_matrix.max(axis=0) + 1.0
        full_lower[idx] = lower
        full_upper[idx] = upper
        return full_lower, full_upper

    # ------------------------------------------------------------------ queries
    def point_query(self, query: PointQuery) -> QueryResult:
        """Filename lookup via the per-partition filename maps."""
        metrics = self._new_metrics()
        matches: List[FileMetadata] = []
        for partition in self.partitions:
            metrics.record_index_access(1, on_disk=False)  # partition signature / name map probe
            for local in partition.by_filename.get(query.filename, []):
                matches.append(partition.files[local])
        metrics.record_scan(max(len(matches), 1), on_disk=False)
        return self._finish(matches, metrics)

    def range_query(self, query: RangeQuery) -> QueryResult:
        """Prune partitions by signature, then box-search the survivors' K-D trees."""
        metrics = self._new_metrics()
        idx, lower, upper = self._query_window(query)
        matches: List[FileMetadata] = []
        for partition in self.partitions:
            metrics.record_index_access(1, on_disk=False)  # signature check
            if not partition.may_intersect(idx, lower, upper):
                continue
            full_lower, full_upper = self._full_box(idx, lower, upper)
            hits = partition.tree.range_search(full_lower, full_upper)
            metrics.record_scan(len(hits), on_disk=False)
            matches.extend(partition.files[h] for h in hits)
        return self._finish(matches, metrics)

    def topk_query(self, query: TopKQuery) -> QueryResult:
        """Best-first search over partitions ordered by signature distance."""
        metrics = self._new_metrics()
        idx = np.array([self.schema.index(a) for a in query.attributes], dtype=np.int64)
        values = np.array(query.values, dtype=np.float64)
        mask = self._log_mask[idx]
        values[mask] = np.log1p(np.maximum(values[mask], 0.0))
        # Distances are computed in the normalised subspace so results agree
        # with the other systems; the per-partition K-D trees store raw
        # index-space points, so the k-NN is done directly over the subset.
        norm = (self._index_matrix[:, idx] - self._norm_lower[idx]) / self._norm_span[idx]
        target = (values - self._norm_lower[idx]) / self._norm_span[idx]

        candidates: List[Tuple[float, int]] = []  # (distance, global row)
        ordered = sorted(
            self.partitions, key=lambda p: p.min_distance(idx, values)
        )
        worst = np.inf
        for partition in ordered:
            metrics.record_index_access(1, on_disk=False)  # signature check
            # Signature pruning: if even the closest corner of the partition's
            # bounds (in raw index space) cannot beat the current worst
            # normalised distance, no point searching it.  The bound is
            # conservative because spans rescale distances; rescale it too.
            lower_bound_raw = partition.min_distance(idx, values)
            lower_bound = lower_bound_raw / float(np.max(self._norm_span[idx]))
            if len(candidates) >= query.k and lower_bound > worst:
                continue
            rows = partition.file_rows
            metrics.record_index_access(max(1, partition.tree.height()), on_disk=False)
            metrics.record_scan(len(rows), on_disk=False)
            dists = np.sqrt(((norm[rows] - target[None, :]) ** 2).sum(axis=1))
            for row, dist in zip(rows, dists):
                candidates.append((float(dist), int(row)))
            candidates.sort(key=lambda pair: pair[0])
            candidates = candidates[: query.k]
            if len(candidates) == query.k:
                worst = candidates[-1][0]
        files = [self.files[row] for _, row in candidates]
        return self._finish(files, metrics, distances=[d for d, _ in candidates])

    def execute(self, query) -> QueryResult:
        """Dispatch any query object to the matching interface."""
        if isinstance(query, PointQuery):
            return self.point_query(query)
        if isinstance(query, RangeQuery):
            return self.range_query(query)
        if isinstance(query, TopKQuery):
            return self.topk_query(query)
        raise TypeError(f"unsupported query type {type(query)!r}")

    # ------------------------------------------------------------------ space accounting
    def index_space_bytes(self) -> int:
        """Bytes of K-D tree nodes, signatures and filename maps."""
        cm = self.cost_model
        total = 0
        for partition in self.partitions:
            total += partition.tree.node_count * cm.index_entry_bytes
            total += 2 * self.schema.dimension * 8  # the bounds signature
            total += len(partition.files) * cm.index_entry_bytes  # filename map entries
        return total

    def index_space_bytes_per_node(self) -> int:
        """Single-server design: everything lives on one machine."""
        return self.index_space_bytes()

    def __repr__(self) -> str:
        return (
            f"SpyglassBaseline(files={len(self.files)}, partitions={len(self.partitions)}, "
            f"partition_size={self.partition_size})"
        )
