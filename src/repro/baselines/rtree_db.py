"""The non-semantic R-tree baseline.

A single, centralised R-tree indexes every file's multi-dimensional
attribute point, ignoring metadata semantics: there is no grouping, no
distribution across servers, and no Bloom-filter routing.  It improves over
the per-attribute DBMS because one multi-dimensional structure serves all
attributes at once (§5.2), but every query still descends an index over the
entire file population hosted on one machine, and at the paper's scales that
index is disk resident.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform
from repro.rtree.knn import knn_search
from repro.rtree.rtree import RTree
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["RTreeBaseline"]


class RTreeBaseline:
    """One centralised R-tree over the full attribute space."""

    def __init__(
        self,
        files: Sequence[FileMetadata],
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        max_entries: int = 64,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not files:
            raise ValueError("cannot build the R-tree baseline over an empty file population")
        self.files = list(files)
        self.schema = schema
        self.cost_model = cost_model
        self.metrics = Metrics()

        # Index in the same log-transformed ("index") space SmartStore uses:
        # any competent R-tree implementation normalises wide-range
        # attributes, and doing so here keeps the comparison about
        # *organisation* (centralised vs. semantic/distributed), not about a
        # strawman index.  Nodes are page sized (``max_entries`` entries per
        # 4 KiB page) and every node access is a disk page read.
        raw = attribute_matrix(self.files, schema)
        self._matrix = raw
        self._index_matrix = log_transform(raw, schema)
        lower = self._index_matrix.min(axis=0)
        upper = self._index_matrix.max(axis=0)
        self._norm_lower = lower
        self._norm_span = np.where(upper - lower > 0, upper - lower, 1.0)
        self._log_mask = np.array(schema.log_scale_mask(), dtype=bool)

        # Node accesses during queries are charged to the *query's* metrics
        # object; the indirection below lets us swap the target per query.
        self._active_metrics: Optional[Metrics] = None

        def on_access() -> None:
            if self._active_metrics is not None:
                self._active_metrics.record_index_access(on_disk=True)

        self.tree = RTree(
            dimension=schema.dimension, max_entries=max_entries, access_counter=on_access
        )
        # The build itself is not charged to any query.
        for i, f in enumerate(self.files):
            self.tree.insert(self._index_matrix[i], i)

        self._by_filename = {}
        for i, f in enumerate(self.files):
            self._by_filename.setdefault(f.filename, []).append(i)

    def _to_index_space(self, attributes, values) -> np.ndarray:
        out = np.asarray(values, dtype=np.float64).copy()
        for j, name in enumerate(attributes):
            if self.schema.spec(name).log_scale:
                out[j] = np.log1p(max(out[j], 0.0))
        return out

    # ------------------------------------------------------------------ helpers
    def _finish(self, files: List[FileMetadata], metrics: Metrics, distances=None) -> QueryResult:
        self.metrics.merge(metrics)
        return QueryResult(
            files=files,
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=1,
            hops=0,
            found=bool(files),
            distances=distances or [],
        )

    def _full_window(self, query: RangeQuery) -> tuple[np.ndarray, np.ndarray]:
        """Expand a partial-attribute window to full dimensionality (index space)."""
        lower = self._index_matrix.min(axis=0).copy()
        upper = self._index_matrix.max(axis=0).copy()
        lo_idx = self._to_index_space(query.attributes, query.lower)
        hi_idx = self._to_index_space(query.attributes, query.upper)
        for pos, name in enumerate(query.attributes):
            j = self.schema.index(name)
            lower[j] = lo_idx[pos]
            upper[j] = hi_idx[pos]
        return lower, upper

    # ------------------------------------------------------------------ queries
    def point_query(self, query: PointQuery) -> QueryResult:
        """Filename lookup.

        A plain R-tree over attribute points cannot index filenames; the
        centralised server keeps a small auxiliary filename index on the
        side.  Its upper levels stay cached (it is the only other structure
        on the machine), so a lookup costs one leaf-page read plus the
        record fetch.
        """
        metrics = Metrics()
        metrics.record_message(2)
        metrics.record_unit_visit(0)
        metrics.record_index_access(1, on_disk=True)
        indices = self._by_filename.get(query.filename, [])
        metrics.record_scan(max(1, len(indices)), on_disk=True)
        return self._finish([self.files[i] for i in indices], metrics)

    def range_query(self, query: RangeQuery) -> QueryResult:
        """Window search over the centralised R-tree."""
        metrics = Metrics()
        metrics.record_message(2)
        metrics.record_unit_visit(0)
        lower, upper = self._full_window(query)
        self._active_metrics = metrics
        try:
            entries = self.tree.search_range(lower, upper)
        finally:
            self._active_metrics = None
        metrics.record_scan(len(entries), on_disk=True)
        return self._finish([self.files[e.payload] for e in entries], metrics)

    def topk_query(self, query: TopKQuery) -> QueryResult:
        """Best-first k-NN over the centralised R-tree.

        The R-tree indexes raw attribute values, so the branch-and-bound
        runs in raw space; the returned distances are recomputed in the
        deployment-wide normalised space for comparability with SmartStore.
        """
        metrics = Metrics()
        metrics.record_message(2)
        metrics.record_unit_visit(0)

        # Build a full-dimensional query point: unconstrained attributes sit
        # at the population mean so they do not skew the search.
        point = self._index_matrix.mean(axis=0)
        values_idx = self._to_index_space(query.attributes, query.values)
        for pos, name in enumerate(query.attributes):
            point[self.schema.index(name)] = values_idx[pos]

        self._active_metrics = metrics
        try:
            pairs = knn_search(self.tree, point, query.k)
        finally:
            self._active_metrics = None
        metrics.record_scan(max(1, len(pairs)), on_disk=True)

        idx = list(self.schema.indices(query.attributes))
        lower = self._norm_lower[idx]
        span = self._norm_span[idx]
        target = (values_idx - lower) / span
        scored: List[tuple] = []
        for _, entry in pairs:
            f = self.files[entry.payload]
            fvals = (self._index_matrix[entry.payload, idx] - lower) / span
            scored.append((float(np.linalg.norm(fvals - target)), f))
        # The branch-and-bound ran over the full-dimension index space;
        # re-rank by the constrained-attribute normalised distance so callers
        # see a consistently ordered result list.
        scored.sort(key=lambda pair: pair[0])
        files = [f for _, f in scored]
        distances = [d for d, _ in scored]
        return self._finish(files, metrics, distances)

    def execute(self, query) -> QueryResult:
        """Dispatch any query object to the matching interface."""
        if isinstance(query, PointQuery):
            return self.point_query(query)
        if isinstance(query, RangeQuery):
            return self.range_query(query)
        if isinstance(query, TopKQuery):
            return self.topk_query(query)
        raise TypeError(f"unsupported query type {type(query)!r}")

    # ------------------------------------------------------------------ space accounting
    def index_space_bytes(self) -> int:
        """Total index footprint of the centralised R-tree."""
        cm = self.cost_model
        node_bytes = self.tree.node_count() * self.tree.max_entries * cm.index_entry_bytes
        filename_bytes = len(self.files) * cm.index_entry_bytes
        return node_bytes + filename_bytes

    def index_space_bytes_per_node(self) -> int:
        """Figure 7 reports per-node overhead; this baseline has one node."""
        return self.index_space_bytes()
