"""Comparison systems used by the evaluation.

The two baselines of the paper's §5.1:

* :class:`~repro.baselines.dbms.DBMSBaseline` — "a popular database
  approach that uses a B+-tree to index each metadata attribute".  All
  per-attribute indexes live on a single database server and, at the scales
  the paper targets, are disk resident; multi-attribute queries intersect
  per-attribute scans and top-k queries degenerate to linear scans.
* :class:`~repro.baselines.rtree_db.RTreeBaseline` — "a simple,
  non-semantic R-tree-based database approach" holding every file's
  multi-dimensional attribute point in one centralised R-tree, ignoring
  metadata semantics.

Two further comparators from the related-work discussion (§6.2), used by
the ablation benchmarks:

* :class:`~repro.baselines.spyglass.SpyglassBaseline` — a Spyglass-style
  single-server index: the namespace is carved into subtree partitions,
  each indexed by a K-D tree with an attribute-bounds signature for
  pruning.
* :class:`~repro.namespace.baseline.DirectoryTreeBaseline` (in
  :mod:`repro.namespace`) — the conventional directory-tree organisation
  answering complex queries by brute-force walks.

All comparators expose the same three query interfaces as SmartStore and
account their work on the same :class:`~repro.cluster.metrics.Metrics`
abstraction, so the Table 4 / Figure 7 comparisons are apples-to-apples.
"""

from repro.baselines.dbms import DBMSBaseline
from repro.baselines.rtree_db import RTreeBaseline
from repro.baselines.spyglass import SpyglassBaseline

__all__ = ["DBMSBaseline", "RTreeBaseline", "SpyglassBaseline"]
