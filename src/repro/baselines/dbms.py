"""The DBMS baseline: one B+-tree per metadata attribute.

This reproduces the access pattern the paper ascribes to the database
approach: every attribute is indexed independently by a B+-tree on a single
database server, so

* a point (filename) query descends the filename B+-tree;
* a multi-attribute range query runs one index range scan per constrained
  attribute and intersects the resulting id sets — each scan walks the leaf
  chain of a disk-resident index over the *entire* file population;
* a top-k query has no native index support at all and degenerates to a
  scan of the whole population with distance computation (the "linear
  brute-force search" of §5.2).

Because the per-attribute index forest over millions of records cannot stay
memory resident, index-page accesses and leaf scans are charged at disk
speed, which is what produces the orders-of-magnitude latency gap of
Table 4.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.btree.bplustree import BPlusTree
from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.core.queries import QueryResult
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["DBMSBaseline"]


class DBMSBaseline:
    """Per-attribute B+-tree indexing on a single database server."""

    def __init__(
        self,
        files: Sequence[FileMetadata],
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        order: int = 64,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if not files:
            raise ValueError("cannot build the DBMS baseline over an empty file population")
        self.files = list(files)
        self.schema = schema
        self.cost_model = cost_model
        self.order = order
        self.metrics = Metrics()  # lifetime counters (builds + queries)

        self._matrix = attribute_matrix(self.files, schema)
        self._norm_span = np.where(
            self._matrix.max(axis=0) - self._matrix.min(axis=0) > 0,
            self._matrix.max(axis=0) - self._matrix.min(axis=0),
            1.0,
        )
        self._norm_lower = self._matrix.min(axis=0)

        # One B+-tree per attribute plus one for filenames; the trees are
        # built without charging the build to query metrics.
        self.attribute_trees: Dict[str, BPlusTree] = {}
        for j, name in enumerate(schema.names):
            tree = BPlusTree(order=order)
            for i, value in enumerate(self._matrix[:, j]):
                tree.insert(float(value), i)
            self.attribute_trees[name] = tree
        self.filename_tree: Dict[str, List[int]] = {}
        for i, f in enumerate(self.files):
            self.filename_tree.setdefault(f.filename, []).append(i)
        # The filename index is itself a B+-tree in a real DBMS; we keep a
        # hash map for the result set but charge B+-tree-like access costs.
        self._filename_index_height = max(1, int(np.ceil(np.log(len(self.files) + 1) / np.log(order))))

    # ------------------------------------------------------------------ helpers
    def _new_metrics(self) -> Metrics:
        return Metrics()

    def _finish(self, files: List[FileMetadata], metrics: Metrics) -> QueryResult:
        self.metrics.merge(metrics)
        return QueryResult(
            files=files,
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=1,
            hops=0,
            found=bool(files),
        )

    # ------------------------------------------------------------------ queries
    def point_query(self, query: PointQuery) -> QueryResult:
        """Filename lookup through the (disk-resident) filename index."""
        metrics = self._new_metrics()
        metrics.record_message(2)  # client -> DB server -> client
        metrics.record_unit_visit(0)
        metrics.record_index_access(self._filename_index_height, on_disk=True)
        indices = self.filename_tree.get(query.filename, [])
        metrics.record_scan(max(1, len(indices)), on_disk=True)
        return self._finish([self.files[i] for i in indices], metrics)

    def range_query(self, query: RangeQuery) -> QueryResult:
        """Intersect one index scan per constrained attribute.

        The paper's DBMS baseline "does not take into account database
        optimization" and "must check each B+-tree index for each
        attribute, resulting in linear brute-force search costs" (§5.2):
        each per-attribute index is walked across its whole leaf level with
        the predicate evaluated on every key, the qualifying row ids are
        fetched, and the per-attribute id sets are intersected on the
        database server.
        """
        metrics = self._new_metrics()
        metrics.record_message(2)
        metrics.record_unit_visit(0)

        candidate_sets: List[set] = []
        for name, lo, hi in zip(query.attributes, query.lower, query.upper):
            tree = self.attribute_trees[name]
            # Full leaf-level walk of this attribute's index: one disk page
            # per ``order`` keys plus the root-to-leaf descent, and one key
            # comparison per stored record.
            leaf_pages = max(1, int(np.ceil(len(self.files) / self.order)))
            metrics.record_index_access(tree.height + leaf_pages, on_disk=True)
            metrics.record_scan(len(self.files), on_disk=True)
            pairs = tree.range_search(float(lo), float(hi))
            candidate_sets.append({idx for _, idx in pairs})

        matching = set.intersection(*candidate_sets) if candidate_sets else set()
        # Fetch the matching rows themselves.
        metrics.record_scan(len(matching), on_disk=True)
        return self._finish([self.files[i] for i in sorted(matching)], metrics)

    def topk_query(self, query: TopKQuery) -> QueryResult:
        """Top-k by brute-force scan: no index supports nearest neighbours."""
        metrics = self._new_metrics()
        metrics.record_message(2)
        metrics.record_unit_visit(0)

        idx = list(self.schema.indices(query.attributes))
        lower = self._norm_lower[idx]
        span = self._norm_span[idx]
        data = (self._matrix[:, idx] - lower) / span
        target = (np.asarray(query.values, dtype=np.float64) - lower) / span
        dists = np.sqrt(np.sum((data - target[None, :]) ** 2, axis=1))

        # Every record is read from disk and compared.
        metrics.record_scan(len(self.files), on_disk=True)
        metrics.record_index_access(
            max(1, len(self.files) // max(self.order, 1)), on_disk=True
        )

        k = min(query.k, len(self.files))
        top = np.argpartition(dists, k - 1)[:k]
        top = top[np.argsort(dists[top])]
        result = QueryResult(
            files=[self.files[i] for i in top],
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=1,
            hops=0,
            found=k > 0,
            distances=[float(dists[i]) for i in top],
        )
        self.metrics.merge(metrics)
        return result

    def execute(self, query) -> QueryResult:
        """Dispatch any query object to the matching interface."""
        if isinstance(query, PointQuery):
            return self.point_query(query)
        if isinstance(query, RangeQuery):
            return self.range_query(query)
        if isinstance(query, TopKQuery):
            return self.topk_query(query)
        raise TypeError(f"unsupported query type {type(query)!r}")

    # ------------------------------------------------------------------ space accounting
    def index_space_bytes(self) -> int:
        """Total index footprint: one B+-tree per attribute plus the filename index.

        Everything lives on the single database server, which is what makes
        the per-node space overhead of Figure 7 so much larger than
        SmartStore's distributed, multi-dimensional index.
        """
        cm = self.cost_model
        total = 0
        for tree in self.attribute_trees.values():
            total += tree.node_count() * self.order * cm.index_entry_bytes
        total += len(self.files) * cm.index_entry_bytes  # filename index entries
        return total

    def index_space_bytes_per_node(self) -> int:
        """Figure 7 reports per-node overhead; the DBMS has exactly one node."""
        return self.index_space_bytes()
