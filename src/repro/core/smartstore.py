"""The SmartStore facade: the public API of the reproduction.

A :class:`SmartStore` instance owns the whole deployment: the cluster of
storage units, the semantic R-tree(s), the off-line routing replicas, the
version chains and the query engine.  Typical use::

    from repro import PointQuery, RangeQuery, SmartStore, SmartStoreConfig, TopKQuery
    from repro.traces import msn_trace

    trace = msn_trace()
    store = SmartStore.build(trace.file_metadata(), SmartStoreConfig(num_units=60))

    result = store.execute(RangeQuery(("mtime", "read_bytes"), (0.0, 1e6), (3600.0, 5e7)))
    top = store.execute(TopKQuery(("size", "mtime"), (300e6, 7200.0), 10))
    hit = store.execute(PointQuery("file0000042.dat"))

Every query returns a :class:`~repro.core.queries.QueryResult` carrying the
matching metadata, the per-query event counters and the simulated latency.
(The per-type convenience methods remain as deprecated shims; the unified
client front door in :mod:`repro.api` is the surface new code should use.)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.cluster.simulator import ClusterSimulator
from repro.core.grouping import SemanticPartition, optimal_threshold, partition_files
from repro.core.mapping import map_index_units, multi_map_root
from repro.core.offline import OfflineRouter
from repro.core.queries import QueryEngine, QueryResult
from repro.core.semantic_rtree import SemanticRTree, StorageUnitDescriptor
from repro.core.versioning import VersionedChange, VersioningManager
from repro.lsi.model import LSIModel
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["SmartStoreConfig", "SmartStore", "QueryResult", "StageOutcome", "UNKNOWN_GROUP"]

#: Sentinel group id returned by :meth:`SmartStore.delete_file` /
#: :meth:`SmartStore.modify_file` when the target file is unknown — neither
#: applied to any storage unit nor pending in a version chain.  The mutation
#: is *not* recorded in that case, so reconfiguration and compaction never
#: see (and never mis-apply) deletions of files that do not exist.
UNKNOWN_GROUP = -1


@dataclass(frozen=True)
class StageOutcome:
    """Result of staging one mutation (insert / delete / modify).

    ``known`` is False only for deletions/modifications of files the
    deployment has never seen (``group_id`` is then :data:`UNKNOWN_GROUP`
    and nothing was recorded).  ``metrics`` carries the staging cost —
    routing probes, version-chain append, lazy-update multicasts — already
    merged into the cluster-wide accounting.
    """

    kind: str
    file: FileMetadata
    group_id: int
    unit_id: int
    metrics: Metrics
    known: bool = True


@dataclass(frozen=True)
class SmartStoreConfig:
    """Configuration of a SmartStore deployment.

    The defaults reproduce the prototype parameters of §5.1: 60 storage
    units, 1024-bit / 7-hash Bloom filters, a 10 % automatic-configuration
    threshold, a 5 % lazy-update threshold, off-line pre-processing and
    versioning enabled.
    """

    num_units: int = 60
    lsi_rank: int = 5
    max_fanout: int = 8
    thresholds: Optional[Tuple[float, ...]] = None
    bloom_bits: int = 1024
    bloom_hashes: int = 7
    mode: str = "offline"
    versioning_enabled: bool = True
    version_ratio: int = 1
    lazy_update_threshold: float = 0.05
    autoconfig_threshold: float = 0.10
    admission_threshold: float = 0.5
    search_breadth: int = 4
    cost_model: CostModel = DEFAULT_COST_MODEL
    seed: Optional[int] = 42

    def __post_init__(self) -> None:
        if self.num_units < 1:
            raise ValueError("num_units must be >= 1")
        if self.lsi_rank < 1:
            raise ValueError("lsi_rank must be >= 1")
        if self.max_fanout < 2:
            raise ValueError("max_fanout must be >= 2")
        if self.mode not in ("offline", "online"):
            raise ValueError("mode must be 'offline' or 'online'")
        if self.version_ratio < 1:
            raise ValueError("version_ratio must be >= 1")
        if not 0.0 < self.lazy_update_threshold <= 1.0:
            raise ValueError("lazy_update_threshold must be in (0, 1]")
        if self.search_breadth < 1:
            raise ValueError("search_breadth must be >= 1")


class SmartStore:
    """A built SmartStore deployment.

    Use :meth:`build` to construct one from a file population; direct
    instantiation is reserved for the builder.
    """

    def __init__(
        self,
        *,
        config: SmartStoreConfig,
        schema: AttributeSchema,
        cluster: ClusterSimulator,
        tree: SemanticRTree,
        partition: SemanticPartition,
        lsi: LSIModel,
        index_lower: np.ndarray,
        index_upper: np.ndarray,
        versioning: VersioningManager,
        offline_router: OfflineRouter,
        engine: QueryEngine,
        files: List[FileMetadata],
    ) -> None:
        self.config = config
        self.schema = schema
        self.cluster = cluster
        self.tree = tree
        self.partition = partition
        self.lsi = lsi
        self.index_lower = index_lower
        self.index_upper = index_upper
        self.versioning = versioning
        self.offline_router = offline_router
        self.engine = engine
        # The applied population, id-indexed: deletion and duplicate checks
        # are O(1), and the ingest overlay merge reuses the same map.
        self._files_by_id: Dict[int, FileMetadata] = {f.file_id: f for f in files}
        self._pending_insertions = 0
        self._pending_deletions = 0
        # Optional staging overlay (attached by the ingest pipeline); when
        # present, every staged mutation is mirrored into it so queries get
        # id-indexed read-your-writes including deletion masking.
        self.overlay = None
        # Where each file's metadata currently lives (unit id); maintained by
        # build and by reconfigure() so deletions reach the owning server.
        self._file_locations: Dict[int, int] = {}
        for unit_id, server in cluster.servers.items():
            for f in server.files:
                self._file_locations[f.file_id] = unit_id
        # Optional dirty-unit listener (set by the tiered segment store);
        # called with the unit ids each apply_changes batch touched so an
        # incremental snapshot publish only rewrites changed groups.
        self.on_units_touched = None

    @property
    def files(self) -> List[FileMetadata]:
        """The applied (non-pending) file population, in insertion order."""
        return list(self._files_by_id.values())

    def file_by_id(self, file_id: int) -> Optional[FileMetadata]:
        """O(1) lookup of an applied metadata record."""
        return self._files_by_id.get(file_id)

    def attach_overlay(self, overlay) -> None:
        """Attach a staging overlay (read-your-writes for the ingest path).

        The overlay is mirrored by :meth:`stage_mutation` and consulted by
        the query engine; the ingest pipeline owns its lifecycle.
        """
        self.overlay = overlay
        self.engine.overlay = overlay

    def detach_overlay(self) -> None:
        self.overlay = None
        self.engine.overlay = None

    # ------------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        files: Sequence[FileMetadata],
        config: Optional[SmartStoreConfig] = None,
        schema: AttributeSchema = DEFAULT_SCHEMA,
        *,
        index_bounds: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> "SmartStore":
        """Build a deployment from a file population.

        The pipeline (§3.1): LSI over the file attribute matrix → balanced
        partitioning of files onto storage units → per-unit semantic vectors
        → iterative semantic grouping into the semantic R-tree → Bloom
        filters per node → index-unit mapping and root multi-mapping →
        off-line replicas and version chains.

        ``index_bounds`` overrides the deployment-wide ``(lower, upper)``
        index-space normalisation bounds that are otherwise derived from
        the build-time population.  A sharded deployment injects the
        *corpus-wide* bounds here so that top-k distances and min-max
        normalisation agree exactly across sibling shards and with an
        unsharded baseline over the union population — the precondition for
        fingerprint-identical scatter-gather merges.
        """
        config = config if config is not None else SmartStoreConfig()
        files = list(files)
        if not files:
            raise ValueError("cannot build SmartStore over an empty file population")

        rng = np.random.default_rng(config.seed)
        partition = partition_files(
            files, config.num_units, schema, rank=config.lsi_rank, seed=config.seed
        )
        num_units = partition.n_groups

        # The deployment's index space is the log-transformed attribute
        # space; its bounds over the build-time population are what every
        # server normalises against.
        index_lower, index_upper = partition.norm_lower, partition.norm_upper
        if index_bounds is not None:
            index_lower = np.asarray(index_bounds[0], dtype=np.float64).copy()
            index_upper = np.asarray(index_bounds[1], dtype=np.float64).copy()

        cluster = ClusterSimulator(
            num_units,
            schema,
            cost_model=config.cost_model,
            seed=config.seed,
            bloom_bits=config.bloom_bits,
            bloom_hashes=config.bloom_hashes,
        )
        cluster.install_normalization(index_lower, index_upper)
        for file, label in zip(files, partition.labels):
            cluster.server(int(label)).add_file(file)

        descriptors = cls._unit_descriptors(cluster, partition)
        thresholds = (
            list(config.thresholds)
            if config.thresholds is not None
            else cls._auto_thresholds(descriptors, config.max_fanout)
        )

        tree = SemanticRTree.build(
            descriptors,
            thresholds=thresholds,
            max_fanout=config.max_fanout,
            bloom_bits=config.bloom_bits,
            bloom_hashes=config.bloom_hashes,
        )
        map_index_units(tree, rng)
        multi_map_root(tree, rng)

        versioning = VersioningManager(config.version_ratio)
        offline_router = OfflineRouter(
            tree, lazy_update_threshold=config.lazy_update_threshold
        )
        engine = QueryEngine(
            tree=tree,
            cluster=cluster,
            lsi=partition.lsi,
            schema=schema,
            index_lower=index_lower,
            index_upper=index_upper,
            log_mask=schema.log_scale_mask(),
            center=partition.center,
            versioning=versioning,
            offline_router=offline_router,
            mode=config.mode,
            versioning_enabled=config.versioning_enabled,
            search_breadth=config.search_breadth,
            cost_model=config.cost_model,
        )
        return cls(
            config=config,
            schema=schema,
            cluster=cluster,
            tree=tree,
            partition=partition,
            lsi=partition.lsi,
            index_lower=index_lower,
            index_upper=index_upper,
            versioning=versioning,
            offline_router=offline_router,
            engine=engine,
            files=files,
        )

    @staticmethod
    def _unit_descriptors(
        cluster: ClusterSimulator, partition: SemanticPartition
    ) -> List[StorageUnitDescriptor]:
        """Per-unit descriptors (MBR, centroid, semantic vector, filenames)."""
        labels = partition.labels
        sem = partition.semantic_vectors
        global_mean = sem.mean(axis=0)
        descriptors: List[StorageUnitDescriptor] = []
        for unit_id in cluster.unit_ids():
            server = cluster.server(unit_id)
            members = np.nonzero(labels == unit_id)[0]
            vector = sem[members].mean(axis=0) if members.size else global_mean
            descriptors.append(
                StorageUnitDescriptor(
                    unit_id=unit_id,
                    mbr=server.mbr(),
                    centroid=server.centroid(),
                    semantic_vector=vector,
                    filenames=server.filenames(),
                    file_count=len(server),
                )
            )
        return descriptors

    @staticmethod
    def _auto_thresholds(
        descriptors: Sequence[StorageUnitDescriptor], max_fanout: int
    ) -> List[float]:
        """Derive per-level admission thresholds by sampling analysis (§3.2.1).

        The first-level threshold minimises the §1.1 grouping measure over
        the unit semantic vectors; higher levels relax it progressively
        because aggregated groups are intrinsically less correlated.
        """
        vectors = np.vstack([d.semantic_vector for d in descriptors])
        base, _ = optimal_threshold(vectors, max_fanout=max_fanout)
        return [max(0.0, base - 0.1 * level) for level in range(6)]

    # ------------------------------------------------------------------ query API
    def _deprecated_facade(self, name: str) -> None:
        warnings.warn(
            f"SmartStore.{name} is deprecated; use SmartStore.execute with a "
            "query object, or the unified client API (repro.api.connect)",
            DeprecationWarning,
            stacklevel=3,
        )

    def point_query(self, query: Union[str, PointQuery]) -> QueryResult:
        """Filename point query (§3.3.3).  Deprecated: use :meth:`execute`."""
        self._deprecated_facade("point_query")
        if isinstance(query, str):
            query = PointQuery(query)
        return self.execute(query)

    def range_query(
        self,
        attributes: Union[RangeQuery, Sequence[str]],
        lower: Optional[Sequence[float]] = None,
        upper: Optional[Sequence[float]] = None,
    ) -> QueryResult:
        """Multi-dimensional range query (§3.3.1).  Deprecated: use :meth:`execute`."""
        self._deprecated_facade("range_query")
        if isinstance(attributes, RangeQuery):
            query = attributes
        else:
            if lower is None or upper is None:
                raise ValueError("lower and upper bounds are required")
            query = RangeQuery(tuple(attributes), tuple(lower), tuple(upper))
        return self.execute(query)

    def topk_query(
        self,
        attributes: Union[TopKQuery, Sequence[str]],
        values: Optional[Sequence[float]] = None,
        k: int = 8,
    ) -> QueryResult:
        """Top-k nearest-neighbour query (§3.3.2).  Deprecated: use :meth:`execute`."""
        self._deprecated_facade("topk_query")
        if isinstance(attributes, TopKQuery):
            query = attributes
        else:
            if values is None:
                raise ValueError("query values are required")
            query = TopKQuery(tuple(attributes), tuple(values), k)
        return self.execute(query)

    def execute(self, query: Union[PointQuery, RangeQuery, TopKQuery]) -> QueryResult:
        """Execute any query object against the deployment.

        The one non-deprecated query entry point of the library facade
        (the unified client API in :mod:`repro.api` is layered on top of
        it); merges the per-query counters into the cluster accounting.
        """
        if isinstance(query, PointQuery):
            result = self.engine.point_query(query)
        elif isinstance(query, RangeQuery):
            result = self.engine.range_query(query)
        elif isinstance(query, TopKQuery):
            result = self.engine.topk_query(query)
        else:
            raise TypeError(f"unsupported query type {type(query)!r}")
        self.cluster.metrics.merge(result.metrics)
        return result

    def serve(self, service_config=None):
        """A :class:`~repro.service.service.QueryService` over this deployment.

        Deprecated: connect through the unified client API instead —
        ``repro.api.connect(DeploymentSpec())`` builds the service and
        wraps it in a :class:`~repro.api.client.Client`.  Imported lazily:
        the service layer depends on this module.
        """
        warnings.warn(
            "SmartStore.serve is deprecated; use repro.api.connect with a "
            "DeploymentSpec instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.service.service import QueryService

        return QueryService(self, service_config)

    def default_pipeline(self):
        """A volatile :class:`~repro.ingest.pipeline.IngestPipeline` over this
        deployment (overlay staging, no write-ahead log).

        The query service calls this lazily on the first mutation when no
        pipeline was supplied; a :class:`~repro.shard.router.ShardRouter`
        overrides the same hook to return itself, routing mutations to its
        per-shard pipelines instead.  Imported lazily: the ingest layer
        depends on this module.
        """
        from repro.ingest.pipeline import IngestPipeline

        return IngestPipeline(self)

    # ------------------------------------------------------------------ updates
    def file_semantic_vector(self, file: FileMetadata) -> np.ndarray:
        """Fold one file's attributes into the LSI semantic subspace."""
        idx = list(range(self.schema.dimension))
        values = [file.attributes.get(name, 0.0) for name in self.schema.names]
        normalised = self.engine.normalize_index_values(
            idx, self.engine.to_index_space(idx, values)
        )
        return self.engine.fold_normalized_vector(normalised)

    def stage_mutation(
        self, kind: str, file: FileMetadata, *, seq: int = 0
    ) -> StageOutcome:
        """Stage one mutation: version chain, overlay, lazy-update accounting.

        This is the single write entry point shared by the classic facade
        methods (:meth:`insert_file`, :meth:`delete_file`,
        :meth:`modify_file`) and the durable ingest pipeline (which logs to
        its write-ahead log first and passes the WAL sequence number in as
        ``seq``).

        Routing:

        * a genuinely new file goes to the most correlated group (off-line
          replica routing) and its least-loaded storage unit;
        * a mutation of an *applied* file is routed to the unit that stores
          it (the id-indexed location map knows in O(1));
        * a mutation of a *pending* file (inserted but not yet compacted)
          follows the staged insert's placement, so insert-then-delete nets
          out within one group's chain;
        * a delete/modify of an unknown file records nothing and returns
          ``known=False`` with :data:`UNKNOWN_GROUP`.
        """
        if kind not in ("insert", "delete", "modify"):
            raise ValueError(f"unknown mutation kind {kind!r}")
        metrics = Metrics()
        pending_unit: Optional[int] = None
        pending_kind: Optional[str] = None
        if self.overlay is not None:
            staged = self.overlay.get(file.file_id)
            if staged is not None:
                pending_unit, pending_kind = staged.unit_id, staged.kind
        if pending_kind is None:
            pending = self.versioning.pending_change_for(file.file_id)
            if pending is not None:
                pending_unit, pending_kind = pending[1].unit_id, pending[1].kind
        # The pending state is the file's logical truth and takes precedence
        # over the applied-location map: a staged delete makes the file
        # absent for delete/modify *even if its record is still applied*,
        # so the observable outcome does not depend on compaction timing.
        if pending_kind is not None:
            if kind == "insert" or pending_kind != "delete":
                # Mutations of a pending file follow the earlier changes'
                # placement, so one file's history stays in one chain and
                # compaction applies it in record order (re-inserting a
                # pending-deleted file included).
                owner = pending_unit
            else:
                owner = None
        else:
            owner = self._file_locations.get(file.file_id)

        if owner is not None:
            # Known file: route to its owner (duplicate inserts become
            # in-place replacements instead of second copies).
            group = self.tree.group_of_unit(owner)
            gid = group.node_id
            unit_id = owner
            metrics.record_message(2)  # forward to the owning unit + ack
        elif kind == "insert":
            sem = self.file_semantic_vector(file)
            gid, _ = self.offline_router.target_group_for_vector(sem, metrics)
            group = self.engine.node_by_id(gid)
            target_leaf = min(group.descendant_leaves(), key=lambda l: l.file_count)
            unit_id = target_leaf.unit_id
            metrics.record_message(2)  # forward to the owning storage unit + ack
        else:
            # Deleting / modifying a file nobody has ever inserted: observable
            # no-op (the routing probe is still charged — the request had to
            # be looked up somewhere before it could be rejected).
            sem = self.file_semantic_vector(file)
            self.offline_router.target_group_for_vector(sem, metrics)
            self.cluster.metrics.merge(metrics)
            return StageOutcome(
                kind=kind,
                file=file,
                group_id=UNKNOWN_GROUP,
                unit_id=UNKNOWN_GROUP,
                metrics=metrics,
                known=False,
            )

        self.versioning.record(
            gid, VersionedChange(kind=kind, file=file, unit_id=unit_id)
        )
        if self.overlay is not None:
            self.overlay.stage(kind, file, group_id=gid, unit_id=unit_id, seq=seq)
        self.offline_router.record_change(group, metrics, num_units=self.cluster.num_units)
        if kind == "delete":
            self._pending_deletions += 1
        else:
            self._pending_insertions += 1
        self.cluster.metrics.merge(metrics)
        return StageOutcome(
            kind=kind, file=file, group_id=gid, unit_id=unit_id, metrics=metrics
        )

    def insert_file(self, file: FileMetadata) -> int:
        """Insert a file's metadata into the deployment.

        The most correlated group is located with the off-line replicas, the
        change is recorded in that group's version chain (visible to
        versioned queries immediately) and the lazy-update protocol decides
        when replicas are refreshed.  Returns the id of the group that
        accepted the file.
        """
        return self.stage_mutation("insert", file).group_id

    def delete_file(self, file: FileMetadata) -> int:
        """Record the deletion of a file's metadata (applied at compaction).

        Returns the group the deletion was recorded in, or
        :data:`UNKNOWN_GROUP` when the file was never inserted — in that
        case nothing is recorded, so later reconfiguration/compaction cannot
        corrupt the population or the leaf counts.
        """
        return self.stage_mutation("delete", file).group_id

    def modify_file(self, file: FileMetadata) -> int:
        """Record new attribute values for an existing file.

        ``file`` carries the full updated record (same id/path, new
        attribute values); unknown files return :data:`UNKNOWN_GROUP`.
        """
        return self.stage_mutation("modify", file).group_id

    def apply_changes(self, changes: Sequence[VersionedChange]) -> int:
        """Apply an ordered list of versioned changes to the primary structures.

        Shared by full reconfiguration (all chains) and incremental
        compaction (one group's chain).  Inserts/modifies of an
        already-applied file replace the stored record in place (no
        duplicate copies), deletions are O(1) against the id-indexed
        population map and tolerate unknown files, and every touched leaf's
        MBR / Bloom filter / file count is refreshed once at the end.
        """
        touched: Dict[int, List[str]] = {}
        applied = 0
        for change in changes:
            fid = change.file.file_id
            if change.kind in ("insert", "modify"):
                prev_unit = self._file_locations.get(fid)
                if prev_unit is not None:
                    self.cluster.server(prev_unit).remove_file(fid)
                    touched.setdefault(prev_unit, [])
                self.cluster.server(change.unit_id).add_file(change.file)
                self._file_locations[fid] = change.unit_id
                self._files_by_id[fid] = change.file
                touched.setdefault(change.unit_id, []).append(change.file.filename)
                self._pending_insertions = max(0, self._pending_insertions - 1)
            else:  # delete
                removed = self.cluster.server(change.unit_id).remove_file(fid)
                owner = self._file_locations.pop(fid, None)
                if removed is None and owner is not None and owner != change.unit_id:
                    # The record moved since the deletion was staged; chase it.
                    self.cluster.server(owner).remove_file(fid)
                    touched.setdefault(owner, [])
                if removed is not None or owner is not None:
                    touched.setdefault(change.unit_id, [])
                self._files_by_id.pop(fid, None)
                self._pending_deletions = max(0, self._pending_deletions - 1)
            applied += 1
        for unit_id, new_names in touched.items():
            server = self.cluster.server(unit_id)
            self.tree.refresh_leaf(
                unit_id,
                mbr=server.mbr(),
                file_count=len(server),
                new_filenames=new_names,
            )
        if touched and self.on_units_touched is not None:
            self.on_units_touched(list(touched.keys()))
        return applied

    def reconfigure(self) -> int:
        """Apply every pending versioned change to the primary structures.

        Insertions land on their owning storage units (Bloom filters and
        MBRs refreshed), deletions are applied, the version chains are
        cleared and the off-line replicas re-snapshotted.  Returns the
        number of changes applied.
        """
        applied = 0
        for gid, changes in self.versioning.clear_all().items():
            applied += self.apply_changes(changes)
        if self.overlay is not None:
            self.overlay.clear()
        self.offline_router.refresh_all()
        self._pending_insertions = 0
        self._pending_deletions = 0
        self.versioning.touch()
        return applied

    # ------------------------------------------------------------------ accounting
    def index_space_bytes_per_unit(self) -> Dict[int, int]:
        """Index-state footprint per storage unit (Figure 7).

        Counts the semantic R-tree nodes each server hosts, the replicated
        first-level index vectors every server stores, the leaf Bloom
        filter, and the version chains attached to locally hosted groups.
        Raw metadata records are excluded — every compared system must store
        those and they would only dilute the comparison.
        """
        cm = self.config.cost_model
        per_unit: Dict[int, int] = {}
        replica_bytes = self.offline_router.replica_space_bytes(
            vector_bytes=cm.semantic_vector_bytes, entry_bytes=cm.index_entry_bytes
        )
        version_space = self.versioning.space_bytes_per_group(cm.metadata_record_bytes)
        hosted_versions: Dict[int, int] = {}
        for group in self.tree.first_level_groups():
            host = group.hosted_on if group.hosted_on is not None else 0
            hosted_versions[host] = hosted_versions.get(host, 0) + version_space.get(group.node_id, 0)

        for unit_id in self.cluster.unit_ids():
            server = self.cluster.server(unit_id)
            hosted_nodes = [
                n
                for n in self.tree.nodes
                if n.hosted_on == unit_id or unit_id in n.replica_hosts
            ]
            node_bytes = 0
            for node in hosted_nodes:
                node_bytes += cm.index_entry_bytes + cm.semantic_vector_bytes
                if node.bloom is not None:
                    node_bytes += node.bloom.size_bytes()
            per_unit[unit_id] = (
                node_bytes
                + replica_bytes
                + server.bloom.size_bytes()
                + hosted_versions.get(unit_id, 0)
            )
        return per_unit

    def total_index_space_bytes(self) -> int:
        return sum(self.index_space_bytes_per_unit().values())

    def stats(self) -> Dict[str, object]:
        """Deployment statistics used by the benchmarks and examples."""
        return {
            "num_units": self.cluster.num_units,
            "num_files": self.cluster.total_files(),
            "pending_insertions": self._pending_insertions,
            "pending_deletions": self._pending_deletions,
            "tree_height": self.tree.height,
            "num_index_units": self.tree.num_index_units,
            "first_level_groups": len(self.tree.first_level_groups()),
            "index_space_bytes": self.total_index_space_bytes(),
            "mode": self.config.mode,
            "versioning": self.config.versioning_enabled,
        }

    def __repr__(self) -> str:
        return (
            f"SmartStore(units={self.cluster.num_units}, files={self.cluster.total_files()}, "
            f"index_units={self.tree.num_index_units}, mode={self.config.mode!r})"
        )
