"""The SmartStore core system.

Modules
-------
``grouping``
    LSI-driven semantic grouping: partitioning files onto storage units and
    iteratively aggregating units into the levels of the semantic R-tree.
``semantic_rtree``
    The semantic R-tree itself: storage units (leaves) and index units
    (non-leaves) carrying MBRs, semantic vectors and Bloom filters.
``mapping``
    Mapping index units onto storage units and multi-mapping the root.
``versioning``
    Version chains attached to first-level index units for consistency.
``offline``
    Off-line pre-processing: replicated first-level index vectors and lazy
    updating.
``queries``
    The on-line and off-line query engines (point, range, top-k).
``reconfig``
    System reconfiguration: storage-unit insertion/deletion, node
    split/merge.
``autoconfig``
    Automatic configuration of multiple semantic R-trees over attribute
    subsets.
``smartstore``
    The public facade tying everything together.
"""

from repro.core.smartstore import SmartStore, SmartStoreConfig, QueryResult

__all__ = ["SmartStore", "SmartStoreConfig", "QueryResult"]
