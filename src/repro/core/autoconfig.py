"""Automatic configuration of multiple semantic R-trees (§2.4).

Queries may constrain an arbitrary subset of the ``D`` metadata attributes.
A single semantic R-tree built over all ``D`` dimensions can always answer
them, but when the queried subset correlates poorly with the full-dimension
grouping the search degrades towards brute force.  The automatic
configuration technique therefore:

1. builds the reference tree over all ``D`` attributes and counts its index
   units ``NO(I_D)``;
2. for every candidate attribute subset ``d`` builds a tree restricted to
   those attributes and counts ``NO(I_d)``;
3. retains the subset tree only when ``|NO(I_D) - NO(I_d)|`` exceeds a
   configured fraction of ``NO(I_D)`` (10 % in the prototype) — i.e. when
   the subset genuinely produces a *different* grouping; near-identical
   trees are redundant and deleted;
4. at query time serves each query from the retained tree whose attribute
   set best matches the query's attributes, falling back to the
   full-dimension tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.semantic_rtree import SemanticRTree
from repro.metadata.attributes import AttributeSchema

__all__ = ["ConfiguredTree", "AutoConfigurator"]

#: Signature of the callback that builds a semantic R-tree from per-unit
#: semantic vectors (the SmartStore facade provides it, closing over the
#: storage-unit descriptors).
TreeBuilder = Callable[[np.ndarray], SemanticRTree]


@dataclass
class ConfiguredTree:
    """One retained semantic R-tree and the attribute subset it covers."""

    attributes: Tuple[str, ...]
    tree: SemanticRTree
    num_index_units: int
    is_full: bool = False


class AutoConfigurator:
    """Builds and retains the set of semantic R-trees serving a deployment.

    Parameters
    ----------
    schema:
        The deployment's attribute schema (defines the full dimension ``D``).
    unit_matrix:
        ``(num_units, D)`` normalised per-unit attribute centroids; the
        semantic vectors of a subset tree are the restriction of this matrix
        to the subset's columns.
    build_tree:
        Callback turning per-unit semantic vectors into a
        :class:`~repro.core.semantic_rtree.SemanticRTree`.
    difference_threshold:
        Fraction of ``NO(I_D)`` the index-unit count of a subset tree must
        differ by to be retained (0.10 in the prototype, §5.1).
    """

    def __init__(
        self,
        schema: AttributeSchema,
        unit_matrix: np.ndarray,
        build_tree: TreeBuilder,
        *,
        difference_threshold: float = 0.10,
    ) -> None:
        if not 0.0 <= difference_threshold <= 1.0:
            raise ValueError("difference_threshold must be in [0, 1]")
        self.schema = schema
        self.unit_matrix = np.asarray(unit_matrix, dtype=np.float64)
        if self.unit_matrix.ndim != 2 or self.unit_matrix.shape[1] != schema.dimension:
            raise ValueError(
                f"unit_matrix shape {self.unit_matrix.shape} does not match schema "
                f"dimension {schema.dimension}"
            )
        self.build_tree = build_tree
        self.difference_threshold = difference_threshold
        self.trees: List[ConfiguredTree] = []
        self.examined_subsets = 0

    # ------------------------------------------------------------------ configuration
    def configure(
        self,
        candidate_subsets: Optional[Sequence[Sequence[str]]] = None,
        *,
        max_subset_size: Optional[int] = None,
    ) -> List[ConfiguredTree]:
        """Run the automatic configuration and return the retained trees.

        ``candidate_subsets`` defaults to every proper subset of the schema
        with at least one attribute and at most ``max_subset_size``
        attributes (``D - 1`` when unspecified).  The full-dimension tree is
        always retained and always listed first.
        """
        names = self.schema.names
        full_tree = self.build_tree(self.unit_matrix)
        full = ConfiguredTree(
            attributes=tuple(names),
            tree=full_tree,
            num_index_units=full_tree.num_index_units,
            is_full=True,
        )
        self.trees = [full]
        self.examined_subsets = 0

        if candidate_subsets is None:
            limit = max_subset_size if max_subset_size is not None else len(names) - 1
            limit = max(1, min(limit, len(names) - 1))
            candidate_subsets = [
                subset
                for size in range(1, limit + 1)
                for subset in combinations(names, size)
            ]

        reference = max(full.num_index_units, 1)
        for subset in candidate_subsets:
            subset = tuple(subset)
            if subset == tuple(names):
                continue
            self.examined_subsets += 1
            idx = list(self.schema.indices(subset))
            sub_tree = self.build_tree(self.unit_matrix[:, idx])
            difference = abs(full.num_index_units - sub_tree.num_index_units)
            if difference > self.difference_threshold * reference:
                self.trees.append(
                    ConfiguredTree(
                        attributes=subset,
                        tree=sub_tree,
                        num_index_units=sub_tree.num_index_units,
                    )
                )
        return self.trees

    # ------------------------------------------------------------------ selection
    def select_tree(self, query_attributes: Sequence[str]) -> ConfiguredTree:
        """The retained tree best matching a query's attribute set.

        Exact matches win; otherwise the retained tree with the highest
        Jaccard similarity to the query attributes is chosen, and the
        full-dimension tree is the fallback (its results are a superset that
        must be refined, §2.4).
        """
        if not self.trees:
            raise RuntimeError("configure() must run before select_tree()")
        query_set = frozenset(query_attributes)
        best = self.trees[0]
        best_score = -1.0
        for configured in self.trees:
            attrs = frozenset(configured.attributes)
            if attrs == query_set:
                return configured
            union = len(attrs | query_set)
            score = len(attrs & query_set) / union if union else 0.0
            if configured.is_full:
                score += 1e-9  # stable fallback preference on ties
            if score > best_score:
                best_score = score
                best = configured
        return best

    # ------------------------------------------------------------------ reporting
    def summary(self) -> Dict[str, object]:
        """Counts used by the ablation benchmark."""
        return {
            "retained_trees": len(self.trees),
            "examined_subsets": self.examined_subsets,
            "index_units_full": self.trees[0].num_index_units if self.trees else 0,
            "retained_subsets": [t.attributes for t in self.trees if not t.is_full],
        }
