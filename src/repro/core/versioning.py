"""Versioning-based consistency (§4.4).

SmartStore replicates index information (the first-level index units'
semantic vectors, MBRs and Bloom filters) to speed up queries; replicas are
not updated synchronously, so a *version* mechanism keeps track of the
changes that have not yet been folded into the originals:

* every first-level index unit (group) owns a :class:`VersionChain`;
* metadata changes (insertions, deletions, attribute modifications) are
  appended to the chain's *open* version; once ``version_ratio`` changes
  accumulate the version is sealed and a new one opened ("comprehensive
  versioning" is ``version_ratio == 1``: every change makes a version);
* queries executed *with* versioning consult the chain **backwards** (most
  recent version first, §4.4) in addition to the original index, paying a
  small extra latency but observing recent changes;
* queries executed *without* versioning only see the original index, which
  is what degrades recall in Tables 5 and 6;
* reconfiguration applies all sealed versions to the originals and clears
  the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cluster.metrics import Metrics
from repro.metadata.file_metadata import FileMetadata

__all__ = ["VersionedChange", "Version", "VersionChain", "VersioningManager"]

#: Change kinds a version records.
CHANGE_KINDS = ("insert", "delete", "modify")


@dataclass(frozen=True)
class VersionedChange:
    """One metadata change aggregated into a version."""

    kind: str
    file: FileMetadata
    unit_id: int

    def __post_init__(self) -> None:
        if self.kind not in CHANGE_KINDS:
            raise ValueError(f"unknown change kind {self.kind!r}; expected one of {CHANGE_KINDS}")


@dataclass
class Version:
    """A sealed (or still open) batch of aggregated changes."""

    version_id: int
    changes: List[VersionedChange] = field(default_factory=list)
    sealed: bool = False

    def __len__(self) -> int:
        return len(self.changes)

    def size_bytes(self, record_bytes: int = 256, header_bytes: int = 32) -> int:
        """Approximate in-memory footprint of this version."""
        return header_bytes + len(self.changes) * record_bytes


class VersionChain:
    """The chain of versions attached to one first-level index unit."""

    def __init__(self, group_id: int, version_ratio: int = 1) -> None:
        if version_ratio < 1:
            raise ValueError(f"version_ratio must be >= 1, got {version_ratio}")
        self.group_id = group_id
        self.version_ratio = version_ratio
        self.versions: List[Version] = []
        self._next_version_id = 0
        self._changes_since_seal = 0

    # ------------------------------------------------------------------ recording
    def record(self, change: VersionedChange) -> Version:
        """Append a change, sealing the open version at the version ratio."""
        if not self.versions or self.versions[-1].sealed:
            self.versions.append(Version(self._next_version_id))
            self._next_version_id += 1
        current = self.versions[-1]
        current.changes.append(change)
        self._changes_since_seal += 1
        if self._changes_since_seal >= self.version_ratio:
            current.sealed = True
            self._changes_since_seal = 0
        return current

    # ------------------------------------------------------------------ reading
    def iter_backwards(self) -> Iterator[VersionedChange]:
        """Changes from the most recent version to the oldest (§4.4 rolls
        versions backwards so fresh information is found first)."""
        for version in reversed(self.versions):
            yield from reversed(version.changes)

    def pending_files(self, metrics: Optional[Metrics] = None) -> List[FileMetadata]:
        """Net effect of the chain: files inserted and not later deleted.

        Modified files surface with their most recent attribute values.
        Every change entry inspected is charged as an in-memory record scan
        (this is the Figure 14(b) extra latency).
        """
        metrics = metrics if metrics is not None else Metrics()
        seen: Dict[int, str] = {}
        latest: Dict[int, FileMetadata] = {}
        count = 0
        for change in self.iter_backwards():
            count += 1
            fid = change.file.file_id
            if fid in seen:
                continue
            seen[fid] = change.kind
            if change.kind in ("insert", "modify"):
                latest[fid] = change.file
        metrics.record_scan(count)
        return list(latest.values())

    def deleted_file_ids(self) -> List[int]:
        """File ids whose most recent change in the chain is a deletion."""
        seen: Dict[int, str] = {}
        for change in self.iter_backwards():
            fid = change.file.file_id
            if fid not in seen:
                seen[fid] = change.kind
        return [fid for fid, kind in seen.items() if kind == "delete"]

    # ------------------------------------------------------------------ accounting
    def total_changes(self) -> int:
        return sum(len(v) for v in self.versions)

    def size_bytes(self, record_bytes: int = 256, header_bytes: int = 32) -> int:
        return sum(v.size_bytes(record_bytes, header_bytes) for v in self.versions)

    def clear(self) -> List[VersionedChange]:
        """Drop every version, returning the changes that were applied."""
        changes = [c for v in self.versions for c in v.changes]
        self.versions = []
        self._changes_since_seal = 0
        return changes

    def __len__(self) -> int:
        return len(self.versions)


class VersioningManager:
    """All version chains of a deployment, keyed by group (first-level index unit)."""

    def __init__(self, version_ratio: int = 1) -> None:
        if version_ratio < 1:
            raise ValueError(f"version_ratio must be >= 1, got {version_ratio}")
        self.version_ratio = version_ratio
        self.chains: Dict[int, VersionChain] = {}
        # Monotone counter bumped on every recorded change and on every
        # reconfiguration; consumers that cache derived state (the query
        # service's result cache) compare against it to detect staleness.
        self._change_clock = 0
        self._listeners: List[Callable[[], None]] = []
        # Per-file pending history in global record order (each entry is
        # ``(group_id, change)``); gives O(1) latest-pending lookups and
        # keeps cross-chain ordering exact.
        self._pending_by_file: Dict[int, List[Tuple[int, VersionedChange]]] = {}

    # ------------------------------------------------------------------ change notification
    @property
    def change_clock(self) -> int:
        """Number of mutations (changes recorded + chains cleared) so far."""
        return self._change_clock

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked after every mutation.

        Listeners must be cheap and must not raise; the query service's
        result cache uses this to invalidate eagerly instead of polling
        :attr:`change_clock`.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self) -> None:
        self._change_clock += 1
        for listener in list(self._listeners):
            listener()

    def touch(self) -> None:
        """Bump the change clock for a mutation that bypassed the chains.

        Reconfiguration applies the cleared changes to the primary
        structures *after* :meth:`clear_all` returns; callers invoke this
        once the structures are consistent again so caches flushed mid-way
        do not retain results computed against the half-applied state.
        """
        self._notify()

    def chain_for(self, group_id: int) -> VersionChain:
        """The chain of a group, created on first use."""
        chain = self.chains.get(group_id)
        if chain is None:
            chain = VersionChain(group_id, self.version_ratio)
            self.chains[group_id] = chain
        return chain

    def record(self, group_id: int, change: VersionedChange) -> Version:
        version = self.chain_for(group_id).record(change)
        self._pending_by_file.setdefault(change.file.file_id, []).append(
            (group_id, change)
        )
        self._notify()
        return version

    def pending_files(self, group_id: int, metrics: Optional[Metrics] = None) -> List[FileMetadata]:
        chain = self.chains.get(group_id)
        if chain is None:
            return []
        return chain.pending_files(metrics)

    def pending_change_for(self, file_id: int) -> Optional[Tuple[int, VersionedChange]]:
        """The most recent pending change of ``file_id``, in global order.

        Returns ``(group_id, change)`` or ``None`` when no chain mentions
        the file.  O(1) via the id-indexed pending history.  Used to route
        mutations of files whose earlier changes are still pending (they
        have no entry in the location map yet) to the same group and
        storage unit, so one file's history never splits across chains.
        """
        history = self._pending_by_file.get(file_id)
        return history[-1] if history else None

    def total_changes(self) -> int:
        return sum(c.total_changes() for c in self.chains.values())

    def space_bytes_per_group(self, record_bytes: int = 256) -> Dict[int, int]:
        """Figure 14(a): space consumed by attached versions, per index unit."""
        return {gid: chain.size_bytes(record_bytes) for gid, chain in self.chains.items()}

    def clear_group(self, group_id: int) -> List[VersionedChange]:
        """Take one group's pending changes (used by incremental compaction).

        Bumps the change clock (and so flushes subscribed caches) only when
        the chain actually held changes — the caller is about to apply them
        to the primary structures.
        """
        chain = self.chains.get(group_id)
        if chain is None:
            return []
        changes = chain.clear()
        for change in changes:
            fid = change.file.file_id
            history = self._pending_by_file.get(fid)
            if history is not None:
                history[:] = [(g, c) for g, c in history if g != group_id]
                if not history:
                    self._pending_by_file.pop(fid, None)
        if changes:
            self._notify()
        return changes

    def clear_all(self) -> Dict[int, List[VersionedChange]]:
        """Apply-and-forget every chain (used by reconfiguration)."""
        applied = {gid: chain.clear() for gid, chain in self.chains.items()}
        self._pending_by_file.clear()
        self._notify()
        return applied
