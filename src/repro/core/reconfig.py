"""System reconfiguration (§3.2) and node split/merge (§4.1).

Storage units join and leave a running deployment:

* **Insertion** — the new unit is offered to a randomly chosen group; if its
  semantic correlation with the group vector exceeds the admission
  threshold it is accepted, otherwise the request is forwarded to the next
  most correlated group (each forward is a message).  After acceptance the
  group's MBR / semantic vector / Bloom filter are refreshed upward, and the
  group is split if it now exceeds the fan-out bound ``M``.
* **Deletion** — the unit is unlinked, ancestors are refreshed, and a group
  left with fewer than ``m`` children is merged into its most correlated
  sibling; a parent left with a single child is collapsed (height adjustment
  propagates upward).

Split and merge follow the classical R-tree discipline with the semantic
twist that children are redistributed by semantic-vector similarity rather
than purely by geometric area.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.metrics import Metrics
from repro.core.semantic_rtree import SemanticNode, SemanticRTree, StorageUnitDescriptor
from repro.bloom.bloom import BloomFilter
from repro.lsi.kmeans import kmeans

__all__ = [
    "insert_storage_unit",
    "delete_storage_unit",
    "split_group",
    "merge_into_sibling",
    "refresh_upward",
]


def _correlation(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> float:
    """Cosine similarity of two semantic vectors (0 when either is missing)."""
    if a is None or b is None:
        return 0.0
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)


def insert_storage_unit(
    tree: SemanticRTree,
    descriptor: StorageUnitDescriptor,
    *,
    admission_threshold: float = 0.5,
    bloom_bits: int = 1024,
    bloom_hashes: int = 7,
    rng: Optional[np.random.Generator] = None,
    metrics: Optional[Metrics] = None,
) -> Tuple[SemanticNode, int]:
    """Insert a new storage unit into the semantic R-tree.

    Returns ``(group_joined, forwards)`` where ``forwards`` is the number of
    admission checks that failed before a group accepted the unit (each one
    is an inter-group message).  If no group's correlation reaches the
    admission threshold the most correlated group accepts the unit anyway —
    the threshold balances load, it must not lose units.
    """
    if descriptor.unit_id in tree.leaves:
        raise ValueError(f"storage unit {descriptor.unit_id} is already part of the tree")
    # Fixed fallback stream: reconfiguration must be reproducible even
    # when the caller does not thread a seeded generator through.
    rng = rng if rng is not None else np.random.default_rng(0)
    metrics = metrics if metrics is not None else Metrics()

    groups = tree.first_level_groups()
    # Start at a randomly chosen group, then forward by decreasing correlation.
    correlations = [
        (_correlation(descriptor.semantic_vector, g.semantic_vector), g) for g in groups
    ]
    start = int(rng.integers(len(groups)))
    ordered = [correlations[start]] + sorted(
        correlations[:start] + correlations[start + 1:], key=lambda pair: -pair[0]
    )

    forwards = 0
    chosen: Optional[SemanticNode] = None
    for corr, group in ordered:
        metrics.record_index_access()
        if corr >= admission_threshold:
            chosen = group
            break
        forwards += 1
        metrics.record_message()
    if chosen is None:
        # Nobody met the threshold; fall back to the most correlated group.
        chosen = max(correlations, key=lambda pair: pair[0])[1]

    bloom = BloomFilter(bloom_bits, bloom_hashes)
    bloom.add_many(descriptor.filenames)
    leaf = tree.allocate_node(
        0,
        mbr=descriptor.mbr,
        semantic_vector=np.asarray(descriptor.semantic_vector, dtype=np.float64),
        bloom=bloom,
        unit_id=descriptor.unit_id,
    )
    leaf.file_count = descriptor.file_count
    # A degenerate tree may have a leaf as its "first-level group".
    if chosen.is_leaf:
        parent = tree.allocate_node(1)
        grand = chosen.parent
        if grand is not None:
            grand.children.remove(chosen)
            grand.add_child(parent)
        else:
            tree.root = parent
        parent.add_child(chosen)
        chosen = parent
    chosen.add_child(leaf)
    _refresh_upward(chosen)

    if len(chosen.children) > tree.max_fanout:
        split_group(tree, chosen)
    return chosen, forwards


def delete_storage_unit(
    tree: SemanticRTree,
    unit_id: int,
    *,
    min_children: Optional[int] = None,
) -> bool:
    """Remove a storage unit from the tree.

    Returns False when the unit is unknown.  Groups that fall below the
    minimum occupancy are merged into their most correlated sibling, and a
    parent left with a single child is collapsed so the height adjustment
    propagates upward (§3.2.2).
    """
    leaf = tree.leaves.get(unit_id)
    if leaf is None:
        return False
    if min_children is None:
        min_children = max(1, tree.max_fanout // 2)

    parent = leaf.parent
    if parent is None:
        raise ValueError("cannot delete the only storage unit in the system")
    parent.children.remove(leaf)
    tree.forget_node(leaf)
    _refresh_upward(parent)

    if len(parent.children) < min_children:
        merge_into_sibling(tree, parent)
    _collapse_single_child_chains(tree)
    return True


def split_group(tree: SemanticRTree, group: SemanticNode) -> Tuple[SemanticNode, SemanticNode]:
    """Split an overflowing group into two semantically coherent halves.

    Children are partitioned by 2-means over their semantic vectors (the
    semantic analogue of Guttman's quadratic split); the new sibling is
    attached to the same parent, which may in turn overflow and split.
    """
    children = list(group.children)
    if len(children) < 2:
        raise ValueError("cannot split a group with fewer than two children")
    vectors = np.vstack(
        [
            c.semantic_vector
            if c.semantic_vector is not None
            else np.zeros_like(children[0].semantic_vector)
            for c in children
        ]
    )
    labels = kmeans(vectors, 2, seed=0).labels
    # Guard against a degenerate assignment that leaves one side empty.
    if len(set(labels.tolist())) < 2:
        labels = np.array([i % 2 for i in range(len(children))])

    keep = [c for c, l in zip(children, labels) if l == 0]
    move = [c for c, l in zip(children, labels) if l == 1]
    if not keep or not move:
        half = len(children) // 2
        keep, move = children[:half], children[half:]

    group.children = []
    for child in keep:
        group.add_child(child)
    sibling = tree.allocate_node(group.level)
    for child in move:
        sibling.add_child(child)
    group.refresh_from_children()
    sibling.refresh_from_children()
    # The new index unit needs a physical host (build-time mapping only ran
    # once); keep the paper's discipline of hosting an index unit on one of
    # its own descendant storage units.
    descendants = sibling.descendant_unit_ids()
    if sibling.hosted_on is None and descendants:
        sibling.hosted_on = descendants[0]

    parent = group.parent
    if parent is None:
        new_root = tree.allocate_node(group.level + 1)
        new_root.add_child(group)
        new_root.add_child(sibling)
        new_root.refresh_from_children()
        tree.root = new_root
    else:
        parent.add_child(sibling)
        _refresh_upward(parent)
        if len(parent.children) > tree.max_fanout:
            split_group(tree, parent)
    return group, sibling


def merge_into_sibling(tree: SemanticRTree, group: SemanticNode) -> Optional[SemanticNode]:
    """Merge an under-full group into its most correlated sibling.

    Returns the sibling that absorbed the children, or None when the group
    has no siblings (the root cannot be merged away).
    """
    parent = group.parent
    if parent is None:
        return None
    siblings = [c for c in parent.children if c is not group]
    if not siblings:
        return None
    best = max(siblings, key=lambda s: _correlation(group.semantic_vector, s.semantic_vector))
    for child in list(group.children):
        best.add_child(child)
    group.children = []
    parent.children.remove(group)
    tree.forget_node(group)
    best.refresh_from_children()
    _refresh_upward(parent)
    if len(best.children) > tree.max_fanout:
        split_group(tree, best)
    return best


def refresh_upward(node: Optional[SemanticNode]) -> None:
    """Recompute the summaries of ``node`` and every ancestor, bottom-up."""
    while node is not None:
        node.refresh_from_children()
        node = node.parent


# Backwards-compatible alias (the helper predates its public export).
_refresh_upward = refresh_upward


def _collapse_single_child_chains(tree: SemanticRTree) -> None:
    """Collapse internal nodes left with a single child (height adjustment)."""
    changed = True
    while changed:
        changed = False
        # The root itself collapses downward when it has a single child.
        while not tree.root.is_leaf and len(tree.root.children) == 1:
            old_root = tree.root
            tree.root = old_root.children[0]
            tree.root.parent = None
            tree.forget_node(old_root)
            changed = True
        for node in list(tree.nodes):
            if node.is_leaf or node is tree.root or node.parent is None:
                continue
            if len(node.children) == 1:
                child = node.children[0]
                parent = node.parent
                parent.children.remove(node)
                parent.add_child(child)
                tree.forget_node(node)
                _refresh_upward(parent)
                changed = True
