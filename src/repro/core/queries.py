"""On-line and off-line query engines (§3.3, §3.4).

The engine executes the three query types against a built SmartStore
deployment and accounts every message, index probe and record scan on a
per-query :class:`~repro.cluster.metrics.Metrics` object:

* **Point query** — routed over the hierarchical Bloom filters; candidate
  storage units verify the filename locally.
* **Range query** — target groups (first-level index units) are located
  either by local computation over replicated index summaries (*off-line*
  mode) or by multicasting to the index units (*on-line* mode); the storage
  units of the target groups whose MBR intersects the window run vectorised
  local scans.
* **Top-k query** — the most semantically correlated group is scanned first
  to obtain ``MaxD`` (the current k-th best distance); sibling groups are
  then checked only when their MBR's MINDIST is below ``MaxD``.

Geometry convention: users express queries in natural ("raw") units; the
engine converts them into the deployment's *index space* (wide-range
attributes are ``log1p``-transformed — a per-dimension monotone transform,
so range predicates translate exactly) where all MBRs, scans and distances
live.  Top-k distances additionally use the deployment-wide min-max
normalisation of that space so that dimensions are comparable.

When versioning is enabled the engine additionally consults the version
chains of the visited groups (rolling backwards), which is how recent
changes become visible at a small extra latency (§4.4, Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.cluster.metrics import Metrics
from repro.cluster.simulator import ClusterSimulator
from repro.core.offline import OfflineRouter
from repro.core.semantic_rtree import SemanticNode, SemanticRTree
from repro.core.versioning import VersioningManager
from repro.lsi.model import LSIModel
from repro.metadata.attributes import AttributeSchema
from repro.metadata.file_metadata import FileMetadata
from repro.workloads.types import PointQuery, RangeQuery, TopKQuery

__all__ = ["QueryResult", "QueryEngine"]


@dataclass
class QueryResult:
    """Outcome of one query.

    Attributes
    ----------
    files:
        Matching metadata records (for top-k, sorted by ascending distance).
    metrics:
        Per-query event counters.
    latency:
        Simulated latency in seconds under the engine's cost model.
    groups_visited:
        Number of first-level semantic groups that did local work.
    hops:
        Routing distance in groups: ``max(0, groups_visited - 1)`` — the
        quantity Figure 8 reports (0 hops = served within a single group).
    found:
        Convenience flag: non-empty result set.
    distances:
        For top-k queries, the distance of each returned file (same order).
    complete:
        False when a cooperative deadline expired before every relevant
        group could be visited: the payload is then a correct *subset* of
        the full answer (every file returned does match), but files from
        unvisited groups may be missing.
    """

    files: List[FileMetadata]
    metrics: Metrics
    latency: float
    groups_visited: int
    hops: int
    found: bool
    distances: List[float] = field(default_factory=list)
    complete: bool = True


class QueryEngine:
    """Executes point/range/top-k queries against a SmartStore deployment.

    Parameters
    ----------
    tree, cluster, lsi, schema:
        The deployment's semantic R-tree, cluster simulator, fitted LSI
        model and attribute schema.
    index_lower, index_upper:
        Deployment-wide per-attribute bounds of the index space (the
        log-transformed attribute matrix of the build-time population),
        used both for min-max normalisation and for folding queries into
        the LSI subspace.
    log_mask:
        Per-attribute flags selecting which attributes the index-space
        transform applies ``log1p`` to (from the schema).
    versioning, offline_router:
        The version chains and the replicated-index router (required for
        ``mode="offline"``).
    mode:
        ``"offline"`` (replica-based routing, the default) or ``"online"``
        (multicast discovery).
    search_breadth:
        Maximum number of first-level groups a complex query contacts.
        SmartStore deliberately bounds the search scope to the most
        correlated groups (that is the whole point of the semantic
        organisation); the bound keeps query traffic low at the price of
        occasionally missing results that live in a less correlated group —
        which is why the paper's recall figures sit below 100 %.
    """

    def __init__(
        self,
        *,
        tree: SemanticRTree,
        cluster: ClusterSimulator,
        lsi: LSIModel,
        schema: AttributeSchema,
        index_lower: np.ndarray,
        index_upper: np.ndarray,
        log_mask: Sequence[bool],
        center: Optional[np.ndarray] = None,
        versioning: Optional[VersioningManager] = None,
        offline_router: Optional[OfflineRouter] = None,
        mode: str = "offline",
        versioning_enabled: bool = True,
        search_breadth: int = 4,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        if mode not in ("offline", "online"):
            raise ValueError(f"mode must be 'offline' or 'online', got {mode!r}")
        if mode == "offline" and offline_router is None:
            raise ValueError("offline mode requires an OfflineRouter")
        if search_breadth < 1:
            raise ValueError("search_breadth must be >= 1")
        self.tree = tree
        self.cluster = cluster
        self.lsi = lsi
        self.schema = schema
        self.index_lower = np.asarray(index_lower, dtype=np.float64)
        self.index_upper = np.asarray(index_upper, dtype=np.float64)
        self.log_mask = np.asarray(log_mask, dtype=bool)
        self.center = (
            np.asarray(center, dtype=np.float64)
            if center is not None
            else np.full(schema.dimension, 0.5, dtype=np.float64)
        )
        self.versioning = versioning
        self.offline_router = offline_router
        self.mode = mode
        self.versioning_enabled = versioning_enabled and versioning is not None
        self.search_breadth = search_breadth
        self.cost_model = cost_model
        # Read-your-writes overlay for the ingest pipeline (None outside it);
        # set via SmartStore.attach_overlay.  Unlike the version chains it
        # masks staged deletions and serves staged records id-indexed.
        self.overlay = None
        self._nodes_by_id: Dict[int, SemanticNode] = {n.node_id: n for n in tree.nodes}

    def refresh_topology(self) -> None:
        """Re-index the tree's nodes after a structural change.

        Compaction may split hot groups (allocating new index units); the
        id → node map used by off-line routing must follow.
        """
        self._nodes_by_id = {n.node_id: n for n in self.tree.nodes}

    def node_by_id(self, node_id: int) -> Optional[SemanticNode]:
        """O(1) tree-node lookup, re-indexing once on a stale miss.

        The miss path covers callers that changed the tree through
        :mod:`repro.core.reconfig` without calling :meth:`refresh_topology`.
        """
        node = self._nodes_by_id.get(node_id)
        if node is None:
            self.refresh_topology()
            node = self._nodes_by_id.get(node_id)
        return node

    # ------------------------------------------------------------------ space transforms
    def to_index_space(self, attr_indices: Sequence[int], values: Sequence[float]) -> np.ndarray:
        """Raw query values → index space (``log1p`` on wide-range attributes)."""
        idx = np.asarray(attr_indices, dtype=np.intp)
        vals = np.asarray(values, dtype=np.float64).copy()
        logs = self.log_mask[idx]
        vals[logs] = np.log1p(np.maximum(vals[logs], 0.0))
        return vals

    def normalize_index_values(
        self, attr_indices: Sequence[int], index_values: np.ndarray
    ) -> np.ndarray:
        """Index-space values → deployment-wide min-max normalised values."""
        idx = np.asarray(attr_indices, dtype=np.intp)
        span = self.index_upper[idx] - self.index_lower[idx]
        span = np.where(span > 0, span, 1.0)
        out = (np.asarray(index_values, dtype=np.float64) - self.index_lower[idx]) / span
        return np.clip(out, 0.0, 1.0)

    def fold_normalized_vector(self, normalized_full: np.ndarray) -> np.ndarray:
        """Fold a full-dimension normalised attribute vector into LSI space.

        The LSI model was fitted on *centred* data, so the deployment-wide
        per-attribute mean is subtracted before projecting.
        """
        return self.lsi.fold_in(np.asarray(normalized_full, dtype=np.float64) - self.center)

    def _fold_query(self, attributes: Sequence[str], values: Sequence[float]) -> np.ndarray:
        """Fold a partial query into the LSI semantic subspace.

        Unconstrained attributes take the deployment-wide mean value, so
        they neither attract nor repel any group.
        """
        full = self.center.copy()
        idx = list(self.schema.indices(attributes))
        full[idx] = self.normalize_index_values(idx, self.to_index_space(idx, values))
        return self.fold_normalized_vector(full)

    def file_normalized_subset(
        self, file: FileMetadata, attributes: Sequence[str]
    ) -> np.ndarray:
        """One file's attribute values, normalised, restricted to ``attributes``."""
        idx = list(self.schema.indices(attributes))
        values = [file.attributes.get(a, 0.0) for a in attributes]
        return self.normalize_index_values(idx, self.to_index_space(idx, values))

    def _pending_distance(
        self, file: FileMetadata, attributes: Sequence[str], query_norm: np.ndarray
    ) -> float:
        fnorm = self.file_normalized_subset(file, attributes)
        return float(np.linalg.norm(fnorm - query_norm))

    def _finish(
        self,
        files: List[FileMetadata],
        metrics: Metrics,
        groups_visited: int,
        distances: Optional[List[float]] = None,
        *,
        complete: bool = True,
    ) -> QueryResult:
        return QueryResult(
            files=files,
            metrics=metrics,
            latency=metrics.latency(self.cost_model),
            groups_visited=groups_visited,
            hops=max(0, groups_visited - 1),
            found=bool(files),
            distances=distances or [],
            complete=complete,
        )

    # ------------------------------------------------------------------ point query
    def point_query(
        self,
        query: PointQuery,
        *,
        home_unit: Optional[int] = None,
        deadline=None,
    ) -> QueryResult:
        """Filename point query routed over the Bloom-filter hierarchy.

        ``home_unit`` pins the storage unit the request initially lands on;
        when omitted it is drawn from the cluster's shared RNG.  The query
        service passes a per-request deterministic home so that concurrent
        execution keeps the cost accounting reproducible.

        ``deadline`` is an optional cooperative budget (any object with an
        ``expired()`` method, see :class:`repro.api.options.Deadline`):
        once expired, no further storage unit is contacted and the result
        comes back with ``complete=False``.
        """
        metrics = Metrics()
        home = home_unit if home_unit is not None else self.cluster.random_home_unit()
        metrics.record_unit_visit(home)

        # Check the home unit's own filter first (free, local).
        metrics.record_bloom_probe()
        home_server = self.cluster.server(home)
        candidates: List[SemanticNode] = []
        if home_server.bloom.contains(query.filename):
            candidates.append(self.tree.leaves[home])

        # Walk the hierarchy; reaching the root's host costs one message when
        # the root is not multi-mapped into the home unit's own subtree.
        root = self.tree.root
        if root.hosted_on != home and home not in root.replica_hosts:
            metrics.record_message()
        bloom_hits = self.tree.route_filename(query.filename, metrics)
        for leaf in bloom_hits:
            if leaf not in candidates:
                candidates.append(leaf)

        complete = True
        results: List[FileMetadata] = []
        for leaf in candidates:
            if deadline is not None and deadline.expired():
                complete = False
                break
            if leaf.unit_id != home:
                metrics.record_message(2)  # request + response
            matches = self.cluster.server(leaf.unit_id).lookup_filename(query.filename, metrics)
            results.extend(matches)

        if self.versioning_enabled and not results and complete:
            # Recent insertions are not yet reflected in any Bloom filter;
            # the version chains (small, memory resident) are checked next.
            for group in self.tree.first_level_groups():
                for pending in self.versioning.pending_files(group.node_id, metrics):
                    if pending.filename == query.filename:
                        results.append(pending)

        if self.overlay is not None and len(self.overlay):
            # Staged mutations win over any indexed copy: staged records
            # surface with their latest values, staged deletions mask the
            # record out.  One in-memory probe against the id-indexed view.
            metrics.record_index_access()
            live, deleted = self.overlay.snapshot()
            merged: Dict[int, FileMetadata] = {}
            for f in results:
                merged.setdefault(f.file_id, f)
            for fid, staged in live.items():
                if staged.filename == query.filename:
                    merged[fid] = staged
            results = [f for f in merged.values() if f.file_id not in deleted]

        groups = {self.tree.group_of_unit(leaf.unit_id).node_id for leaf in candidates}
        groups_visited = max(1, len(groups))
        # Same canonical order as range results (placement-independent).
        results.sort(key=lambda f: f.file_id)
        return self._finish(results, metrics, groups_visited, complete=complete)

    # ------------------------------------------------------------------ range query
    def range_query(
        self,
        query: RangeQuery,
        *,
        home_unit: Optional[int] = None,
        deadline=None,
    ) -> QueryResult:
        """Multi-dimensional range query.

        ``deadline``: cooperative budget checked between per-group scans;
        on expiry the remaining groups are skipped and the result is
        marked ``complete=False`` (every returned file still matches).
        """
        metrics = Metrics()
        home = home_unit if home_unit is not None else self.cluster.random_home_unit()
        metrics.record_unit_visit(home)
        attr_idx = list(self.schema.indices(query.attributes))
        # The log transform is monotone per dimension, so the raw-unit window
        # maps exactly onto an index-space window.
        lower = self.to_index_space(attr_idx, query.lower)
        upper = self.to_index_space(attr_idx, query.upper)

        target_groups = self._locate_groups_for_range(home, attr_idx, lower, upper, metrics)

        complete = True
        results: List[FileMetadata] = []
        for group in target_groups:
            if not complete:
                break
            for leaf in group.descendant_leaves():
                # Per-leaf deadline granularity: the expiry overshoot is
                # bounded by one storage unit's scan, not a whole group's.
                if deadline is not None and deadline.expired():
                    complete = False
                    break
                metrics.record_index_access()
                if not leaf.intersects_subrange(attr_idx, lower, upper):
                    continue
                if leaf.unit_id != home:
                    metrics.record_message(2)
                files = self.cluster.server(leaf.unit_id).scan_range(
                    attr_idx, lower, upper, metrics
                )
                results.extend(files)
        # Deduplicate by file identity; later merge stages override earlier
        # ones because chains and overlay carry fresher values (§4.4 rolls
        # versions backwards so fresh information is found first).
        unique: Dict[int, FileMetadata] = {}
        for f in results:
            unique.setdefault(f.file_id, f)
        if self.versioning_enabled:
            # The version chains are attached to the first-level index-unit
            # replicas every storage unit holds (§3.4, §4.4), so the home
            # unit can roll through all of them locally — this is the small
            # extra latency Figure 14(b) measures.  A pending record wins
            # over its indexed copy (its attribute values are newer).
            for group in self.tree.first_level_groups():
                for pending in self.versioning.pending_files(group.node_id, metrics):
                    if pending.matches_ranges(query.attributes, query.lower, query.upper):
                        unique[pending.file_id] = pending
        if self.overlay is not None and len(self.overlay):
            metrics.record_index_access()
            # Staged records replace any indexed copy in both directions: a
            # staged insert/modify matching the window is served with its
            # new values, and a staged modify that moved the file *out* of
            # the window masks the stale indexed copy.
            live, deleted = self.overlay.snapshot()
            for fid, staged in live.items():
                if staged.matches_ranges(query.attributes, query.lower, query.upper):
                    unique[fid] = staged
                else:
                    unique.pop(fid, None)
            for fid in deleted:
                unique.pop(fid, None)
        groups_visited = max(1, len(target_groups))
        # Canonical order: a range result is a set; returning it sorted by
        # file id makes payloads independent of physical placement (two
        # deployments over the same logical population answer identically).
        files = sorted(unique.values(), key=lambda f: f.file_id)
        return self._finish(files, metrics, groups_visited, complete=complete)

    def _limit_range_groups(
        self,
        attr_idx: Sequence[int],
        lower: np.ndarray,
        upper: np.ndarray,
        groups: List[SemanticNode],
    ) -> List[SemanticNode]:
        """Bound the search scope to the ``search_breadth`` best-matching groups.

        When more groups intersect the window than the breadth allows, the
        ones whose MBR centre is closest to the window centre (in the
        constrained, normalised dimensions) are kept — they hold the queried
        region's correlated files with the highest probability.
        """
        if len(groups) <= self.search_breadth:
            return groups
        center_idx = (np.asarray(lower) + np.asarray(upper)) / 2.0
        center_norm = self.normalize_index_values(attr_idx, center_idx)

        def distance(group: SemanticNode) -> float:
            if group.mbr is None:
                return float("inf")
            idx = list(attr_idx)
            g_center = (group.mbr.lower[idx] + group.mbr.upper[idx]) / 2.0
            g_norm = self.normalize_index_values(attr_idx, g_center)
            return float(np.linalg.norm(g_norm - center_norm))

        ranked = sorted(groups, key=distance)
        return ranked[: self.search_breadth]

    def _locate_groups_for_range(
        self,
        home: int,
        attr_idx: Sequence[int],
        lower: np.ndarray,
        upper: np.ndarray,
        metrics: Metrics,
    ) -> List[SemanticNode]:
        """Find the first-level groups a range query must visit."""
        if self.mode == "offline":
            gids = self.offline_router.groups_for_range(attr_idx, lower, upper, metrics)
            groups = [self._nodes_by_id[g] for g in gids]
            groups = self._limit_range_groups(
                attr_idx, np.asarray(lower), np.asarray(upper), groups
            )
            # Forward the query directly to each target group's host.
            for group in groups:
                if group.hosted_on is not None and group.hosted_on != home:
                    metrics.record_message(2)
            return groups
        # On-line: the home unit multicasts to the index units to discover
        # which groups are relevant; every contacted index unit answers.
        all_groups = self.tree.first_level_groups()
        others = [g for g in all_groups if g.hosted_on != home]
        metrics.record_message(len(others))          # multicast requests
        groups = self.tree.groups_for_range(attr_idx, lower, upper, metrics)
        metrics.record_message(len(others))          # responses
        return self._limit_range_groups(attr_idx, np.asarray(lower), np.asarray(upper), groups)

    # ------------------------------------------------------------------ top-k query
    def topk_query(
        self,
        query: TopKQuery,
        *,
        home_unit: Optional[int] = None,
        max_d_bound: Optional[float] = None,
        deadline=None,
    ) -> QueryResult:
        """Top-k nearest-neighbour query with MaxD refinement.

        The target group (the one "most closely associated with the query
        point q", §3.3.2) is the group whose MBR MINDIST to the query point
        is smallest; scanning it yields the running threshold ``MaxD``
        (distance of the current k-th best candidate), and sibling groups
        are then examined in MINDIST order only while they could still beat
        ``MaxD`` and the search-breadth budget allows.

        Correctness invariants (the drain-equivalence and sharded
        scatter-gather gates depend on both):

        * ``MaxD`` is tightened on the *deduplicated* candidate pool — a
          record surfacing both from its storage unit and from a version
          chain must count once, or the k-th-best distance is understated
          and the sibling-group scan terminates early, dropping real
          members;
        * results are ordered by ``(distance, file_id)`` and groups are
          pruned only when their MINDIST *strictly exceeds* ``MaxD``, so
          equal-distance results are returned in canonical file-id order
          regardless of physical placement.

        ``max_d_bound`` seeds ``MaxD`` with an externally-known upper bound
        on the global k-th-best distance (a sharded deployment ships the
        primary shard's k-th-best distance to the other shards).  With a
        bound the scan may prune every group and return fewer than ``k``
        files: only candidates that could still enter a global top-k under
        the bound are guaranteed to be present.

        ``deadline``: cooperative budget checked before each group scan;
        on expiry the MINDIST walk stops and the best candidates gathered
        so far are returned with ``complete=False``.
        """
        metrics = Metrics()
        home = home_unit if home_unit is not None else self.cluster.random_home_unit()
        metrics.record_unit_visit(home)
        attr_idx = list(self.schema.indices(query.attributes))
        index_point = self.to_index_space(attr_idx, query.values)
        query_norm = self.normalize_index_values(attr_idx, index_point)

        idx_lo = self.index_lower[attr_idx]
        idx_hi = self.index_upper[attr_idx]

        def mindist(group: SemanticNode) -> float:
            return group.min_distance_subrange(attr_idx, index_point, idx_lo, idx_hi)

        groups = sorted(self.tree.first_level_groups(), key=mindist)
        # Locating the target costs local replica probes (off-line) or a
        # round of multicast messages (on-line).
        if self.mode == "offline":
            metrics.record_index_access(len(groups))
        else:
            others = [g for g in groups if g.hosted_on != home]
            metrics.record_message(2 * len(others))

        scanned_groups: List[SemanticNode] = []

        # The candidate pool is deduplicated *as it is built*: a record can
        # surface both from its storage unit and from a version chain, and
        # counting such a pair twice would make ``candidates[k-1]``
        # understate the true k-th-best distance.  ``best`` keeps the best
        # distance per file id and is the only pool MaxD is derived from.
        best: Dict[int, Tuple[float, FileMetadata]] = {}

        def absorb(pairs) -> None:
            for dist, file in pairs:
                kept = best.get(file.file_id)
                if kept is None or dist < kept[0]:
                    best[file.file_id] = (dist, file)

        # Staged mutations must be resolved *before* MaxD pruning: a staged
        # delete's indexed copy would otherwise tighten MaxD with a record
        # that is later masked out (stopping the group scan too early), and
        # a staged modify's indexed copy carries stale coordinates.  Staged
        # records enter the pool up front with fresh distances; their ids
        # are masked from every server scan, which over-fetches to keep the
        # per-unit candidate count intact.
        staged_ids = None
        if self.overlay is not None and len(self.overlay):
            metrics.record_index_access()
            live, deleted = self.overlay.snapshot()
            staged_ids = set(live) | deleted
            absorb(
                (self._pending_distance(f, query.attributes, query_norm), f)
                for f in live.values()
            )
        k_fetch = query.k + (len(staged_ids) if staged_ids else 0)

        complete = True

        def scan_group(group: SemanticNode) -> None:
            nonlocal complete
            if group.hosted_on is not None and group.hosted_on != home:
                metrics.record_message(2)
            for leaf in group.descendant_leaves():
                # Per-leaf deadline granularity (see range_query).
                if deadline is not None and deadline.expired():
                    complete = False
                    break
                metrics.record_index_access()
                if leaf.unit_id != home:
                    metrics.record_message(2)
                local = self.cluster.server(leaf.unit_id).scan_knn(
                    query_norm, k_fetch, metrics, attr_indices=attr_idx
                )
                if staged_ids:
                    local = [(d, f) for d, f in local if f.file_id not in staged_ids]
                absorb(local)
            scanned_groups.append(group)

        if self.versioning_enabled:
            # Version chains are replicated alongside the first-level index
            # summaries, so their (few) entries are folded into the candidate
            # pool locally before the distributed search starts.  Entries
            # the overlay already contributed are skipped (staged records
            # carry the freshest values); chain entries duplicating an
            # indexed record are collapsed by ``absorb``.
            for group in self.tree.first_level_groups():
                for pending in self.versioning.pending_files(group.node_id, metrics):
                    if staged_ids and pending.file_id in staged_ids:
                        continue
                    dist = self._pending_distance(pending, query.attributes, query_norm)
                    absorb([(dist, pending)])

        # The target group (smallest MINDIST) is always scanned; siblings are
        # examined in MINDIST order only while they could still contain a
        # candidate at or below the current MaxD (§3.3.2).  Pruning is
        # strict (``>``): a group whose MINDIST ties MaxD exactly may hold a
        # file that ties the k-th best and wins the file-id tie-break, so it
        # must still be scanned for placement-independent results.  With an
        # external ``max_d_bound`` the pruning applies from the first group
        # on — the bound already proves those groups cannot contribute.
        max_d = float("inf") if max_d_bound is None else float(max_d_bound)
        for group in groups:
            if deadline is not None and deadline.expired():
                complete = False
            if not complete:
                break
            metrics.record_index_access()
            if mindist(group) > max_d and (
                len(best) >= query.k or max_d_bound is not None
            ):
                break
            scan_group(group)
            if len(best) >= query.k:
                kth = sorted(dist for dist, _ in best.values())[query.k - 1]
                max_d = min(max_d, kth)

        # Canonical order: ties broken by file id, matching the file-id
        # ordering of range/point results, so equal-distance members come
        # back identically regardless of physical placement.
        top = sorted(best.values(), key=lambda pair: (pair[0], pair[1].file_id))[
            : query.k
        ]
        files = [f for _, f in top]
        distances = [d for d, _ in top]
        return self._finish(
            files, metrics, max(1, len(scanned_groups)), distances, complete=complete
        )

    def locate_group_for_vector(
        self,
        sem_vector: np.ndarray,
        metrics: Optional[Metrics] = None,
    ) -> SemanticNode:
        """The group most semantically correlated with a folded-in vector.

        Used by metadata insertion (§3.2.1) and by the off-line router's
        clients; queries themselves route on MBR geometry.
        """
        metrics = metrics if metrics is not None else Metrics()
        if self.mode == "offline":
            gid, _ = self.offline_router.target_group_for_vector(sem_vector, metrics)
            return self._nodes_by_id[gid]
        group, _ = self.tree.most_correlated_group(sem_vector, metrics)
        return group
