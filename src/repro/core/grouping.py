"""Semantic grouping (§3.1).

Two grouping problems are solved here, both with the LSI machinery:

1. **File → storage unit partitioning.**  Files are projected into the LSI
   semantic subspace and partitioned into approximately equal-sized groups
   (Statement 1 requires balanced group sizes) such that files within a
   group are more correlated with each other than with files outside it.

2. **Unit → index unit aggregation.**  Storage units (and, recursively,
   index units) are aggregated level by level: two nodes join the same
   group when their semantic correlation exceeds the per-level admission
   threshold ``epsilon_i``; when a node qualifies for several groups the
   most correlated one wins.  The levels produced here become the levels of
   the semantic R-tree.

The quantitative quality measure of §1.1 — the total squared distance of
items to their group centroids — is implemented in
:func:`grouping_quality` and drives the optimal-threshold study of
Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.lsi.kmeans import balanced_kmeans
from repro.lsi.model import LSIModel
from repro.metadata.attributes import AttributeSchema, DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.metadata.matrix import attribute_matrix, log_transform, normalize_matrix

__all__ = [
    "SemanticPartition",
    "partition_files",
    "group_by_correlation",
    "build_group_levels",
    "grouping_quality",
    "optimal_threshold",
]


@dataclass
class SemanticPartition:
    """Result of partitioning files onto storage units.

    Attributes
    ----------
    labels:
        ``(n_files,)`` storage-unit index per file.
    semantic_vectors:
        ``(n_files, p)`` LSI coordinates of every file.
    lsi:
        The fitted :class:`~repro.lsi.model.LSIModel` (needed later to fold
        in query vectors).
    norm_lower, norm_upper:
        The deployment-wide normalisation bounds derived from the file
        population (installed on every storage server).
    quality:
        The within-group squared-distance measure of §1.1 for this
        partition (lower is better).
    """

    labels: np.ndarray
    semantic_vectors: np.ndarray
    lsi: LSIModel
    norm_lower: np.ndarray
    norm_upper: np.ndarray
    center: np.ndarray
    quality: float

    @property
    def n_groups(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0


def partition_files(
    files: Sequence[FileMetadata],
    num_units: int,
    schema: AttributeSchema = DEFAULT_SCHEMA,
    *,
    rank: int = 5,
    seed: Optional[int] = None,
) -> SemanticPartition:
    """Partition ``files`` into ``num_units`` semantically coherent groups.

    The pipeline is: raw attribute matrix → log-transform of wide-range
    attributes → min-max normalisation → centring → LSI projection →
    balanced K-means in the semantic subspace.  The centring step (subtract
    the per-attribute mean before the SVD) matters: without it the leading
    singular direction merely encodes the all-positive offset of the data
    and every item looks "correlated" with every other one, which destroys
    the discriminative power of the cosine thresholds.  Balanced K-means
    (rather than thresholded agglomeration) is used at the file level
    because Statement 1 requires group sizes to be approximately equal —
    each group must fit one storage unit.
    """
    if not files:
        raise ValueError("cannot partition an empty file population")
    if num_units < 1:
        raise ValueError(f"num_units must be >= 1, got {num_units}")
    num_units = min(num_units, len(files))

    raw = attribute_matrix(files, schema)
    transformed = log_transform(raw, schema)
    normalised, lower, upper = normalize_matrix(transformed)
    center = normalised.mean(axis=0)
    centred = normalised - center

    rank = max(1, min(rank, schema.dimension, len(files)))
    lsi = LSIModel.fit_items(centred, rank)
    sem = lsi.item_vectors()

    if num_units == 1:
        labels = np.zeros(len(files), dtype=np.intp)
    else:
        labels = balanced_kmeans(sem, num_units, seed=seed).labels

    quality = grouping_quality(sem, labels)
    return SemanticPartition(
        labels=labels,
        semantic_vectors=sem,
        lsi=lsi,
        norm_lower=lower,
        norm_upper=upper,
        center=center,
        quality=quality,
    )


def group_by_correlation(
    vectors: np.ndarray,
    threshold: float,
    *,
    max_group_size: int = 8,
) -> List[List[int]]:
    """Aggregate items into groups by semantic correlation.

    Implements the §3.1.2 rule: two nodes are aggregated when their
    correlation exceeds the admission threshold; a node correlated with
    several candidates joins the most correlated one.  Agglomeration is
    *centroid-linkage*: after every merge the group is represented by the
    centroid of its members and further merges are decided on centroid
    correlations.  (Single-linkage chaining — merging A with C merely
    because both correlate with B — would produce sprawling groups whose
    MBRs cover most of the attribute space, defeating the purpose of the
    grouping.)  Groups never exceed ``max_group_size`` (the R-tree fan-out
    bound ``M``).

    Items that correlate with nothing above the threshold remain singleton
    groups.  The function always returns at least one group and never loses
    an item.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        return []
    if threshold < -1.0 or threshold > 1.0:
        raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
    if max_group_size < 1:
        raise ValueError("max_group_size must be >= 1")
    if n == 1:
        return [[0]]

    def centroid_corr(centroids: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(centroids, axis=1, keepdims=True)
        unit = centroids / np.where(norms > 0, norms, 1.0)
        corr = np.clip(unit @ unit.T, -1.0, 1.0)
        np.fill_diagonal(corr, -np.inf)
        return corr

    members: List[List[int]] = [[i] for i in range(n)]
    centroids = vectors.copy()
    active = list(range(n))

    while len(active) > 1:
        corr = centroid_corr(centroids[active])
        # Mask out merges that would overflow the fan-out bound.
        sizes = np.array([len(members[g]) for g in active])
        too_big = (sizes[:, None] + sizes[None, :]) > max_group_size
        corr[too_big] = -np.inf
        best_flat = int(np.argmax(corr))
        best_i, best_j = divmod(best_flat, len(active))
        if corr[best_i, best_j] < threshold or not np.isfinite(corr[best_i, best_j]):
            break
        ga, gb = active[best_i], active[best_j]
        members[ga].extend(members[gb])
        centroids[ga] = vectors[members[ga]].mean(axis=0)
        members[gb] = []
        active.remove(gb)

    return [m for m in members if m]


def build_group_levels(
    vectors: np.ndarray,
    *,
    thresholds: Sequence[float],
    max_fanout: int = 8,
) -> List[List[List[int]]]:
    """Iteratively aggregate items level by level until a single root group.

    ``thresholds[i]`` is the admission constant ``epsilon_{i+1}`` applied
    when building level ``i+1`` from level ``i``; when the hierarchy needs
    more levels than thresholds were supplied, the last threshold is reused
    (progressively relaxed if no merge happens, to guarantee termination).

    Returns a list of levels; ``levels[0]`` is a list of singleton groups
    (the leaves), ``levels[i]`` is a list of groups of *indices into
    level i-1*.  The last level always has exactly one group (the root).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if n == 0:
        raise ValueError("cannot build a hierarchy over zero items")
    if max_fanout < 2:
        raise ValueError("max_fanout must be >= 2")
    if not thresholds:
        raise ValueError("at least one threshold is required")

    levels: List[List[List[int]]] = [[[i] for i in range(n)]]
    current_vectors = vectors
    level = 0
    while current_vectors.shape[0] > 1:
        threshold = thresholds[min(level, len(thresholds) - 1)]
        groups = group_by_correlation(
            current_vectors, threshold, max_group_size=max_fanout
        )
        # Guarantee progress: if nothing merged, relax the threshold until
        # something does (in the limit, threshold -1 merges the best pairs).
        relax = threshold
        while len(groups) == current_vectors.shape[0] and relax > -1.0:
            relax = max(-1.0, relax - 0.1)
            groups = group_by_correlation(
                current_vectors, relax, max_group_size=max_fanout
            )
        if len(groups) == current_vectors.shape[0]:
            # Still nothing merged (identical vectors edge case): force a
            # single parent over chunks of max_fanout children.
            groups = [
                list(range(i, min(i + max_fanout, current_vectors.shape[0])))
                for i in range(0, current_vectors.shape[0], max_fanout)
            ]
        levels.append(groups)
        current_vectors = np.vstack(
            [current_vectors[g].mean(axis=0) for g in groups]
        )
        level += 1

    return levels


def grouping_quality(points: np.ndarray, labels: np.ndarray) -> float:
    """The §1.1 semantic-correlation measure: total squared distance to centroids.

    ``sum_i sum_{f in G_i} ||f - C_i||^2`` — lower values indicate tighter,
    more semantically coherent groups.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.shape[0] != labels.shape[0]:
        raise ValueError("points and labels must have the same length")
    total = 0.0
    for g in np.unique(labels):
        members = points[labels == g]
        centroid = members.mean(axis=0)
        total += float(np.sum((members - centroid) ** 2))
    return total


def optimal_threshold(
    vectors: np.ndarray,
    *,
    candidates: Optional[Sequence[float]] = None,
    max_fanout: int = 8,
) -> Tuple[float, float]:
    """Find the admission threshold minimising the grouping-quality measure.

    Used for the Figure 11 study (optimal threshold vs. system scale and
    vs. tree level).  Returns ``(best_threshold, best_quality)``.  The
    quality of a candidate threshold is evaluated on the groups produced by
    a single aggregation pass; a degenerate outcome where every item stays
    a singleton is penalised by treating the whole population as one group
    (which is what the system would have to fall back to).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.shape[0] < 2:
        return 1.0, 0.0
    if candidates is None:
        candidates = np.round(np.arange(0.05, 1.0, 0.05), 3)

    best_threshold = float(candidates[0])
    best_quality = np.inf
    for threshold in candidates:
        groups = group_by_correlation(vectors, float(threshold), max_group_size=max_fanout)
        if len(groups) in (1, vectors.shape[0]):
            # No real grouping happened (everything merged or nothing did);
            # such thresholds do not reduce the search space.
            labels = np.zeros(vectors.shape[0], dtype=np.intp)
        else:
            labels = np.empty(vectors.shape[0], dtype=np.intp)
            for gid, members in enumerate(groups):
                labels[members] = gid
        quality = grouping_quality(vectors, labels)
        if quality < best_quality:
            best_quality = quality
            best_threshold = float(threshold)
    return best_threshold, float(best_quality)
