"""Off-line pre-processing (§3.4): replicated index vectors and lazy updating.

The on-line query approach multicasts messages to locate the semantic R-tree
nodes most correlated with a request; that traffic is the dominant cost in
Figure 13.  The off-line approach avoids it: every storage unit keeps a
local replica of the *first-level index units'* summaries (semantic vector
plus MBR), so the home unit can determine the target group with purely
local computation and forward the request directly.

Replicas go stale as metadata changes.  Lazy updating bounds the staleness:
each group accumulates a change counter and, once the number of changes
exceeds ``lazy_update_threshold`` (5 % in the prototype) of the group's
files, the group's index unit multicasts its latest replica to every storage
unit — those messages are charged to the metrics object handed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.metrics import Metrics
from repro.core.semantic_rtree import SemanticNode, SemanticRTree
from repro.rtree.mbr import MBR

__all__ = ["IndexReplica", "OfflineRouter"]


@dataclass
class IndexReplica:
    """A storage unit's local copy of one first-level index unit's summary."""

    group_id: int
    semantic_vector: np.ndarray
    mbr: Optional[MBR]
    hosted_on: Optional[int]


class OfflineRouter:
    """Local routing over replicated first-level index summaries.

    One router instance models the replica set every storage unit holds
    (the replicas are identical on all units — what differs per unit is
    only *which* server does the local computation, which costs no
    messages either way).
    """

    def __init__(
        self,
        tree: SemanticRTree,
        *,
        lazy_update_threshold: float = 0.05,
    ) -> None:
        if not 0.0 < lazy_update_threshold <= 1.0:
            raise ValueError("lazy_update_threshold must be in (0, 1]")
        self.tree = tree
        self.lazy_update_threshold = lazy_update_threshold
        self.replicas: Dict[int, IndexReplica] = {}
        self._pending_changes: Dict[int, int] = {}
        self.lazy_update_multicasts = 0
        self.refresh_all()

    # ------------------------------------------------------------------ replica management
    def refresh_all(self) -> None:
        """Snapshot every first-level index unit into the replica set."""
        self.replicas = {}
        for group in self.tree.first_level_groups():
            self._store_replica(group)
        self._pending_changes = {gid: 0 for gid in self.replicas}

    def refresh_group(
        self,
        group: SemanticNode,
        metrics: Optional[Metrics] = None,
        *,
        num_units: int = 0,
    ) -> None:
        """Re-snapshot one group's replica after a partial reconfiguration.

        Incremental compaction refreshes only the group it drained instead
        of re-replicating every first-level summary (:meth:`refresh_all`).
        The multicast that pushes the fresh replica to the other storage
        units is charged to ``metrics`` (``num_units - 1`` messages), and
        the group's lazy-update change counter is reset — its replica is
        exact again.
        """
        metrics = metrics if metrics is not None else Metrics()
        self._store_replica(group)
        self._pending_changes[group.node_id] = 0
        if num_units > 1:
            metrics.record_message(num_units - 1)
            self.lazy_update_multicasts += 1

    def _store_replica(self, group: SemanticNode) -> None:
        vector = (
            np.asarray(group.semantic_vector, dtype=np.float64)
            if group.semantic_vector is not None
            else np.zeros(1)
        )
        self.replicas[group.node_id] = IndexReplica(
            group_id=group.node_id,
            semantic_vector=vector,
            mbr=group.mbr,
            hosted_on=group.hosted_on,
        )

    def record_change(
        self,
        group: SemanticNode,
        metrics: Optional[Metrics] = None,
        *,
        num_units: int,
    ) -> bool:
        """Register one metadata change in ``group``; maybe trigger lazy update.

        Returns True when the change pushed the group over the lazy-update
        threshold, in which case the group's index unit multicasts its
        fresh replica to every other storage unit (``num_units - 1``
        messages, charged to ``metrics``) and the replica snapshot is
        refreshed.
        """
        metrics = metrics if metrics is not None else Metrics()
        gid = group.node_id
        self._pending_changes[gid] = self._pending_changes.get(gid, 0) + 1
        group_files = max(group.file_count, 1)
        if self._pending_changes[gid] / group_files > self.lazy_update_threshold:
            metrics.record_message(max(num_units - 1, 0))
            self.lazy_update_multicasts += 1
            self._store_replica(group)
            self._pending_changes[gid] = 0
            return True
        return False

    def pending_changes(self, group_id: int) -> int:
        return self._pending_changes.get(group_id, 0)

    # ------------------------------------------------------------------ routing
    def target_group_for_vector(
        self,
        semantic_vector: np.ndarray,
        metrics: Optional[Metrics] = None,
    ) -> Tuple[int, float]:
        """Group id most correlated with a (folded-in) query vector.

        Charges one in-memory index access per replica inspected; no
        messages — this is the whole point of the off-line approach.
        """
        metrics = metrics if metrics is not None else Metrics()
        query = np.asarray(semantic_vector, dtype=np.float64)
        q_norm = np.linalg.norm(query)
        best_gid = next(iter(self.replicas))
        best_sim = -np.inf
        for gid, replica in self.replicas.items():
            metrics.record_index_access()
            vec = replica.semantic_vector
            denom = q_norm * np.linalg.norm(vec)
            sim = float(np.dot(query, vec[: query.shape[0]]) / denom) if denom > 0 else 0.0
            if sim > best_sim:
                best_sim = sim
                best_gid = gid
        return best_gid, best_sim

    def groups_for_range(
        self,
        attr_indices: Sequence[int],
        lower: Sequence[float],
        upper: Sequence[float],
        metrics: Optional[Metrics] = None,
    ) -> List[int]:
        """Group ids whose replicated MBR intersects the query window."""
        metrics = metrics if metrics is not None else Metrics()
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        idx = list(attr_indices)
        hits: List[int] = []
        for gid, replica in self.replicas.items():
            metrics.record_index_access()
            if replica.mbr is None:
                continue
            node_lo = replica.mbr.lower[idx]
            node_hi = replica.mbr.upper[idx]
            if np.all(node_lo <= upper) and np.all(lower <= node_hi):
                hits.append(gid)
        return hits

    def replica_space_bytes(self, *, vector_bytes: int = 96, entry_bytes: int = 64) -> int:
        """Per-server footprint of the replica set (every server stores one copy)."""
        return len(self.replicas) * (vector_bytes + entry_bytes)
