"""Mapping index units onto storage units (§4.2) and root multi-mapping (§4.3).

Index units are logical tree nodes; physically each one must live on some
metadata server.  The paper's mapping is a bottom-up random selection with
labelling: a first-level index unit is mapped to a randomly chosen child
storage unit, each mapped server is labelled so no second index unit lands
on it, then the procedure repeats for the second level over the remaining
servers, and so on up to the root.  Because storage units far outnumber
index units, every index unit normally gets its own server.

The root is additionally *multi-mapped*: one replica per first-level subtree
so that it can be reached within every subtree, removing the single point of
failure and letting non-existence answers be produced locally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.semantic_rtree import SemanticNode, SemanticRTree

__all__ = ["map_index_units", "multi_map_root", "hosting_plan"]


def map_index_units(tree: SemanticRTree, rng: Optional[np.random.Generator] = None) -> Dict[int, int]:
    """Assign every index unit to a hosting storage unit.

    Returns a mapping ``node_id -> unit_id`` and also sets each node's
    ``hosted_on`` attribute.  Leaves host themselves.  When the tree has
    more index units than storage units (only possible for tiny, degenerate
    configurations) labelled servers are reused round-robin.
    """
    # The fallback stream is fixed: mapping must be reproducible even when
    # the caller does not thread a seeded generator through.
    rng = rng if rng is not None else np.random.default_rng(0)
    labelled: set[int] = set()
    assignment: Dict[int, int] = {}

    for leaf in tree.leaves.values():
        leaf.hosted_on = leaf.unit_id
        assignment[leaf.node_id] = leaf.unit_id

    # Index units grouped by level, lowest level first.
    index_units = sorted(tree.index_units(), key=lambda n: n.level)
    for node in index_units:
        candidates = node.descendant_unit_ids()
        unlabelled = [u for u in candidates if u not in labelled]
        if unlabelled:
            pool = unlabelled
        else:
            # Every descendant server already hosts an index unit; fall back
            # to any unlabelled server in the system, then to reuse.
            all_units = list(tree.leaves.keys())
            pool = [u for u in all_units if u not in labelled] or candidates
        choice = int(pool[rng.integers(len(pool))])
        node.hosted_on = choice
        assignment[node.node_id] = choice
        labelled.add(choice)
    return assignment


def multi_map_root(tree: SemanticRTree, rng: Optional[np.random.Generator] = None) -> List[int]:
    """Replicate the root onto one storage unit per first-level subtree.

    Returns the list of replica hosts (the primary host is kept as
    ``root.hosted_on``; the replicas are stored in ``root.replica_hosts``).
    A change to file metadata only forces a root update when it falls
    outside the root's attribute bounds, so keeping these replicas
    consistent is cheap (§4.3).
    """
    # Fixed fallback stream, same reasoning as map_index_units above.
    rng = rng if rng is not None else np.random.default_rng(0)
    root = tree.root
    replica_hosts: List[int] = []
    for group in tree.first_level_groups():
        if group is root:
            continue
        unit_ids = group.descendant_unit_ids()
        if not unit_ids:
            continue
        host = int(unit_ids[rng.integers(len(unit_ids))])
        if host != root.hosted_on and host not in replica_hosts:
            replica_hosts.append(host)
    root.replica_hosts = replica_hosts
    return replica_hosts


def hosting_plan(tree: SemanticRTree) -> Dict[int, List[int]]:
    """Per-server list of the index-unit node ids it hosts.

    Used by the space-overhead accounting of Figure 7: the index footprint
    of SmartStore is spread across servers according to this plan rather
    than concentrated on one machine.
    """
    plan: Dict[int, List[int]] = {unit_id: [] for unit_id in tree.leaves}
    for node in tree.index_units():
        if node.hosted_on is None:
            continue
        plan.setdefault(node.hosted_on, []).append(node.node_id)
    root = tree.root
    for host in root.replica_hosts:
        plan.setdefault(host, []).append(root.node_id)
    return plan
