"""The semantic R-tree (§2, §3).

The semantic R-tree is evolved from the classical R-tree: its leaf nodes are
*storage units* (metadata servers holding file metadata) and its non-leaf
nodes are *index units* holding location/mapping information.  Every node
carries three summaries of the metadata reachable through it:

* an **MBR** over the raw attribute space (range-query pruning),
* a **semantic vector** — the centroid of its children in the LSI subspace
  (top-k routing and correlation-based insertion), and
* a **Bloom filter** — the union of its children's filters (filename point
  queries, Figure 4).

The tree is built bottom-up by the iterative semantic grouping of
:mod:`repro.core.grouping` and is deliberately decoupled from the cluster
simulator: traversal methods accept a :class:`~repro.cluster.metrics.Metrics`
object so that callers decide how probes are charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.bloom import BloomFilter
from repro.cluster.metrics import Metrics
from repro.core.grouping import build_group_levels
from repro.rtree.mbr import MBR

__all__ = ["StorageUnitDescriptor", "SemanticNode", "SemanticRTree"]


@dataclass
class StorageUnitDescriptor:
    """Static description of one storage unit used to build the tree.

    Attributes
    ----------
    unit_id:
        Identifier of the storage unit (matches the cluster simulator).
    mbr:
        MBR of the unit's files in raw attribute space (None when empty).
    centroid:
        Centroid of the unit's files in raw attribute space.
    semantic_vector:
        The unit's coordinates in the LSI semantic subspace.
    filenames:
        Filenames stored on the unit (feeds the leaf Bloom filter).
    file_count:
        Number of files on the unit.
    """

    unit_id: int
    mbr: Optional[MBR]
    centroid: Optional[np.ndarray]
    semantic_vector: np.ndarray
    filenames: List[str] = field(default_factory=list)
    file_count: int = 0


class SemanticNode:
    """One node of the semantic R-tree (storage unit or index unit)."""

    __slots__ = (
        "node_id",
        "level",
        "children",
        "parent",
        "mbr",
        "semantic_vector",
        "bloom",
        "unit_id",
        "hosted_on",
        "replica_hosts",
        "file_count",
    )

    def __init__(
        self,
        node_id: int,
        level: int,
        *,
        mbr: Optional[MBR] = None,
        semantic_vector: Optional[np.ndarray] = None,
        bloom: Optional[BloomFilter] = None,
        unit_id: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.level = level
        self.children: List["SemanticNode"] = []
        self.parent: Optional["SemanticNode"] = None
        self.mbr = mbr
        self.semantic_vector = semantic_vector
        self.bloom = bloom
        self.unit_id = unit_id          # set only for storage units (leaves)
        self.hosted_on: Optional[int] = unit_id  # server hosting this node
        self.replica_hosts: List[int] = []       # extra hosts (root multi-mapping)
        self.file_count = 0

    # ------------------------------------------------------------------ structure
    @property
    def is_leaf(self) -> bool:
        """True for storage units (level 0)."""
        return self.level == 0

    def add_child(self, child: "SemanticNode") -> None:
        self.children.append(child)
        child.parent = self

    def descendant_leaves(self) -> List["SemanticNode"]:
        """Every storage unit reachable through this node (self included if leaf)."""
        if self.is_leaf:
            return [self]
        out: List["SemanticNode"] = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        return out

    def descendant_unit_ids(self) -> List[int]:
        return [leaf.unit_id for leaf in self.descendant_leaves()]

    def siblings(self) -> List["SemanticNode"]:
        if self.parent is None:
            return []
        return [c for c in self.parent.children if c is not self]

    # ------------------------------------------------------------------ summaries
    def refresh_from_children(self) -> None:
        """Recompute MBR, semantic vector, Bloom filter and file count bottom-up."""
        if self.is_leaf or not self.children:
            return
        child_mbrs = [c.mbr for c in self.children if c.mbr is not None]
        self.mbr = MBR.union_of(child_mbrs) if child_mbrs else None
        vectors = [c.semantic_vector for c in self.children if c.semantic_vector is not None]
        self.semantic_vector = np.mean(np.vstack(vectors), axis=0) if vectors else None
        blooms = [c.bloom for c in self.children if c.bloom is not None]
        self.bloom = BloomFilter.union_of(blooms) if blooms else None
        self.file_count = sum(c.file_count for c in self.children)

    def intersects_subrange(
        self, attr_indices: Sequence[int], lower: np.ndarray, upper: np.ndarray
    ) -> bool:
        """MBR overlap test restricted to the constrained attributes.

        Queries constrain an arbitrary subset of the ``D`` dimensions; the
        unconstrained dimensions always match.
        """
        if self.mbr is None:
            return False
        idx = list(attr_indices)
        node_lo = self.mbr.lower[idx]
        node_hi = self.mbr.upper[idx]
        return bool(np.all(node_lo <= upper) and np.all(lower <= node_hi))

    def min_distance_subrange(
        self,
        attr_indices: Sequence[int],
        point: np.ndarray,
        norm_lower: np.ndarray,
        norm_upper: np.ndarray,
    ) -> float:
        """MINDIST from a (raw-space) query point restricted to a subset of
        attributes, computed in the deployment's normalised space.

        Normalisation bounds are per constrained attribute; because min-max
        normalisation is monotone per dimension, normalising the MBR's
        corner coordinates yields the MBR of the normalised points.

        Everything is clipped to ``[0, 1]`` exactly like
        ``normalize_index_values`` clips the coordinates actual distances
        are computed from — MINDIST must be a lower bound in the *same*
        geometry as the distances it prunes against, or an out-of-bounds
        query point would overestimate MINDIST and prune groups (or, at the
        router level, whole shards) that hold true top-k members.
        """
        if self.mbr is None:
            return float("inf")
        idx = list(attr_indices)
        span = np.where(norm_upper - norm_lower > 0, norm_upper - norm_lower, 1.0)
        node_lo = np.clip((self.mbr.lower[idx] - norm_lower) / span, 0.0, 1.0)
        node_hi = np.clip((self.mbr.upper[idx] - norm_lower) / span, 0.0, 1.0)
        q = np.clip((np.asarray(point, dtype=np.float64) - norm_lower) / span, 0.0, 1.0)
        below = np.maximum(node_lo - q, 0.0)
        above = np.maximum(q - node_hi, 0.0)
        delta = np.maximum(below, above)
        return float(np.sqrt(np.sum(delta**2)))

    def __repr__(self) -> str:
        kind = "storage" if self.is_leaf else "index"
        return (
            f"SemanticNode(id={self.node_id}, level={self.level}, kind={kind}, "
            f"children={len(self.children)}, files={self.file_count})"
        )


class SemanticRTree:
    """The semantic R-tree over a set of storage units.

    Built with :meth:`build`; traversal methods take an explicit
    :class:`~repro.cluster.metrics.Metrics` object and record index-node
    accesses on it (memory-resident — SmartStore's index fits in memory).
    """

    def __init__(
        self,
        root: SemanticNode,
        nodes: List[SemanticNode],
        leaves: Dict[int, SemanticNode],
        thresholds: Sequence[float],
        max_fanout: int,
    ) -> None:
        self.root = root
        self.nodes = nodes
        self.leaves = leaves
        self.thresholds = list(thresholds)
        self.max_fanout = max_fanout

    # ------------------------------------------------------------------ construction
    @classmethod
    def build(
        cls,
        units: Sequence[StorageUnitDescriptor],
        *,
        thresholds: Sequence[float],
        max_fanout: int = 8,
        bloom_bits: int = 1024,
        bloom_hashes: int = 7,
    ) -> "SemanticRTree":
        """Build the tree bottom-up from storage-unit descriptors.

        The per-level admission thresholds ``epsilon_i`` drive the semantic
        grouping; ``max_fanout`` is the R-tree bound ``M``.
        """
        if not units:
            raise ValueError("cannot build a semantic R-tree over zero storage units")

        nodes: List[SemanticNode] = []
        next_id = 0

        def allocate(level: int, **kwargs) -> SemanticNode:
            nonlocal next_id
            node = SemanticNode(next_id, level, **kwargs)
            next_id += 1
            nodes.append(node)
            return node

        # Leaves: one per storage unit.
        leaf_nodes: List[SemanticNode] = []
        leaves: Dict[int, SemanticNode] = {}
        for unit in units:
            bloom = BloomFilter(bloom_bits, bloom_hashes)
            bloom.add_many(unit.filenames)
            leaf = allocate(
                0,
                mbr=unit.mbr,
                semantic_vector=np.asarray(unit.semantic_vector, dtype=np.float64),
                bloom=bloom,
                unit_id=unit.unit_id,
            )
            leaf.file_count = unit.file_count
            leaf_nodes.append(leaf)
            leaves[unit.unit_id] = leaf

        if len(leaf_nodes) == 1:
            return cls(leaf_nodes[0], nodes, leaves, thresholds, max_fanout)

        vectors = np.vstack([u.semantic_vector for u in units])
        levels = build_group_levels(vectors, thresholds=thresholds, max_fanout=max_fanout)

        # levels[0] are singleton groups over the leaves; levels[i>=1] group the
        # previous level's nodes.  Materialise index units level by level.
        previous: List[SemanticNode] = leaf_nodes
        for level_index in range(1, len(levels)):
            groups = levels[level_index]
            current: List[SemanticNode] = []
            for group in groups:
                only_child = previous[group[0]] if len(group) == 1 else None
                if (
                    only_child is not None
                    and level_index < len(levels) - 1
                    and not only_child.is_leaf
                ):
                    # A lone *index-unit* child needs no extra parent; promote
                    # it.  Lone storage units always get a level-1 parent so
                    # that the first-level groups partition the leaves (query
                    # routing and version chains rely on that).
                    current.append(only_child)
                    continue
                parent = allocate(level_index)
                for child_idx in group:
                    parent.add_child(previous[child_idx])
                parent.refresh_from_children()
                current.append(parent)
            previous = current

        root = previous[0]
        # Normalise levels: a promoted node may sit at a lower level than its
        # siblings; levels are informational, structure is what matters.
        return cls(root, nodes, leaves, thresholds, max_fanout)

    # ------------------------------------------------------------------ node allocation
    def allocate_node(self, level: int, **kwargs) -> SemanticNode:
        """Create a new node registered with this tree (used by reconfiguration)."""
        next_id = max((n.node_id for n in self.nodes), default=-1) + 1
        node = SemanticNode(next_id, level, **kwargs)
        self.nodes.append(node)
        if node.is_leaf and node.unit_id is not None:
            self.leaves[node.unit_id] = node
        return node

    def forget_node(self, node: SemanticNode) -> None:
        """Remove a node from the tree's registries (it must already be unlinked)."""
        self.nodes = [n for n in self.nodes if n.node_id != node.node_id]
        if node.is_leaf and node.unit_id is not None:
            self.leaves.pop(node.unit_id, None)

    # ------------------------------------------------------------------ inventory
    def __iter__(self) -> Iterator[SemanticNode]:
        return iter(self.nodes)

    @property
    def num_storage_units(self) -> int:
        return len(self.leaves)

    def index_units(self) -> List[SemanticNode]:
        """Every non-leaf node of the tree."""
        return [n for n in self.nodes if not n.is_leaf and n.children]

    @property
    def num_index_units(self) -> int:
        return len(self.index_units())

    def first_level_groups(self) -> List[SemanticNode]:
        """The first-level index units (the "groups" of the paper).

        These are the parents of storage units; their semantic vectors are
        what the off-line pre-processing replicates to every server.  For a
        degenerate single-unit tree the root itself is returned.
        """
        groups = {leaf.parent.node_id: leaf.parent for leaf in self.leaves.values() if leaf.parent}
        if not groups:
            return [self.root]
        return sorted(groups.values(), key=lambda n: n.node_id)

    def group_of_unit(self, unit_id: int) -> SemanticNode:
        """The first-level index unit covering a given storage unit."""
        leaf = self.leaves[unit_id]
        return leaf.parent if leaf.parent is not None else leaf

    @property
    def height(self) -> int:
        """Number of levels from a leaf to the root (1 for a single node)."""
        depth = 1
        node = self.root
        while node.children:
            node = node.children[0]
            depth += 1
        return depth

    # ------------------------------------------------------------------ traversal
    def leaves_for_range(
        self,
        attr_indices: Sequence[int],
        lower: Sequence[float],
        upper: Sequence[float],
        metrics: Optional[Metrics] = None,
    ) -> List[SemanticNode]:
        """Storage units whose MBR intersects the query window.

        Each node inspected is charged as one in-memory index access.
        """
        metrics = metrics if metrics is not None else Metrics()
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        hits: List[SemanticNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            metrics.record_index_access()
            if not node.intersects_subrange(attr_indices, lower, upper):
                continue
            if node.is_leaf:
                hits.append(node)
            else:
                stack.extend(node.children)
        return hits

    def groups_for_range(
        self,
        attr_indices: Sequence[int],
        lower: Sequence[float],
        upper: Sequence[float],
        metrics: Optional[Metrics] = None,
    ) -> List[SemanticNode]:
        """First-level index units whose MBR intersects the query window."""
        metrics = metrics if metrics is not None else Metrics()
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        hits = []
        for group in self.first_level_groups():
            metrics.record_index_access()
            if group.intersects_subrange(attr_indices, lower, upper):
                hits.append(group)
        return hits

    def most_correlated_group(
        self,
        semantic_vector: np.ndarray,
        metrics: Optional[Metrics] = None,
    ) -> Tuple[SemanticNode, float]:
        """The first-level index unit most semantically correlated with a vector."""
        metrics = metrics if metrics is not None else Metrics()
        query = np.asarray(semantic_vector, dtype=np.float64)
        q_norm = np.linalg.norm(query)
        best: Optional[SemanticNode] = None
        best_sim = -np.inf
        for group in self.first_level_groups():
            metrics.record_index_access()
            vec = group.semantic_vector
            if vec is None:
                continue
            denom = q_norm * np.linalg.norm(vec)
            sim = float(np.dot(query, vec) / denom) if denom > 0 else 0.0
            if sim > best_sim:
                best_sim = sim
                best = group
        if best is None:
            best = self.first_level_groups()[0]
            best_sim = 0.0
        return best, best_sim

    def route_filename(
        self,
        filename: str,
        metrics: Optional[Metrics] = None,
    ) -> List[SemanticNode]:
        """Storage units whose Bloom-filter path reports ``filename``.

        Descends from the root along children whose filters hit; every
        filter consulted is charged as a Bloom probe.
        """
        metrics = metrics if metrics is not None else Metrics()
        hits: List[SemanticNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            metrics.record_bloom_probe()
            if node.bloom is not None and not node.bloom.contains(filename):
                continue
            if node.is_leaf:
                hits.append(node)
            else:
                stack.extend(node.children)
        return hits

    # ------------------------------------------------------------------ maintenance
    def refresh_leaf(
        self,
        unit_id: int,
        *,
        mbr: Optional[MBR],
        file_count: int,
        new_filenames: Sequence[str] = (),
    ) -> None:
        """Update a leaf's summaries after local changes and propagate upward."""
        leaf = self.leaves[unit_id]
        leaf.mbr = mbr
        leaf.file_count = file_count
        if new_filenames and leaf.bloom is not None:
            leaf.bloom.add_many(new_filenames)
        node = leaf.parent
        while node is not None:
            node.refresh_from_children()
            node = node.parent

    # ------------------------------------------------------------------ space accounting
    def index_size_bytes(self, *, vector_bytes: int = 96, entry_bytes: int = 64) -> int:
        """Approximate storage footprint of the tree's index state.

        Every node stores an MBR/centroid entry plus a semantic vector and
        (for index units) the union Bloom filter.
        """
        total = 0
        for node in self.nodes:
            total += entry_bytes + vector_bytes
            if node.bloom is not None and not node.is_leaf:
                total += node.bloom.size_bytes()
        return total
