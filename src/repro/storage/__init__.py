"""Tiered persistent storage: immutable mmap-backed segments beneath the
mutable in-memory recent layer.

The compactor's per-group drains freeze applied state into checksummed,
immutable, struct-of-arrays segment files named by an atomically-swapped
manifest; queries fault evicted groups in lazily through a bounded LRU
(answering from mmap without full deserialization in the meantime); and
cold start becomes "load manifest + mmap segments + replay WAL tail" —
O(tail), not O(corpus)."""

from repro.storage.config import (
    SNAPSHOT_POLICIES,
    StorageConfig,
    storage_config_from_dict,
    storage_config_to_dict,
)
from repro.storage.lazy import LazyFileMap, SegmentBackedServer
from repro.storage.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    manifest_from_store,
    restore_store,
)
from repro.storage.segment import (
    SEGMENT_FORMAT,
    SEGMENT_VERSION,
    Segment,
    SegmentCorruptError,
    SegmentInfo,
    name_hash64,
    write_segment,
)
from repro.storage.store import (
    RecoveryReport,
    SegmentStore,
    has_snapshot,
    open_storage,
    ship_snapshot,
)

__all__ = [
    "SNAPSHOT_POLICIES",
    "StorageConfig",
    "storage_config_from_dict",
    "storage_config_to_dict",
    "LazyFileMap",
    "SegmentBackedServer",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "manifest_from_store",
    "restore_store",
    "SEGMENT_FORMAT",
    "SEGMENT_VERSION",
    "Segment",
    "SegmentCorruptError",
    "SegmentInfo",
    "name_hash64",
    "write_segment",
    "RecoveryReport",
    "SegmentStore",
    "has_snapshot",
    "open_storage",
    "ship_snapshot",
]
