"""Checksummed, immutable, mmap-able segment files (struct-of-arrays).

A *segment* is the on-disk unit of the tiered store: one first-level
semantic group's applied records, frozen at publish time.  The layout is
struct-of-arrays so that an evicted group can answer scans straight from
the mapping without deserialising a single JSON record:

* two JSON header lines — the segment descriptor and a CRC line covering
  it (checksum-before-trust applies to the header too);
* ``file_ids``  — ``int64[N]``, row-aligned record identifiers;
* ``name_hash`` — ``int64[N]``, a 63-bit MD5 hash of each row's filename
  (point-query candidate pruning without record decode);
* ``matrix``    — ``float64[N, D]``, the raw attribute rows in schema
  order (sizes, timestamps, access counts — everything scans filter on;
  the index-space ``log1p`` transform is recomputed on fault-in, it is
  not baked into the file);
* ``rec_offsets`` — ``int64[N + 1]``, byte offsets into the record blob;
* ``rec_blob``  — concatenated per-record JSON (the exact
  :func:`~repro.persistence.jsonl.file_to_dict` payload), decoded only
  for rows a query actually returns.

Rows are grouped by storage unit: the header's ``units`` table maps each
unit id to its contiguous ``[start, stop)`` row range, in the exact order
the live server held its files — so a later materialisation reproduces
the in-memory file list byte for byte.

Durability contract: a segment is written to a temp file, fsynced and
renamed into place, and never modified afterwards (a new publish writes a
new generation under a new name).  ``data_crc`` covers the entire binary
section and the header line carries its own CRC, so *any* single-byte
corruption or truncation is detected at open time and surfaces as
:class:`SegmentCorruptError` — never as a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.metadata.file_metadata import FileMetadata
from repro.persistence.jsonl import file_from_dict, file_to_dict

__all__ = [
    "SEGMENT_FORMAT",
    "SEGMENT_VERSION",
    "SegmentCorruptError",
    "SegmentInfo",
    "Segment",
    "write_segment",
    "name_hash64",
]

PathLike = Union[str, Path]

SEGMENT_FORMAT = "repro.segment"
SEGMENT_VERSION = 1

_I8 = np.dtype("<i8")
_F8 = np.dtype("<f8")


class SegmentCorruptError(ValueError):
    """A segment file failed validation (checksum mismatch, truncation,
    unparseable header).  The caller quarantines the file and falls back
    to WAL replay for the affected group — corruption must never produce
    a wrong answer or a hang."""


def name_hash64(filename: str) -> int:
    """Stable 63-bit hash of a filename (point-query row pruning).

    Uses the *upper* eight MD5 digest bytes so it is independent of
    :func:`~repro.metadata.file_metadata.make_file_id`, which uses the
    lower eight: a pathological id collision cannot also be a name-hash
    collision.
    """
    digest = hashlib.md5(filename.encode("utf-8")).digest()
    return int.from_bytes(digest[8:16], "little") & 0x7FFFFFFFFFFFFFFF


@dataclass(frozen=True)
class SegmentInfo:
    """What the manifest records about one written segment."""

    name: str
    group_id: int
    count: int
    size_bytes: int
    data_crc: int
    units: Dict[int, Tuple[int, int]]


def write_segment(
    path: PathLike,
    group_id: int,
    units: Sequence[Tuple[int, Sequence[FileMetadata]]],
    schema: Any,
) -> SegmentInfo:
    """Write one group's records as an immutable segment file.

    ``units`` is an ordered list of ``(unit_id, files)`` pairs; rows are
    concatenated in that order, preserving each unit's in-memory file
    order (empty units get an empty row range — every unit of the group
    appears in the header).  The file lands atomically: temp + fsync +
    rename, so a crash mid-write can never leave a half-segment under
    the final name.
    """
    path = Path(path)
    all_files: List[FileMetadata] = []
    unit_ranges: Dict[int, Tuple[int, int]] = {}
    cursor = 0
    for unit_id, files in units:
        files = list(files)
        unit_ranges[int(unit_id)] = (cursor, cursor + len(files))
        all_files.extend(files)
        cursor += len(files)

    n = len(all_files)
    dim = int(schema.dimension)
    ids = np.asarray([f.file_id for f in all_files], dtype=_I8)
    names = np.asarray([name_hash64(f.filename) for f in all_files], dtype=_I8)
    if n:
        matrix = np.vstack([f.vector(schema) for f in all_files]).astype(_F8)
    else:
        matrix = np.empty((0, dim), dtype=_F8)
    blobs = [
        json.dumps(file_to_dict(f), sort_keys=True).encode("utf-8")
        for f in all_files
    ]
    offsets = np.zeros(n + 1, dtype=_I8)
    if n:
        offsets[1:] = np.cumsum([len(b) for b in blobs])
    blob = b"".join(blobs)

    data = (
        ids.tobytes()
        + names.tobytes()
        + matrix.tobytes()
        + offsets.tobytes()
        + blob
    )
    data_crc = zlib.crc32(data) & 0xFFFFFFFF
    header: Dict[str, object] = {
        "format": SEGMENT_FORMAT,
        "version": SEGMENT_VERSION,
        "group_id": int(group_id),
        "count": n,
        "dim": dim,
        "units": {str(uid): [a, b] for uid, (a, b) in unit_ranges.items()},
        "data_len": len(data),
        "blob_len": len(blob),
        "data_crc": data_crc,
    }
    line1 = json.dumps(header, sort_keys=True).encode("utf-8")
    line2 = json.dumps({"header_crc": zlib.crc32(line1) & 0xFFFFFFFF}).encode("utf-8")
    payload = line1 + b"\n" + line2 + b"\n" + data

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return SegmentInfo(
        name=path.name,
        group_id=int(group_id),
        count=n,
        size_bytes=len(payload),
        data_crc=data_crc,
        units=unit_ranges,
    )


class Segment:
    """A validated, memory-mapped, read-only view of one segment file.

    Array accessors return zero-copy views backed by the mapping;
    :meth:`record` decodes exactly one row's JSON payload.  Use
    :meth:`open` — the constructor trusts its arguments.
    """

    def __init__(
        self,
        path: Path,
        header: Dict[str, object],
        data_start: int,
        fh: Any,
        mm: mmap.mmap,
    ) -> None:
        self.path = path
        self.header = header
        self._fh = fh
        self._mm = mm
        self.group_id = int(header["group_id"])  # type: ignore[arg-type]
        self.count = int(header["count"])  # type: ignore[arg-type]
        self.dim = int(header["dim"])  # type: ignore[arg-type]
        self.data_crc = int(header["data_crc"])  # type: ignore[arg-type]
        self.units: Dict[int, Tuple[int, int]] = {
            int(uid): (int(rng[0]), int(rng[1]))
            for uid, rng in dict(header["units"]).items()  # type: ignore[arg-type]
        }
        n = self.count
        self._o_ids = data_start
        self._o_names = self._o_ids + 8 * n
        self._o_matrix = self._o_names + 8 * n
        self._o_offsets = self._o_matrix + 8 * n * self.dim
        self._o_blob = self._o_offsets + 8 * (n + 1)
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    @classmethod
    def open(
        cls,
        path: PathLike,
        *,
        expected_crc: Optional[int] = None,
        verify: bool = True,
    ) -> "Segment":
        """Map a segment file, validating checksum-before-trust.

        ``verify=True`` (the recovery default) runs the full data CRC;
        ``expected_crc`` cross-checks the manifest's record of the
        segment against the file actually found on disk.  Every failure
        mode — missing file, short file, corrupt header, corrupt data —
        raises :class:`SegmentCorruptError`.
        """
        path = Path(path)
        try:
            fh = path.open("rb")
        except OSError as exc:
            raise SegmentCorruptError(f"{path}: cannot open segment ({exc})") from exc
        try:
            line1 = fh.readline()
            line2 = fh.readline()
            data_start = fh.tell()
            if not line1.endswith(b"\n") or not line2.endswith(b"\n"):
                raise SegmentCorruptError(f"{path}: truncated segment header")
            try:
                header = json.loads(line1)
                crc_line = json.loads(line2)
            except ValueError as exc:
                raise SegmentCorruptError(
                    f"{path}: unparseable segment header ({exc})"
                ) from exc
            if int(crc_line.get("header_crc", -1)) != (
                zlib.crc32(line1[:-1]) & 0xFFFFFFFF
            ):
                raise SegmentCorruptError(f"{path}: segment header CRC mismatch")
            if header.get("format") != SEGMENT_FORMAT:
                raise SegmentCorruptError(
                    f"{path}: not a segment (format={header.get('format')!r})"
                )
            data_len = int(header["data_len"])
            size = path.stat().st_size
            if size != data_start + data_len:
                raise SegmentCorruptError(
                    f"{path}: expected {data_start + data_len} bytes, found {size}"
                )
            if expected_crc is not None and int(header["data_crc"]) != int(expected_crc):
                raise SegmentCorruptError(
                    f"{path}: manifest expects data_crc={expected_crc}, "
                    f"header claims {header['data_crc']}"
                )
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            if verify:
                actual = zlib.crc32(mm[data_start : data_start + data_len]) & 0xFFFFFFFF
                if actual != int(header["data_crc"]):
                    mm.close()
                    raise SegmentCorruptError(
                        f"{path}: data CRC mismatch "
                        f"(header={header['data_crc']}, actual={actual})"
                    )
        except SegmentCorruptError:
            fh.close()
            raise
        except Exception as exc:
            fh.close()
            raise SegmentCorruptError(f"{path}: invalid segment ({exc})") from exc
        return cls(path, header, data_start, fh, mm)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._mm.close()
        self._fh.close()

    # ------------------------------------------------------------------ array views
    def file_ids(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Row-aligned file ids, ``[start, stop)``, zero-copy from the map."""
        stop = self.count if stop is None else stop
        return np.frombuffer(
            self._mm, dtype=_I8, count=stop - start, offset=self._o_ids + 8 * start
        )

    def name_hashes(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Row-aligned filename hashes, zero-copy from the map."""
        stop = self.count if stop is None else stop
        return np.frombuffer(
            self._mm, dtype=_I8, count=stop - start, offset=self._o_names + 8 * start
        )

    def matrix_rows(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Raw attribute rows ``[start, stop)`` as an ``(n, D)`` view."""
        stop = self.count if stop is None else stop
        flat = np.frombuffer(
            self._mm,
            dtype=_F8,
            count=(stop - start) * self.dim,
            offset=self._o_matrix + 8 * self.dim * start,
        )
        return flat.reshape(stop - start, self.dim)

    # ------------------------------------------------------------------ record decode
    def record(self, row: int) -> FileMetadata:
        """Decode exactly one row's metadata record from the blob."""
        offsets = np.frombuffer(
            self._mm, dtype=_I8, count=2, offset=self._o_offsets + 8 * row
        )
        lo = self._o_blob + int(offsets[0])
        hi = self._o_blob + int(offsets[1])
        return file_from_dict(json.loads(self._mm[lo:hi].decode("utf-8")))

    def size_bytes(self) -> int:
        return self._mm.size()

    def __repr__(self) -> str:
        return (
            f"Segment(name={self.path.name!r}, group={self.group_id}, "
            f"rows={self.count}, units={len(self.units)})"
        )
