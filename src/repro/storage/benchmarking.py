"""Tiered-storage benchmark: O(tail) recovery vs full rebuild, plus the
evicted-vs-resident equivalence drill.

The experiment mirrors the operational story the segment store exists
for: a durable deployment checkpoints (publishes an immutable segment
snapshot), keeps taking writes (the WAL tail), and then cold-starts.
Legacy recovery rebuilds the whole index from the full population —
O(corpus) of SVD/k-means work.  Snapshot recovery mmaps the published
segments and replays only the tail — O(tail).  The bench times both
paths over the *same* final state and gates:

``recovery identical``
    Every probe query against the snapshot-recovered store is
    fingerprint-identical to the pre-crash live store.
``recovery is O(tail)``
    ``RecoveryReport.wal_records_replayed`` equals the number of
    post-checkpoint mutations — the recovery touched the tail, not the
    corpus.
``recovery speedup >= Nx``
    Snapshot + tail restart is at least ``min_recovery_speedup`` times
    faster than the full ``SmartStore.build`` rebuild (wall clock,
    best-of-``repeats`` for both sides).
``evicted == resident``
    A second recovery with ``resident_segments=1`` — every query faults
    its group in and evicts another — answers every probe identically
    to the all-resident recovery, and the LRU actually evicted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.smartstore import SmartStore, SmartStoreConfig
from repro.ingest.pipeline import IngestPipeline, recover_from_storage
from repro.ingest.wal import WriteAheadLog
from repro.metadata.attributes import DEFAULT_SCHEMA
from repro.metadata.file_metadata import FileMetadata
from repro.storage.store import SegmentStore
from repro.workloads.generator import QueryWorkloadGenerator

__all__ = ["StorageBenchReport", "run_storage_bench"]

PathLike = Union[str, Path]


@dataclass
class StorageBenchReport:
    """Wall-clock numbers and exit-code-asserted gates."""

    files: int
    tail_mutations: int
    segments_published: int
    recovery_seconds: float
    rebuild_seconds: float
    wal_records_replayed: int
    faults: int
    evictions: int
    gates: Dict[str, bool] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.recovery_seconds <= 0:
            return float("inf")
        return self.rebuild_seconds / self.recovery_seconds

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def metrics(self) -> Dict[str, Any]:
        return {
            "recovery_seconds": self.recovery_seconds,
            "rebuild_seconds": self.rebuild_seconds,
            "recovery_speedup": self.speedup,
            "wal_records_replayed": self.wal_records_replayed,
            "segments_published": self.segments_published,
            "lru_faults": self.faults,
            "lru_evictions": self.evictions,
        }


def _probe_queries(
    files: Sequence[FileMetadata], per_type: int, seed: int
) -> List[Any]:
    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed)
    return (
        generator.point_queries(per_type, existing_fraction=0.8)
        + generator.range_queries(per_type)
        + generator.topk_queries(per_type, k=8)
    )


def _fingerprints(store: SmartStore, probes: Sequence[Any]) -> List[str]:
    # Imported here: repro.service imports repro.ingest at module load, so
    # importing the service package at module scope would cycle.
    from repro.service.cache import result_fingerprint

    return [result_fingerprint(store.execute(q)) for q in probes]


def run_storage_bench(
    files: Sequence[FileMetadata],
    config: SmartStoreConfig,
    *,
    workdir: PathLike,
    tail_mutations: int = 48,
    probes_per_type: int = 6,
    seed: int = 0,
    min_recovery_speedup: float = 5.0,
    repeats: int = 3,
) -> StorageBenchReport:
    """Publish a snapshot, take a WAL tail, then race the two cold starts.

    ``workdir`` receives the WAL (``storage-bench.wal``) and the segment
    root (``snap/``).  Both recovery paths are timed best-of-``repeats``
    so scheduler noise cannot flip the ratio gate.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    wal_path = workdir / "storage-bench.wal"
    snap_root = workdir / "snap"

    # ---- live deployment: build, publish, then keep writing ------------
    store = SmartStore.build(files, config)
    pipeline = IngestPipeline(store, WriteAheadLog(wal_path, fsync_every=1))
    pipeline.attach_storage(SegmentStore(snap_root, resident_segments=1_000_000))
    manifest = pipeline.checkpoint()
    segments_published = len(manifest.get("segments", []))

    generator = QueryWorkloadGenerator(files, DEFAULT_SCHEMA, seed=seed + 7)
    n_del = tail_mutations // 4
    n_mod = tail_mutations // 4
    n_ins = tail_mutations - n_del - n_mod
    tail = generator.mutation_stream(n_ins, n_del, n_mod)
    for kind, f in tail:
        getattr(pipeline, kind)(f)

    probes = _probe_queries(pipeline.materialized_files(), probes_per_type, seed + 1)
    live = _fingerprints(store, probes)
    final_files = sorted(
        pipeline.materialized_files(), key=lambda f: f.file_id
    )
    pipeline.close()

    # ---- path A: snapshot + tail (O(tail)) -----------------------------
    recovery_seconds = float("inf")
    recovered_fp: Optional[List[str]] = None
    replayed = 0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        recovered, report = recover_from_storage(
            snap_root, wal_path=wal_path, resident_segments=1_000_000
        )
        recovery_seconds = min(recovery_seconds, time.perf_counter() - started)
        replayed = report.wal_records_replayed
        if recovered_fp is None:
            recovered_fp = _fingerprints(recovered.store, probes)
        recovered.close()

    # ---- path B: full rebuild (O(corpus)) ------------------------------
    rebuild_seconds = float("inf")
    rebuilt: Optional[SmartStore] = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        rebuilt = SmartStore.build(final_files, config)
        rebuild_seconds = min(rebuild_seconds, time.perf_counter() - started)
    del rebuilt

    # ---- path C: recovery under memory pressure ------------------------
    evicted, _ = recover_from_storage(
        snap_root, wal_path=wal_path, resident_segments=1
    )
    evicted_fp = _fingerprints(evicted.store, probes)
    assert evicted.storage is not None
    stats = evicted.storage.stats()
    faults = int(stats["faults"])
    evictions = int(stats["evictions"])
    evicted.close()

    speedup = (
        rebuild_seconds / recovery_seconds if recovery_seconds > 0 else float("inf")
    )
    gates = {
        "recovery identical": recovered_fp == live,
        "recovery is O(tail)": replayed == len(tail),
        f"recovery speedup >= {min_recovery_speedup:g}x": (
            speedup >= min_recovery_speedup
        ),
        "evicted == resident": evicted_fp == live and evictions > 0,
    }
    return StorageBenchReport(
        files=len(files),
        tail_mutations=len(tail),
        segments_published=segments_published,
        recovery_seconds=recovery_seconds,
        rebuild_seconds=rebuild_seconds,
        wal_records_replayed=replayed,
        faults=faults,
        evictions=evictions,
        gates=gates,
    )
