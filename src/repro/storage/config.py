"""Deployment-spec configuration for the tiered segment store."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = [
    "SNAPSHOT_POLICIES",
    "StorageConfig",
    "storage_config_to_dict",
    "storage_config_from_dict",
]

# "checkpoint": every checkpoint / resync publishes a fresh snapshot.
# "manual":     snapshots are only published by an explicit
#               publish_snapshot call; resync ships whatever the last
#               published manifest contains (or falls back to rebuild).
SNAPSHOT_POLICIES = ("checkpoint", "manual")


@dataclass(frozen=True)
class StorageConfig:
    """The ``storage`` block of a :class:`~repro.api.spec.DeploymentSpec`.

    ``root`` is the snapshot directory (per-shard / per-replica
    subdirectories are derived beneath it), ``resident_segments`` bounds
    how many segment groups the fault-in LRU keeps resident at once, and
    ``snapshot_policy`` decides when snapshots are published.
    """

    root: Optional[str] = None
    resident_segments: int = 8
    snapshot_policy: str = "checkpoint"

    def __post_init__(self) -> None:
        if self.resident_segments < 1:
            raise ValueError("storage.resident_segments must be >= 1")
        if self.snapshot_policy not in SNAPSHOT_POLICIES:
            raise ValueError(
                f"storage.snapshot_policy must be one of {SNAPSHOT_POLICIES}, "
                f"got {self.snapshot_policy!r}"
            )


def storage_config_to_dict(config: StorageConfig) -> Dict[str, object]:
    return {
        "root": config.root,
        "resident_segments": config.resident_segments,
        "snapshot_policy": config.snapshot_policy,
    }


def storage_config_from_dict(payload: Mapping[str, object]) -> StorageConfig:
    known = ("root", "resident_segments", "snapshot_policy")
    kwargs = {key: payload[key] for key in known if key in payload}
    return StorageConfig(**kwargs)  # type: ignore[arg-type]
