"""The tiered segment store: publish, fault/evict LRU, and recovery.

:class:`SegmentStore` owns one snapshot root::

    <root>/MANIFEST.json      the atomically-swapped snapshot descriptor
    <root>/segments/          immutable segment files (per group, per
                              generation — never rewritten in place)
    <root>/quarantine/        segments that failed checksum validation

Publish ordering (the invariants in docs/INVARIANTS.md §12):

1. every new/changed group's segment is written tmp + fsync + rename;
2. the manifest naming the full live set is written tmp + fsync + rename
   (so the manifest only ever points at fsynced segments, and readers
   see either the old snapshot or the new one — never a mix);
3. only *after* the manifest rename are unreferenced segment files
   purged, and the WAL tail truncated by the caller.

Clean groups (no mutations since the previous publish, same unit set)
re-use their existing segment files, so an incremental checkpoint costs
O(changed groups), not O(corpus) — and never materializes a cold group.

At query time the store is the fault/evict authority: cold
:class:`~repro.storage.lazy.SegmentBackedServer` units ask it for
residency, and an LRU bounded by ``resident_segments`` evicts the
least-recently-scanned group's arrays (``storage.fault_in`` /
``storage.evict`` spans + ``storage_segment_*`` counters make the churn
observable).  Materialized (mutated) units are pinned out of the LRU
until the next publish demotes them back to cold.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.obs import get_registry, get_tracer
from repro.storage.lazy import LazyFileMap, SegmentBackedServer
from repro.storage.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    manifest_from_store,
    restore_store,
)
from repro.storage.segment import Segment, SegmentCorruptError, write_segment

__all__ = [
    "RecoveryReport",
    "SegmentStore",
    "open_storage",
    "has_snapshot",
    "ship_snapshot",
]

PathLike = Union[str, Path]


@dataclass
class RecoveryReport:
    """What a cold start actually did — the O(tail) proof artifact."""

    root: str
    wal_seq: int
    segments_loaded: int
    files_indexed: int
    segments_quarantined: List[str] = field(default_factory=list)
    groups_quarantined: List[int] = field(default_factory=list)
    wal_records_replayed: int = 0


class SegmentStore:
    """Owner of one snapshot root: publish, residency LRU, quarantine."""

    def __init__(self, root: PathLike, *, resident_segments: int = 8) -> None:
        self.root = Path(root)
        self.segments_dir = self.root / "segments"
        self.quarantine_dir = self.root / "quarantine"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.resident_budget = max(1, int(resident_segments))
        self._lock = threading.RLock()
        self._segments: Dict[str, Segment] = {}
        self._manifest: Optional[Dict[str, Any]] = None
        # Generation is monotone per root, across restarts AND across a
        # fresh SegmentStore bound to an old root (a replica rebuilt in
        # place): peek the published manifest so the next publish can
        # never reuse — and overwrite — a live segment name.
        self._generation = 0
        peek = self.root / MANIFEST_NAME
        if peek.is_file():
            try:
                with peek.open("r", encoding="utf-8") as fh:
                    self._generation = int(json.load(fh).get("generation", 0))
            except (OSError, ValueError):
                self._generation = 0
        self._dirty_units: Set[int] = set()
        self._all_dirty = True
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._group_of_unit: Dict[int, int] = {}
        self._group_servers: Dict[int, List[SegmentBackedServer]] = {}
        self.store: Optional[Any] = None
        self.faults = 0
        self.evictions = 0
        self.pins = 0
        registry = get_registry()
        self._fault_counter = registry.counter(
            "storage_segment_fault_total", "Segment groups faulted into residency"
        )
        self._evict_counter = registry.counter(
            "storage_segment_evict_total", "Segment groups evicted from residency"
        )
        self._pin_counter = registry.counter(
            "storage_segment_pin_total",
            "Segment units materialized (pinned out of the residency LRU)",
        )

    # ------------------------------------------------------------------ attach
    def attach(self, store: Any) -> None:
        """Bind to a SmartStore: dirty-unit tracking + topology map."""
        self.store = store
        store.on_units_touched = self._on_units_touched
        self._reindex_topology(store)

    def _reindex_topology(self, store: Any) -> None:
        group_of_unit: Dict[int, int] = {}
        group_servers: Dict[int, List[SegmentBackedServer]] = {}
        for group in store.tree.first_level_groups():
            for leaf in group.descendant_leaves():
                if leaf.unit_id is None:
                    continue
                group_of_unit[leaf.unit_id] = group.node_id
                server = store.cluster.servers.get(leaf.unit_id)
                if isinstance(server, SegmentBackedServer):
                    group_servers.setdefault(group.node_id, []).append(server)
        with self._lock:
            self._group_of_unit = group_of_unit
            self._group_servers = group_servers

    def _on_units_touched(self, unit_ids: Any) -> None:
        with self._lock:
            self._dirty_units.update(int(u) for u in unit_ids)

    def mark_all_dirty(self) -> None:
        """Force the next publish to rewrite every group (reshard/repack)."""
        with self._lock:
            self._all_dirty = True

    @property
    def manifest(self) -> Optional[Dict[str, Any]]:
        return self._manifest

    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    # ------------------------------------------------------------------ residency LRU
    def ensure_resident(self, server: SegmentBackedServer) -> None:
        """Called by a cold server before a scan: fault its group in."""
        with self._lock:
            group_id = self._group_of_unit.get(server.unit_id)
            if group_id is None:
                server.load_resident()
                return
            if group_id in self._resident and server.is_resident:
                self._resident.move_to_end(group_id)
                return
            self.fault_in(group_id)
            if not server.is_resident:
                # Topology moved under us (e.g. mid-compaction); load
                # the asking unit directly rather than answer slowly.
                server.load_resident()

    def fault_in(self, group_id: int) -> None:
        """Load one group's arrays into RAM, evicting LRU overflow."""
        with self._lock:
            with get_tracer().span("storage.fault_in", group_id=group_id):
                for server in self._group_servers.get(group_id, []):
                    server.load_resident()
                self._resident[group_id] = None
                self._resident.move_to_end(group_id)
                self.faults += 1
                self._fault_counter.inc()
                while len(self._resident) > self.resident_budget:
                    victim, _ = self._resident.popitem(last=False)
                    self._evict_locked(victim)

    def evict(self, group_id: int) -> None:
        """Drop one group's resident arrays (explicit evict)."""
        with self._lock:
            self._resident.pop(group_id, None)
            self._evict_locked(group_id)

    def _evict_locked(self, group_id: int) -> None:
        with get_tracer().span("storage.evict", group_id=group_id):
            for server in self._group_servers.get(group_id, []):
                server.drop_resident()
            self.evictions += 1
            self._evict_counter.inc()

    def note_materialized(self, server: SegmentBackedServer) -> None:
        """A unit decoded its full file list: pin it out of the LRU."""
        with self._lock:
            self.pins += 1
            self._pin_counter.inc()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "faults": self.faults,
                "evictions": self.evictions,
                "pins": self.pins,
                "resident_groups": len(self._resident),
                "resident_budget": self.resident_budget,
                "segments": len(self._segments),
                "generation": self._generation,
            }

    # ------------------------------------------------------------------ publish
    def publish_snapshot(self, store: Any, *, wal_seq: int) -> Dict[str, Any]:
        """Write segments for changed groups + swap the manifest.

        The caller (``IngestPipeline.checkpoint``) holds the coarse
        write-path lock and has drained the staging overlay, so the live
        servers hold exactly the applied state this snapshot freezes.
        """
        with get_tracer().span("storage.publish", wal_seq=wal_seq) as span:
            manifest = self._publish(store, wal_seq=wal_seq)
            span.tag(
                generation=manifest["generation"],
                segments=len(manifest["segments"]),
            )
            return manifest

    def _publish(self, store: Any, *, wal_seq: int) -> Dict[str, Any]:
        tree = store.tree
        groups = tree.first_level_groups()
        with self._lock:
            generation = self._generation + 1
            prev_segments: Dict[str, Dict[str, Any]] = (
                dict(self._manifest["segments"]) if self._manifest else {}
            )
            dirty_units = set(self._dirty_units)
            all_dirty = self._all_dirty
        segments_meta: Dict[str, Dict[str, Any]] = {}
        for group in groups:
            group_id = group.node_id
            unit_ids = sorted(
                leaf.unit_id
                for leaf in group.descendant_leaves()
                if leaf.unit_id is not None
            )
            prev = prev_segments.get(str(group_id))
            prev_units = (
                sorted(int(u) for u in prev["units"]) if prev is not None else None
            )
            clean = (
                not all_dirty
                and prev is not None
                and prev_units == unit_ids
                and not (dirty_units & set(unit_ids))
                and prev["name"] in self._segments
            )
            if clean:
                assert prev is not None
                segments_meta[str(group_id)] = prev
                continue
            name = f"seg-{generation:08d}-g{group_id}.seg"
            units_files = [
                (uid, list(store.cluster.server(uid).files)) for uid in unit_ids
            ]
            info = write_segment(
                self.segments_dir / name, group_id, units_files, store.schema
            )
            segments_meta[str(group_id)] = {
                "name": info.name,
                "count": info.count,
                "bytes": info.size_bytes,
                "data_crc": info.data_crc,
                "units": {str(u): [a, b] for u, (a, b) in info.units.items()},
            }
        manifest = manifest_from_store(store, wal_seq=wal_seq, segments=segments_meta)
        # Monotone across restarts (restored from the manifest), so a new
        # publish can never reuse — and overwrite — an old segment name.
        manifest["generation"] = generation
        tmp = self.root / (MANIFEST_NAME + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(manifest, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path())
        self._install_manifest(store, manifest, generation)
        return manifest

    def _install_manifest(
        self, store: Any, manifest: Dict[str, Any], generation: int
    ) -> None:
        """Open the published set, demote rewritten groups to cold,
        refresh the lazy file map, and purge unreferenced segments."""
        table: Dict[str, Dict[str, Any]] = manifest["segments"]
        live_names = {entry["name"] for entry in table.values()}
        new_segments: Dict[str, Segment] = {}
        opened: Dict[int, Segment] = {}
        for gid_str, entry in table.items():
            name = str(entry["name"])
            segment = self._segments.get(name)
            if segment is None:
                segment = Segment.open(
                    self.segments_dir / name,
                    expected_crc=int(entry["data_crc"]),
                    verify=False,
                )
            new_segments[name] = segment
            opened[int(gid_str)] = segment

        # Demote segment-backed servers of rewritten groups back to cold
        # (their RAM copies are now redundant with the new segments).
        # Plain in-RAM servers (a freshly built primary) are untouched.
        any_segment_backed = False
        for segment in opened.values():
            for unit_id, row_range in segment.units.items():
                server = store.cluster.servers.get(unit_id)
                if not isinstance(server, SegmentBackedServer):
                    continue
                any_segment_backed = True
                if server.backing_segment() is not segment:
                    server.rebind(segment, row_range)

        if any_segment_backed or isinstance(
            getattr(store, "_files_by_id", None), LazyFileMap
        ):
            locations: Dict[int, Tuple[Segment, int]] = {}
            for segment in opened.values():
                for uid, (start, stop) in segment.units.items():
                    for offset, fid in enumerate(segment.file_ids(start, stop)):
                        locations[int(fid)] = (segment, start + offset)
            if isinstance(store._files_by_id, LazyFileMap):
                store._files_by_id.swap_base(locations)

        with self._lock:
            stale = [
                seg for name, seg in self._segments.items() if name not in live_names
            ]
            self._segments = new_segments
            self._manifest = manifest
            self._generation = generation
            self._dirty_units.clear()
            self._all_dirty = False
            self._resident.clear()
        self._reindex_topology(store)
        for segment in stale:
            segment.close()
        # Purge-only-after-manifest-publish: by now the renamed manifest
        # no longer references these files.
        for path in self.segments_dir.glob("*.seg"):
            if path.name not in live_names:
                path.unlink(missing_ok=True)
        for path in self.segments_dir.glob("*.tmp"):
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ restore
    def _adopt(
        self,
        manifest: Dict[str, Any],
        segments_by_name: Dict[str, Segment],
        generation: int,
    ) -> None:
        with self._lock:
            self._segments = segments_by_name
            self._manifest = manifest
            self._generation = generation
            self._all_dirty = False
            self._dirty_units.clear()

    def close(self) -> None:
        with self._lock:
            segments = list(self._segments.values())
            self._segments = {}
        for segment in segments:
            segment.close()


def ship_snapshot(
    source: SegmentStore, dest_root: PathLike, manifest: Dict[str, Any]
) -> Tuple[int, int]:
    """Copy ``manifest``'s segment set plus the manifest into ``dest_root``.

    The incremental "manifest + missing segments" transfer behind
    snapshot-shipping resync: a segment the destination already holds
    under the same name with the same data CRC (per its own published
    manifest) is skipped; everything else is copied tmp + fsync + rename.
    The manifest lands *last*, so the receiving root obeys the same §12
    publish ordering as a local checkpoint — its manifest only ever names
    fsynced segments.  Returns ``(bytes_shipped, segments_shipped)``.
    """
    dest_root = Path(dest_root)
    dest_segments = dest_root / "segments"
    dest_segments.mkdir(parents=True, exist_ok=True)
    have: Dict[str, int] = {}
    dest_manifest_path = dest_root / MANIFEST_NAME
    if dest_manifest_path.is_file():
        try:
            with dest_manifest_path.open("r", encoding="utf-8") as fh:
                prev = json.load(fh)
            for entry in dict(prev.get("segments", {})).values():
                have[str(entry["name"])] = int(entry["data_crc"])
        except (OSError, ValueError, KeyError, TypeError):
            have = {}
    bytes_shipped = 0
    segments_shipped = 0
    for entry in dict(manifest["segments"]).values():
        name = str(entry["name"])
        crc = int(entry["data_crc"])
        dest_path = dest_segments / name
        if have.get(name) == crc and dest_path.is_file():
            continue
        payload = (source.segments_dir / name).read_bytes()
        tmp = dest_segments / (name + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest_path)
        bytes_shipped += len(payload)
        segments_shipped += 1
    body = json.dumps(manifest)
    tmp = dest_root / (MANIFEST_NAME + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, dest_manifest_path)
    bytes_shipped += len(body)
    return bytes_shipped, segments_shipped


def has_snapshot(root: PathLike) -> bool:
    """True when ``root`` holds a published manifest to restore from."""
    return (Path(root) / MANIFEST_NAME).is_file()


def open_storage(
    root: PathLike, *, resident_segments: int = 8
) -> Tuple[Any, SegmentStore, RecoveryReport]:
    """Cold-start a store from a snapshot root: O(manifest + tail).

    Opens and checksum-validates every segment the manifest names;
    segments that fail validation are moved to ``quarantine/`` and their
    groups restore empty (the caller's WAL replay brings back whatever
    the tail holds — a detected-and-degraded answer, never a wrong one).
    Returns ``(smartstore, segment_store, report)``.
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    with manifest_path.open("r", encoding="utf-8") as fh:
        manifest: Dict[str, Any] = json.load(fh)
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{manifest_path}: not a segment manifest "
            f"(format={manifest.get('format')!r})"
        )
    segstore = SegmentStore(root, resident_segments=resident_segments)
    segments: Dict[int, Segment] = {}
    segments_by_name: Dict[str, Segment] = {}
    quarantined_groups: List[int] = []
    quarantined_files: List[str] = []
    table: Dict[str, Dict[str, Any]] = dict(manifest["segments"])
    for gid_str, entry in table.items():
        group_id = int(gid_str)
        name = str(entry["name"])
        path = segstore.segments_dir / name
        try:
            segment = Segment.open(
                path, expected_crc=int(entry["data_crc"]), verify=True
            )
            if segment.group_id != group_id or segment.count != int(entry["count"]):
                segment.close()
                raise SegmentCorruptError(
                    f"{path}: header disagrees with manifest "
                    f"(group={segment.group_id}, count={segment.count})"
                )
        except SegmentCorruptError:
            quarantined_groups.append(group_id)
            quarantined_files.append(name)
            segstore.quarantine_dir.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(path, segstore.quarantine_dir / name)
            except OSError:
                pass
            continue
        segments[group_id] = segment
        segments_by_name[name] = segment
    # Drop quarantined entries from the adopted manifest so the next
    # publish rewrites those groups from live state.
    adopted = dict(manifest)
    adopted["segments"] = {
        gid: entry
        for gid, entry in table.items()
        if int(gid) not in set(quarantined_groups)
    }
    store = restore_store(
        manifest,
        segments=segments,
        quarantined_groups=set(quarantined_groups),
        segstore=segstore,
    )
    segstore._adopt(
        adopted, segments_by_name, generation=int(manifest.get("generation", 1))
    )
    segstore.attach(store)
    report = RecoveryReport(
        root=str(root),
        wal_seq=int(manifest["wal_seq"]),
        segments_loaded=len(segments),
        files_indexed=len(store._files_by_id),
        segments_quarantined=quarantined_files,
        groups_quarantined=sorted(quarantined_groups),
    )
    return store, segstore, report
