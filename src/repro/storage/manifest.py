"""The snapshot manifest: everything O(tail) recovery needs except rows.

A manifest is one atomically-swapped JSON file naming the live segment
set per first-level group *and* carrying the small derived state whose
recomputation is what makes legacy recovery O(corpus): the store config
and schema, the deployment-wide index-space bounds and fold center, the
LSI projection (``u`` and the singular values — ``vt`` is never used on
the query path), the semantic R-tree topology with per-leaf summaries
(MBR, semantic vector, Bloom filter bits, file count, hosting), and the
WAL sequence number the snapshot is consistent with.

Restoring is therefore: parse the manifest, rebuild the tree by wiring
persisted nodes and recomputing index-node summaries bottom-up (the same
``refresh_from_children`` the live tree uses, over children in persisted
order — so the recomputed summaries are bit-identical to the live ones),
install one cold :class:`~repro.storage.lazy.SegmentBackedServer` per
unit, and replay the WAL records past the manifest's ``wal_seq``.  No
SVD, no k-means, no per-record JSON decode.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.bloom.bloom import BloomFilter
from repro.cluster.simulator import ClusterSimulator
from repro.core.offline import OfflineRouter
from repro.core.queries import QueryEngine
from repro.core.semantic_rtree import SemanticNode, SemanticRTree
from repro.core.smartstore import SmartStore
from repro.core.versioning import VersioningManager
from repro.lsi.model import LSIModel
from repro.persistence.jsonl import schema_from_dict, schema_to_dict
from repro.persistence.snapshot import config_from_dict, config_to_dict
from repro.storage.lazy import LazyFileMap, SegmentBackedServer
from repro.storage.segment import Segment

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "MANIFEST_NAME",
    "bloom_to_dict",
    "bloom_from_dict",
    "manifest_from_store",
    "restore_store",
]

MANIFEST_FORMAT = "repro.segment-manifest"
MANIFEST_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


def bloom_to_dict(bloom: BloomFilter) -> Dict[str, object]:
    """Bit-exact Bloom filter codec (packed bits as hex)."""
    return {
        "num_bits": bloom.num_bits,
        "num_hashes": bloom.num_hashes,
        "count": bloom.count,
        "bits": np.packbits(bloom.bits).tobytes().hex(),
    }


def bloom_from_dict(payload: Mapping[str, object]) -> BloomFilter:
    num_bits = int(payload["num_bits"])  # type: ignore[arg-type]
    bloom = BloomFilter(num_bits, int(payload["num_hashes"]))  # type: ignore[arg-type]
    raw = bytes.fromhex(str(payload["bits"]))
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8))[:num_bits]
    bloom.bits = bits.astype(bool)
    bloom.count = int(payload["count"])  # type: ignore[arg-type]
    return bloom


def _node_to_dict(node: SemanticNode) -> Dict[str, object]:
    record: Dict[str, object] = {
        "node_id": node.node_id,
        "level": node.level,
        "unit_id": node.unit_id,
        "parent": node.parent.node_id if node.parent is not None else None,
        "children": [c.node_id for c in node.children],
        "hosted_on": node.hosted_on,
        "replica_hosts": list(node.replica_hosts),
        "file_count": int(node.file_count),
    }
    # Leaf summaries are primary state (they come from the partitioner
    # and the applied mutations); index-node summaries are derived and
    # recomputed bottom-up at restore.
    if node.is_leaf:
        record["mbr_lower"] = (
            [float(x) for x in node.mbr.lower] if node.mbr is not None else None
        )
        record["mbr_upper"] = (
            [float(x) for x in node.mbr.upper] if node.mbr is not None else None
        )
        record["semantic_vector"] = (
            [float(x) for x in node.semantic_vector]
            if node.semantic_vector is not None
            else None
        )
        record["bloom"] = (
            bloom_to_dict(node.bloom) if node.bloom is not None else None
        )
    return record


def manifest_from_store(
    store: Any, *, wal_seq: int, segments: Dict[str, Dict[str, object]]
) -> Dict[str, object]:
    """Build the manifest payload for a store whose overlay is drained."""
    engine = store.engine
    lsi = store.lsi
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "wal_seq": int(wal_seq),
        "config": config_to_dict(store.config),
        "schema": schema_to_dict(store.schema),
        "num_units": len(store.cluster.servers),
        "index_lower": [float(x) for x in store.index_lower],
        "index_upper": [float(x) for x in store.index_upper],
        "center": [float(x) for x in engine.center],
        "thresholds": [float(x) for x in store.tree.thresholds],
        "lsi": {
            "rank": int(lsi.rank),
            "u": np.asarray(lsi.u, dtype=np.float64).tolist(),
            "singular_values": np.asarray(
                lsi.singular_values, dtype=np.float64
            ).tolist(),
        },
        "tree": {
            "root": store.tree.root.node_id,
            "nodes": [_node_to_dict(n) for n in store.tree.nodes],
        },
        "segments": segments,
    }


def _restore_tree(
    payload: Mapping[str, object],
    thresholds: List[float],
    max_fanout: int,
    *,
    quarantined_units: Set[int],
    bloom_bits: int,
    bloom_hashes: int,
) -> SemanticRTree:
    records: List[Dict[str, object]] = list(payload["nodes"])  # type: ignore[arg-type]
    by_id: Dict[int, SemanticNode] = {}
    nodes: List[SemanticNode] = []
    for rec in records:
        node = SemanticNode(
            int(rec["node_id"]),  # type: ignore[arg-type]
            int(rec["level"]),  # type: ignore[arg-type]
            unit_id=rec["unit_id"],  # type: ignore[arg-type]
        )
        node.hosted_on = rec["hosted_on"]
        node.replica_hosts = list(rec["replica_hosts"])  # type: ignore[arg-type]
        node.file_count = int(rec["file_count"])  # type: ignore[arg-type]
        if rec.get("semantic_vector") is not None:
            node.semantic_vector = np.asarray(
                rec["semantic_vector"], dtype=np.float64
            )
        if rec.get("mbr_lower") is not None:
            from repro.rtree.mbr import MBR

            node.mbr = MBR(
                np.asarray(rec["mbr_lower"], dtype=np.float64),
                np.asarray(rec["mbr_upper"], dtype=np.float64),
            )
        if rec.get("bloom") is not None:
            node.bloom = bloom_from_dict(rec["bloom"])  # type: ignore[arg-type]
        by_id[node.node_id] = node
        nodes.append(node)
    for rec in records:
        parent = by_id[int(rec["node_id"])]  # type: ignore[arg-type]
        for child_id in rec["children"]:  # type: ignore[attr-defined]
            parent.add_child(by_id[int(child_id)])
    root = by_id[int(payload["root"])]  # type: ignore[arg-type]
    leaves = {
        n.unit_id: n for n in nodes if n.is_leaf and n.unit_id is not None
    }
    # A quarantined group's rows are gone until WAL replay restores the
    # tail; its leaves answer as freshly-empty units (subset, never
    # wrong).  The semantic vector survives — it is partitioner state,
    # not row state — so routing of replayed inserts stays sensible.
    for unit_id in quarantined_units:
        leaf = leaves.get(unit_id)
        if leaf is None:
            continue
        leaf.mbr = None
        leaf.file_count = 0
        leaf.bloom = BloomFilter(bloom_bits, bloom_hashes)

    def _refresh(node: SemanticNode) -> None:
        for child in node.children:
            _refresh(child)
        node.refresh_from_children()

    _refresh(root)
    return SemanticRTree(root, nodes, leaves, thresholds, max_fanout)


def restore_store(
    manifest: Mapping[str, object],
    *,
    segments: Dict[int, Segment],
    quarantined_groups: Set[int],
    segstore: Optional[Any] = None,
) -> SmartStore:
    """Reconstruct a :class:`SmartStore` from a manifest + open segments.

    ``segments`` maps group id -> validated open segment;
    ``quarantined_groups`` lists groups whose segments failed validation
    (their units restore empty and rely on WAL replay).  The returned
    store's servers are *cold* — nothing row-level has been decoded.
    """
    config = config_from_dict(dict(manifest["config"]))  # type: ignore[arg-type]
    schema = schema_from_dict(dict(manifest["schema"]))  # type: ignore[arg-type]
    num_units = int(manifest["num_units"])  # type: ignore[arg-type]
    thresholds = [float(x) for x in manifest["thresholds"]]  # type: ignore[union-attr]

    quarantined_units: Set[int] = set()
    segment_table: Mapping[str, Mapping[str, object]] = manifest["segments"]  # type: ignore[assignment]
    for gid_str, entry in segment_table.items():
        if int(gid_str) in quarantined_groups:
            for uid in dict(entry["units"]):  # type: ignore[arg-type]
                quarantined_units.add(int(uid))

    tree = _restore_tree(
        manifest["tree"],  # type: ignore[arg-type]
        thresholds,
        config.max_fanout,
        quarantined_units=quarantined_units,
        bloom_bits=config.bloom_bits,
        bloom_hashes=config.bloom_hashes,
    )

    cluster = ClusterSimulator(
        num_units,
        schema,
        cost_model=config.cost_model,
        seed=config.seed,
        bloom_bits=config.bloom_bits,
        bloom_hashes=config.bloom_hashes,
    )
    index_lower = np.asarray(manifest["index_lower"], dtype=np.float64)
    index_upper = np.asarray(manifest["index_upper"], dtype=np.float64)

    lsi_payload: Mapping[str, object] = manifest["lsi"]  # type: ignore[assignment]
    singular = np.asarray(lsi_payload["singular_values"], dtype=np.float64)
    lsi = LSIModel(
        rank=int(lsi_payload["rank"]),  # type: ignore[arg-type]
        u=np.asarray(lsi_payload["u"], dtype=np.float64),
        singular_values=singular,
        # vt is only consulted by offline corpus analysis, never by the
        # query path (fold_in uses u and the singular values).
        vt=np.zeros((len(singular), 0), dtype=np.float64),
    )

    versioning = VersioningManager(config.version_ratio)
    offline_router = OfflineRouter(
        tree, lazy_update_threshold=config.lazy_update_threshold
    )
    engine = QueryEngine(
        tree=tree,
        cluster=cluster,
        lsi=lsi,
        schema=schema,
        index_lower=index_lower,
        index_upper=index_upper,
        log_mask=schema.log_scale_mask(),
        center=np.asarray(manifest["center"], dtype=np.float64),
        versioning=versioning,
        offline_router=offline_router,
        mode=config.mode,
        versioning_enabled=config.versioning_enabled,
        search_breadth=config.search_breadth,
        cost_model=config.cost_model,
    )
    # Constructed with empty plain servers first: SmartStore's __init__
    # walks server.files, which must not materialize the cold segments.
    store = SmartStore(
        config=config,
        schema=schema,
        cluster=cluster,
        tree=tree,
        partition=None,
        lsi=lsi,
        index_lower=index_lower,
        index_upper=index_upper,
        versioning=versioning,
        offline_router=offline_router,
        engine=engine,
        files=[],
    )

    binding: Dict[int, Tuple[Segment, Tuple[int, int]]] = {}
    for segment in segments.values():
        for uid, row_range in segment.units.items():
            binding[uid] = (segment, row_range)
    for unit_id in range(num_units):
        segment_for_unit, row_range = binding.get(unit_id, (None, (0, 0)))
        server = SegmentBackedServer(
            unit_id,
            schema,
            bloom_bits=config.bloom_bits,
            bloom_hashes=config.bloom_hashes,
            segment=segment_for_unit,
            row_range=row_range,
            segstore=segstore,
        )
        leaf = tree.leaves.get(unit_id)
        if leaf is not None and leaf.bloom is not None:
            server.bloom = leaf.bloom.copy()
        cluster.servers[unit_id] = server
    cluster.install_normalization(index_lower, index_upper)

    locations: Dict[int, Tuple[Segment, int]] = {}
    file_locations: Dict[int, int] = {}
    for segment in segments.values():
        for uid, (start, stop) in segment.units.items():
            for offset, fid in enumerate(segment.file_ids(start, stop)):
                file_id = int(fid)
                locations[file_id] = (segment, start + offset)
                file_locations[file_id] = uid
    store._files_by_id = LazyFileMap(locations)
    store._file_locations = file_locations
    return store
