"""Lazy views over mmap'd segments: servers and the file map.

:class:`SegmentBackedServer` is a drop-in :class:`~repro.cluster.node.StorageServer`
whose rows live in an immutable segment.  It moves through three states:

* **cold** — only the restored Bloom filter and the segment's row range
  are in RAM; scans answer straight from the mapping (index-space
  transform recomputed on the fly), decoding JSON records only for rows
  a query returns;
* **resident** — the :class:`~repro.storage.store.SegmentStore` LRU has
  faulted the group in, so the id/index/norm arrays are cached in RAM
  (still no record decode);
* **materialized** — the full file list has been decoded (required for
  mutations and for callers that read ``server.files`` directly); from
  here the server behaves exactly like its live parent and is pinned
  out of the LRU.

Scan semantics, metric accounting, and tie-breaking are kept *identical*
to the parent class in every state — the cross-placement fingerprint
suites rely on a restored deployment being byte-equivalent to the live
one it was snapshotted from.

:class:`LazyFileMap` gives :class:`~repro.core.smartstore.SmartStore` a
``file_id -> FileMetadata`` mapping backed by ``(segment, row)``
locations, with a small override/tombstone layer for post-restore
mutations.  Point lookups decode one record; only whole-map iteration
(``materialized_files``, shard summary rebuilds) pays a full decode.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.cluster.metrics import Metrics
from repro.cluster.node import StorageServer
from repro.metadata.file_metadata import FileMetadata
from repro.rtree.mbr import MBR
from repro.storage.segment import Segment, name_hash64

__all__ = ["SegmentBackedServer", "LazyFileMap"]


class SegmentBackedServer(StorageServer):
    """A storage unit whose applied rows live in an mmap'd segment."""

    def __init__(
        self,
        unit_id: int,
        schema: Any,
        *,
        bloom_bits: int = 1024,
        bloom_hashes: int = 7,
        segment: Optional[Segment] = None,
        row_range: Tuple[int, int] = (0, 0),
        segstore: Optional[Any] = None,
    ) -> None:
        # The parent assigns ``self.files = []`` before our attributes
        # exist; the property setter below tolerates that.
        super().__init__(
            unit_id, schema, bloom_bits=bloom_bits, bloom_hashes=bloom_hashes
        )
        self._segment = segment
        self._row_start, self._row_stop = int(row_range[0]), int(row_range[1])
        self._backing_count = max(0, self._row_stop - self._row_start)
        self._segstore = segstore
        # A unit with no backing rows has nothing to fault in.
        self._materialized = segment is None or self._backing_count == 0
        self._res_ids: Optional[np.ndarray] = None
        self._res_index: Optional[np.ndarray] = None
        self._res_norm: Optional[np.ndarray] = None
        self._decoded: Dict[int, FileMetadata] = {}

    # ------------------------------------------------------------------ files facade
    @property
    def files(self) -> List[FileMetadata]:
        # Direct readers of ``server.files`` (snapshot export, dedup
        # apps, publish) get the real list — materializing on demand.
        if not getattr(self, "_materialized", True):
            self.materialize()
        return self._files_list

    @files.setter
    def files(self, value: Sequence[FileMetadata]) -> None:
        self._files_list = list(value)

    @property
    def is_materialized(self) -> bool:
        return self._materialized

    @property
    def is_resident(self) -> bool:
        return self._res_index is not None

    def backing_segment(self) -> Optional[Segment]:
        return None if self._materialized else self._segment

    def __len__(self) -> int:
        if self._materialized:
            return len(self._files_list)
        return self._backing_count

    # ------------------------------------------------------------------ state moves
    def materialize(self) -> None:
        """Decode the full file list; after this the server is a plain
        in-RAM unit (and stays pinned out of the fault/evict LRU)."""
        if self._materialized:
            return
        self._materialized = True
        records = [self._record(row) for row in range(self._backing_count)]
        self._files_list = records
        by_name: Dict[str, List[FileMetadata]] = {}
        for f in records:
            by_name.setdefault(f.filename, []).append(f)
        self._by_filename = by_name
        # The restored bloom already covers exactly these filenames.
        self._drop_resident()
        self._dirty = True
        if self._segstore is not None:
            self._segstore.note_materialized(self)

    def rebind(self, segment: Segment, row_range: Tuple[int, int]) -> None:
        """Point at a freshly published segment and demote to cold,
        releasing the RAM copies (the new segment is the same state)."""
        self._segment = segment
        self._row_start, self._row_stop = int(row_range[0]), int(row_range[1])
        self._backing_count = max(0, self._row_stop - self._row_start)
        self._materialized = self._backing_count == 0
        self._files_list = []
        self._by_filename = {}
        self._drop_resident()
        self._dirty = True

    def load_resident(self) -> None:
        """Fault the unit's arrays into RAM (called by the LRU)."""
        if self._materialized or self._res_index is not None:
            return
        seg = self._segment
        assert seg is not None
        self._res_ids = np.array(seg.file_ids(self._row_start, self._row_stop))
        self._res_index = self._cold_index_matrix()
        if self._norm_lower is not None and self._norm_upper is not None:
            span = self._norm_upper - self._norm_lower
            safe = np.where(span > 0, span, 1.0)
            self._res_norm = np.clip(
                (self._res_index - self._norm_lower) / safe, 0.0, 1.0
            )

    def _drop_resident(self) -> None:
        self._res_ids = None
        self._res_index = None
        self._res_norm = None
        self._decoded.clear()

    drop_resident = _drop_resident

    # ------------------------------------------------------------------ cold helpers
    def _record(self, local_row: int) -> FileMetadata:
        f = self._decoded.get(local_row)
        if f is None:
            assert self._segment is not None
            f = self._segment.record(self._row_start + local_row)
            self._decoded[local_row] = f
        return f

    def _cold_index_matrix(self) -> np.ndarray:
        if self._res_index is not None:
            return self._res_index
        assert self._segment is not None
        raw = np.asarray(
            self._segment.matrix_rows(self._row_start, self._row_stop),
            dtype=np.float64,
        )
        return self._to_index_space(raw)

    def _ensure_resident(self) -> None:
        if self._segstore is not None:
            self._segstore.ensure_resident(self)

    # ------------------------------------------------------------------ mutations
    def add_file(self, file: FileMetadata) -> None:
        if not self._materialized:
            self.materialize()
        super().add_file(file)

    def remove_file(self, file_id: int) -> Optional[FileMetadata]:
        if not self._materialized:
            self.materialize()
        return super().remove_file(file_id)

    # ------------------------------------------------------------------ scans
    def scan_range(
        self,
        attr_indices: Sequence[int],
        lower: Sequence[float],
        upper: Sequence[float],
        metrics: Optional[Metrics] = None,
        *,
        on_disk: bool = False,
    ) -> List[FileMetadata]:
        if self._materialized:
            return super().scan_range(
                attr_indices, lower, upper, metrics, on_disk=on_disk
            )
        self._ensure_resident()
        metrics = metrics if metrics is not None else Metrics()
        n = self._backing_count
        metrics.record_unit_visit(self.unit_id)
        metrics.record_scan(n, on_disk=on_disk)
        if n == 0:
            return []
        index = self._res_index if self._res_index is not None else self._cold_index_matrix()
        cols = index[:, list(attr_indices)]
        lower_arr = np.asarray(lower, dtype=np.float64)
        upper_arr = np.asarray(upper, dtype=np.float64)
        mask = np.all((cols >= lower_arr) & (cols <= upper_arr), axis=1)
        return [self._record(int(i)) for i in np.nonzero(mask)[0]]

    def scan_knn(
        self,
        query_norm: np.ndarray,
        k: int,
        metrics: Optional[Metrics] = None,
        *,
        attr_indices: Optional[Sequence[int]] = None,
        on_disk: bool = False,
    ) -> List[Tuple[float, FileMetadata]]:
        if self._materialized:
            return super().scan_knn(
                query_norm, k, metrics, attr_indices=attr_indices, on_disk=on_disk
            )
        self._ensure_resident()
        metrics = metrics if metrics is not None else Metrics()
        n = self._backing_count
        metrics.record_unit_visit(self.unit_id)
        metrics.record_scan(n, on_disk=on_disk)
        if n == 0 or k <= 0:
            return []
        if self._res_norm is not None:
            norm = self._res_norm
        else:
            if self._norm_lower is None or self._norm_upper is None:
                raise RuntimeError(
                    "normalization bounds not installed; call set_normalization first"
                )
            index = self._cold_index_matrix()
            span = self._norm_upper - self._norm_lower
            safe = np.where(span > 0, span, 1.0)
            norm = np.clip((index - self._norm_lower) / safe, 0.0, 1.0)
        if self._res_ids is not None:
            file_ids = self._res_ids
        else:
            assert self._segment is not None
            file_ids = self._segment.file_ids(self._row_start, self._row_stop)
        query = np.asarray(query_norm, dtype=np.float64)
        if attr_indices is not None:
            data = norm[:, list(attr_indices)]
        else:
            data = norm
        deltas = data - query[None, :]
        dists = np.sqrt(np.sum(deltas * deltas, axis=1))
        k = min(k, n)
        # Same tie-stable cut as the live server: take the k-th distance,
        # admit everything <= it, then order by (distance, file_id).
        part = np.argpartition(dists, k - 1)[:k]
        kth = dists[part].max()
        eligible = np.nonzero(dists <= kth)[0]
        order = np.lexsort((file_ids[eligible], dists[eligible]))
        top = eligible[order[:k]]
        return [(float(dists[int(i)]), self._record(int(i))) for i in top]

    def lookup_filename(
        self,
        filename: str,
        metrics: Optional[Metrics] = None,
        *,
        on_disk: bool = False,
    ) -> List[FileMetadata]:
        if self._materialized:
            return super().lookup_filename(filename, metrics, on_disk=on_disk)
        # Point queries answer from the map directly (name-hash prune,
        # then decode candidates) — no fault-in, no LRU churn.
        metrics = metrics if metrics is not None else Metrics()
        metrics.record_unit_visit(self.unit_id)
        assert self._segment is not None
        hashes = self._segment.name_hashes(self._row_start, self._row_stop)
        target = name_hash64(filename)
        matches: List[FileMetadata] = []
        for row in np.nonzero(hashes == target)[0]:
            f = self._record(int(row))
            if f.filename == filename:
                matches.append(f)
        metrics.record_scan(max(1, len(matches)), on_disk=on_disk)
        return matches

    # ------------------------------------------------------------------ summaries
    def mbr(self) -> Optional[MBR]:
        if self._materialized:
            return super().mbr()
        if self._backing_count == 0:
            return None
        return MBR.from_points(self._cold_index_matrix())

    def centroid(self) -> Optional[np.ndarray]:
        if self._materialized:
            return super().centroid()
        if self._backing_count == 0:
            return None
        return self._cold_index_matrix().mean(axis=0)

    def filenames(self) -> List[str]:
        if not self._materialized:
            self.materialize()
        return super().filenames()

    def matrix(self) -> np.ndarray:
        if self._materialized:
            return super().matrix()
        assert self._segment is not None
        return np.asarray(
            self._segment.matrix_rows(self._row_start, self._row_stop),
            dtype=np.float64,
        )

    def index_matrix(self) -> np.ndarray:
        if self._materialized:
            return super().index_matrix()
        return self._cold_index_matrix()

    def normalized_matrix(self) -> np.ndarray:
        if self._materialized:
            return super().normalized_matrix()
        if self._norm_lower is None or self._norm_upper is None:
            raise RuntimeError(
                "normalization bounds not installed; call set_normalization first"
            )
        index = self._cold_index_matrix()
        span = self._norm_upper - self._norm_lower
        safe = np.where(span > 0, span, 1.0)
        return np.clip((index - self._norm_lower) / safe, 0.0, 1.0)

    def space_bytes(self, cost_model: Any = None) -> int:
        if cost_model is None:
            from repro.cluster.costmodel import DEFAULT_COST_MODEL

            cost_model = DEFAULT_COST_MODEL
        if self._materialized:
            return super().space_bytes(cost_model)
        return int(
            self._backing_count * cost_model.metadata_record_bytes
            + self.bloom.size_bytes()
        )


class LazyFileMap(MutableMapping[int, FileMetadata]):
    """``file_id -> FileMetadata`` backed by segment row locations.

    Mutations land in an override/tombstone layer; base rows decode on
    access.  ``swap_base`` re-points the map at a freshly published
    segment set (the overrides were folded into those segments)."""

    def __init__(self, locations: Dict[int, Tuple[Segment, int]]) -> None:
        self._base = locations
        self._overrides: Dict[int, FileMetadata] = {}
        self._tombstones: Set[int] = set()

    def __getitem__(self, file_id: int) -> FileMetadata:
        if file_id in self._overrides:
            return self._overrides[file_id]
        if file_id in self._tombstones:
            raise KeyError(file_id)
        segment, row = self._base[file_id]
        return segment.record(row)

    def __setitem__(self, file_id: int, value: FileMetadata) -> None:
        self._overrides[file_id] = value
        self._tombstones.discard(file_id)

    def __delitem__(self, file_id: int) -> None:
        had_override = self._overrides.pop(file_id, None) is not None
        if file_id in self._base and file_id not in self._tombstones:
            self._tombstones.add(file_id)
        elif not had_override:
            raise KeyError(file_id)

    def __iter__(self) -> Iterator[int]:
        yield from self._overrides
        for file_id in self._base:
            if file_id not in self._overrides and file_id not in self._tombstones:
                yield file_id

    def __len__(self) -> int:
        shadowed = sum(1 for fid in self._overrides if fid in self._base)
        return len(self._base) - len(self._tombstones) - shadowed + len(self._overrides)

    def __contains__(self, file_id: object) -> bool:
        if file_id in self._overrides:
            return True
        return file_id in self._base and file_id not in self._tombstones

    def swap_base(self, locations: Dict[int, Tuple[Segment, int]]) -> None:
        """Install a new published base; overrides are now durable."""
        self._base = locations
        self._overrides = {}
        self._tombstones = set()
